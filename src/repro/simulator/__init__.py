"""Discrete-event simulation substrate.

This package provides the deterministic discrete-event engine on which the
whole MPICH-V reproduction runs: a simulated clock and event heap
(:mod:`~repro.simulator.engine`), generator-coroutine processes and futures
(:mod:`~repro.simulator.process`), and a calibrated network model with NIC
serialization and switch contention (:mod:`~repro.simulator.network`).

The engine is intentionally minimal: everything protocol-specific lives in
:mod:`repro.runtime` and :mod:`repro.core`.
"""

from repro.simulator.engine import (
    DeadlockError,
    EventHandle,
    SimulationError,
    Simulator,
)
from repro.simulator.process import Future, ProcessCrashed, SimProcess
from repro.simulator.network import Network, Nic, TransferStats
from repro.simulator.rng import SeedSequenceStream

__all__ = [
    "Simulator",
    "SimulationError",
    "DeadlockError",
    "EventHandle",
    "SimProcess",
    "Future",
    "ProcessCrashed",
    "Network",
    "Nic",
    "TransferStats",
    "SeedSequenceStream",
]
