"""Calibrated network model: NICs, switch, latency/bandwidth.

The model reproduces the paper's testbed topology — compute nodes connected
through a single Fast-Ethernet switch — at the level of detail the
experiments are sensitive to:

* **Serialization**: a message of ``n`` bytes occupies the sender's TX link
  for ``n * 8 / bandwidth`` seconds and the receiver's RX link for the same
  duration, shifted by the propagation+switch latency.  Concurrent messages
  to one receiver therefore queue (this is what saturates the Event Logger
  at high event rates, Fig. 7 LU-16).
* **Duplex**: a full-duplex NIC has independent TX/RX resources; a
  half-duplex NIC shares one.  The paper observes that MPICH-Vdummy can
  exploit full duplex while MPICH-P4 cannot (Fig. 9); the stack config
  chooses the flag.
* **Goodput**: Ethernet/IP/TCP framing is modelled as a fixed per-message
  header plus a goodput factor on the raw 100 Mbit/s wire.

No topology beyond a single switch is modelled; the paper's cluster used
one Fast Ethernet switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.simulator.engine import SimulationError, Simulator


@dataclass
class TransferStats:
    """Per-NIC traffic accounting (used by the piggyback-volume probes)."""

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "messages_received": self.messages_received,
            "bytes_received": self.bytes_received,
        }


class Nic:
    """One endpoint attached to the switch."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: float,
        full_duplex: bool = True,
    ):
        if bandwidth_bps <= 0:
            raise SimulationError("bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = float(bandwidth_bps)
        self.full_duplex = bool(full_duplex)
        self._tx_busy_until = 0.0
        self._rx_busy_until = 0.0
        self.stats = TransferStats()

    # -- serialization bookkeeping ------------------------------------- #

    def wire_time(self, nbytes: int) -> float:
        return nbytes * 8.0 / self.bandwidth_bps

    def reserve_tx(self, duration: float) -> tuple[float, float]:
        """Reserve the TX link; returns (start, end) of the transmission."""
        busy = self._tx_busy_until if self.full_duplex else max(
            self._tx_busy_until, self._rx_busy_until
        )
        start = max(self.sim.now, busy)
        end = start + duration
        self._tx_busy_until = end
        if not self.full_duplex:
            self._rx_busy_until = end
        return start, end

    def reserve_rx(self, earliest: float, duration: float) -> tuple[float, float]:
        """Reserve the RX link no earlier than ``earliest``."""
        busy = self._rx_busy_until if self.full_duplex else max(
            self._tx_busy_until, self._rx_busy_until
        )
        start = max(earliest, busy)
        end = start + duration
        self._rx_busy_until = end
        if not self.full_duplex:
            self._tx_busy_until = end
        return start, end

    @property
    def tx_busy_until(self) -> float:
        return self._tx_busy_until

    @property
    def rx_busy_until(self) -> float:
        return self._rx_busy_until


class Network:
    """Single-switch network connecting named NICs.

    Parameters
    ----------
    sim: engine
    bandwidth_bps: raw wire rate (Fast Ethernet: 100e6)
    latency_s: one-way propagation + switch latency
    per_message_overhead_bytes: framing headers charged to every message
    goodput_factor: fraction of the raw wire rate achievable by TCP payload
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = 100e6,
        latency_s: float = 55e-6,
        per_message_overhead_bytes: int = 66,
        goodput_factor: float = 0.93,
    ):
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.per_message_overhead_bytes = int(per_message_overhead_bytes)
        self.goodput_factor = float(goodput_factor)
        self.nics: dict[str, Nic] = {}
        self.total_messages = 0
        self.total_bytes = 0

    # ------------------------------------------------------------------ #

    def attach(
        self,
        name: str,
        full_duplex: bool = True,
        bandwidth_bps: Optional[float] = None,
    ) -> Nic:
        """Attach a NIC; ``bandwidth_bps`` overrides the network default
        (used for the checkpoint server's aggregated stable-storage link)."""
        if name in self.nics:
            raise SimulationError(f"NIC {name!r} already attached")
        raw = bandwidth_bps if bandwidth_bps is not None else self.bandwidth_bps
        nic = Nic(
            self.sim,
            name,
            raw * self.goodput_factor,
            full_duplex=full_duplex,
        )
        self.nics[name] = nic
        return nic

    def nic(self, name: str) -> Nic:
        return self.nics[name]

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: int,
        deliver: Callable[[], None],
        extra_latency: float = 0.0,
    ) -> float:
        """Move ``nbytes`` from NIC ``src`` to NIC ``dst``.

        ``deliver`` runs when the last byte has been received.  Returns the
        scheduled delivery time (useful for tests).  Loopback transfers
        (src == dst) skip the wire entirely and cost only ``extra_latency``.
        """
        if nbytes < 0:
            raise SimulationError("negative transfer size")
        src_nic = self.nics[src]
        dst_nic = self.nics[dst]
        self.total_messages += 1
        self.total_bytes += nbytes
        src_nic.stats.messages_sent += 1
        src_nic.stats.bytes_sent += nbytes
        dst_nic.stats.messages_received += 1
        dst_nic.stats.bytes_received += nbytes

        if src == dst:
            at = self.sim.now + extra_latency
            self.sim.post(at, deliver)
            return at

        wire_bytes = nbytes + self.per_message_overhead_bytes
        duration = src_nic.wire_time(wire_bytes)
        tx_start, _tx_end = src_nic.reserve_tx(duration)
        earliest_rx = tx_start + self.latency_s + extra_latency
        _rx_start, rx_end = dst_nic.reserve_rx(earliest_rx, duration)
        self.sim.post(rx_end, deliver)
        return rx_end

    def transfer_chunked(
        self,
        src: str,
        dst: str,
        nbytes: int,
        deliver: Callable[[], None],
        chunk_bytes: int = 256 * 1024,
    ) -> None:
        """Bulk transfer split into chunks reserved one at a time.

        A monolithic :meth:`transfer` books the sender's TX link for the
        whole payload contiguously, which would stall application messages
        behind a multi-megabyte checkpoint image.  Real TCP interleaves
        streams; chunking approximates that: each chunk is reserved when
        the previous one completes, letting other traffic slot in between.
        """
        if nbytes <= chunk_bytes:
            self.transfer(src, dst, nbytes, deliver)
            return
        remaining = {"n": nbytes}

        def _next_chunk() -> None:
            take = min(chunk_bytes, remaining["n"])
            remaining["n"] -= take
            if remaining["n"] > 0:
                self.transfer(src, dst, take, _next_chunk)
            else:
                self.transfer(src, dst, take, deliver)

        _next_chunk()
