"""Calibrated network model: NICs, switch, latency/bandwidth.

The model reproduces the paper's testbed topology — compute nodes connected
through a single Fast-Ethernet switch — at the level of detail the
experiments are sensitive to:

* **Serialization**: a message of ``n`` bytes occupies the sender's TX link
  for ``n * 8 / bandwidth`` seconds and the receiver's RX link for the same
  duration, shifted by the propagation+switch latency.  Concurrent messages
  to one receiver therefore queue (this is what saturates the Event Logger
  at high event rates, Fig. 7 LU-16).
* **Duplex**: a full-duplex NIC has independent TX/RX resources; a
  half-duplex NIC shares one.  The paper observes that MPICH-Vdummy can
  exploit full duplex while MPICH-P4 cannot (Fig. 9); the stack config
  chooses the flag.
* **Goodput**: Ethernet/IP/TCP framing is modelled as a fixed per-message
  header plus a goodput factor on the raw 100 Mbit/s wire.

Delivery coalescing (the ``engine_coalesce`` knob): RX reservations are
serial per NIC, so each NIC books strictly increasing delivery times.  On a
coalescing engine every NIC keeps its in-flight deliveries in one
:class:`~repro.simulator.engine.SerialDrain` — a pending deque plus a
single drain timer riding the heap at the head delivery's pre-claimed
``(time, seq)`` slot — instead of one heap entry per message.  Heap
occupancy drops from O(in-flight messages) to O(NICs) at bit-identical
delivery order.

No topology beyond a single switch is modelled; the paper's cluster used
one Fast Ethernet switch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.simulator.engine import SerialDrain, SimulationError, Simulator


@dataclass(slots=True)
class TransferStats:
    """Per-NIC traffic accounting (used by the piggyback-volume probes).

    ``messages_*`` count wire messages: every chunk of a chunked transfer
    is one wire message (it pays its own framing overhead).  The logical
    view is kept separately: ``logical_messages_*`` count one per
    :meth:`Network.transfer` / :meth:`Network.transfer_chunked` call, and
    ``chunks_*`` count the wire messages that belonged to chunked
    transfers, so ``messages_sent == logical_messages_sent`` exactly when
    nothing was chunked.
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    messages_received: int = 0
    bytes_received: int = 0
    logical_messages_sent: int = 0
    logical_messages_received: int = 0
    chunks_sent: int = 0
    chunks_received: int = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "messages_received": self.messages_received,
            "bytes_received": self.bytes_received,
            "logical_messages_sent": self.logical_messages_sent,
            "logical_messages_received": self.logical_messages_received,
            "chunks_sent": self.chunks_sent,
            "chunks_received": self.chunks_received,
        }


class Nic:
    """One endpoint attached to the switch."""

    __slots__ = (
        "sim", "name", "bandwidth_bps", "full_duplex",
        "_tx_busy_until", "_rx_busy_until", "stats", "rx_drain",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        bandwidth_bps: float,
        full_duplex: bool = True,
    ) -> None:
        if bandwidth_bps <= 0:
            raise SimulationError("bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = float(bandwidth_bps)
        self.full_duplex = bool(full_duplex)
        self._tx_busy_until = 0.0
        self._rx_busy_until = 0.0
        self.stats = TransferStats()
        #: coalesced in-flight deliveries (None on the reference engine:
        #: the network posts one heap entry per message instead)
        self.rx_drain: Optional[SerialDrain] = (
            SerialDrain(sim) if sim.coalesced else None
        )

    # -- serialization bookkeeping ------------------------------------- #

    def wire_time(self, nbytes: int) -> float:
        return nbytes * 8.0 / self.bandwidth_bps

    def reserve_tx(self, duration: float) -> tuple[float, float]:
        """Reserve the TX link; returns (start, end) of the transmission."""
        busy = self._tx_busy_until if self.full_duplex else max(
            self._tx_busy_until, self._rx_busy_until
        )
        start = max(self.sim.now, busy)
        end = start + duration
        self._tx_busy_until = end
        if not self.full_duplex:
            self._rx_busy_until = end
        return start, end

    def reserve_rx(self, earliest: float, duration: float) -> tuple[float, float]:
        """Reserve the RX link no earlier than ``earliest``."""
        busy = self._rx_busy_until if self.full_duplex else max(
            self._tx_busy_until, self._rx_busy_until
        )
        start = max(earliest, busy)
        end = start + duration
        self._rx_busy_until = end
        if not self.full_duplex:
            self._tx_busy_until = end
        return start, end

    @property
    def tx_busy_until(self) -> float:
        return self._tx_busy_until

    @property
    def rx_busy_until(self) -> float:
        return self._rx_busy_until


class Network:
    """Single-switch network connecting named NICs.

    Parameters
    ----------
    sim: engine
    bandwidth_bps: raw wire rate (Fast Ethernet: 100e6)
    latency_s: one-way propagation + switch latency
    per_message_overhead_bytes: framing headers charged to every message
    goodput_factor: fraction of the raw wire rate achievable by TCP payload
    """

    __slots__ = (
        "sim", "bandwidth_bps", "latency_s", "per_message_overhead_bytes",
        "goodput_factor", "nics", "total_messages",
        "total_logical_messages", "total_chunk_messages", "total_bytes",
        "exchange",
    )

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: float = 100e6,
        latency_s: float = 55e-6,
        per_message_overhead_bytes: int = 66,
        goodput_factor: float = 0.93,
    ) -> None:
        self.sim = sim
        self.bandwidth_bps = float(bandwidth_bps)
        self.latency_s = float(latency_s)
        self.per_message_overhead_bytes = int(per_message_overhead_bytes)
        self.goodput_factor = float(goodput_factor)
        self.nics: dict[str, Nic] = {}
        #: wire messages (each chunk of a chunked transfer counts once)
        self.total_messages = 0
        #: logical messages (a whole chunked transfer counts once)
        self.total_logical_messages = 0
        #: wire messages that belonged to chunked transfers
        self.total_chunk_messages = 0
        self.total_bytes = 0
        #: hostexec worker seam: when a crossing buffer is installed
        #: here, every cross-host transfer defers its destination-side
        #: effects (RX stats, RX reservation, delivery) to the window
        #: barrier, which replays them in global seq order.  None (the
        #: default) keeps the verbatim immediate path.
        self.exchange: Optional[list[list]] = None

    # ------------------------------------------------------------------ #

    def attach(
        self,
        name: str,
        full_duplex: bool = True,
        bandwidth_bps: Optional[float] = None,
    ) -> Nic:
        """Attach a NIC; ``bandwidth_bps`` overrides the network default
        (used for the checkpoint server's aggregated stable-storage link)."""
        if name in self.nics:
            raise SimulationError(f"NIC {name!r} already attached")
        raw = bandwidth_bps if bandwidth_bps is not None else self.bandwidth_bps
        nic = Nic(
            self.sim,
            name,
            raw * self.goodput_factor,
            full_duplex=full_duplex,
        )
        self.nics[name] = nic
        return nic

    def nic(self, name: str) -> Nic:
        return self.nics[name]

    # simlint: hot
    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: int,
        deliver: Callable[..., None],
        extra_latency: float = 0.0,
        args: tuple = (),
        _chunk: bool = False,
    ) -> float:
        """Move ``nbytes`` from NIC ``src`` to NIC ``dst``.

        ``deliver(*args)`` runs when the last byte has been received
        (passing ``args`` instead of closing over them keeps the hot path
        free of one closure allocation per message).  Returns the
        scheduled delivery time (useful for tests).  Loopback transfers
        (src == dst) skip the wire entirely and cost only ``extra_latency``.
        """
        if nbytes < 0:
            raise SimulationError("negative transfer size")
        src_nic = self.nics[src]
        dst_nic = self.nics[dst]
        if self.exchange is not None and src != dst:
            # hostexec worker mode: *every* cross-host delivery (even one
            # whose destination this worker owns) goes through the
            # barrier so per-NIC RX reservations happen in global seq
            # order, exactly as the single engine interleaves them
            return self._transfer_deferred(
                src_nic, dst, nbytes, deliver, extra_latency, args, _chunk
            )
        self.total_messages += 1
        self.total_bytes += nbytes
        src_stats = src_nic.stats
        dst_stats = dst_nic.stats
        src_stats.messages_sent += 1
        src_stats.bytes_sent += nbytes
        dst_stats.messages_received += 1
        dst_stats.bytes_received += nbytes
        if _chunk:
            src_stats.chunks_sent += 1
            dst_stats.chunks_received += 1
        else:
            self.total_logical_messages += 1
            src_stats.logical_messages_sent += 1
            dst_stats.logical_messages_received += 1

        if src == dst:
            at = self.sim.now + extra_latency
            self.sim.post(at, deliver, *args)
            return at

        wire_bytes = nbytes + self.per_message_overhead_bytes
        duration = src_nic.wire_time(wire_bytes)
        tx_start, _tx_end = src_nic.reserve_tx(duration)
        earliest_rx = tx_start + self.latency_s + extra_latency
        _rx_start, rx_end = dst_nic.reserve_rx(earliest_rx, duration)
        sim = self.sim
        if sim.partitioned and sim.is_remote(dst):
            # cross-partition delivery: buffered in the exchange with its
            # seq claimed here (exactly where the drain enqueue below
            # would have claimed it) and merged at the window barrier;
            # rx_end >= tx_start + latency_s >= window_end, the
            # conservative invariant
            sim.exchange_post(dst, rx_end, deliver, args)
            return rx_end
        drain = dst_nic.rx_drain
        if drain is not None:
            # rx_end is strictly increasing per NIC (reserve_rx is serial
            # and duration > 0), the SerialDrain precondition
            drain.enqueue(rx_end, deliver, *args)
        else:
            sim.post(rx_end, deliver, *args)
        return rx_end

    def _transfer_deferred(
        self,
        src_nic: Nic,
        dst: str,
        nbytes: int,
        deliver: Callable[..., None],
        extra_latency: float,
        args: tuple,
        chunk: bool,
    ) -> float:
        """Cross-host transfer under the hostexec exchange seam.

        TX-side accounting and the TX reservation happen immediately (the
        sending host is owned by the executing worker); the global seq is
        claimed here — exactly where the immediate path's drain enqueue /
        post would have claimed it — and everything destination-side is
        packed into a crossing record the window barrier applies in
        global seq order.  Returns the earliest possible delivery time
        (a lower bound on the barrier-computed ``rx_end``).
        """
        self.total_messages += 1
        self.total_bytes += nbytes
        src_stats = src_nic.stats
        src_stats.messages_sent += 1
        src_stats.bytes_sent += nbytes
        if chunk:
            src_stats.chunks_sent += 1
        else:
            self.total_logical_messages += 1
            src_stats.logical_messages_sent += 1
        wire_bytes = nbytes + self.per_message_overhead_bytes
        duration = src_nic.wire_time(wire_bytes)
        tx_start, _tx_end = src_nic.reserve_tx(duration)
        earliest_rx = tx_start + self.latency_s + extra_latency
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        # crossing record: [earliest_rx, seq, dst, duration, nbytes,
        # chunk, deliver, args] — seq at index 1 so the claim registry
        # renumbers it in place like any engine entry
        rec: list = [earliest_rx, seq, dst, duration, nbytes, chunk, deliver, args]
        claim_log = sim._claim_log
        if claim_log is not None:
            claim_log.append(rec)
        exchange = self.exchange
        if exchange is None:  # pragma: no cover - guarded by the caller
            raise SimulationError("deferred transfer without an exchange")
        exchange.append(rec)
        return earliest_rx

    def transfer_chunked(
        self,
        src: str,
        dst: str,
        nbytes: int,
        deliver: Callable[[], None],
        chunk_bytes: int = 256 * 1024,
    ) -> None:
        """Bulk transfer split into chunks reserved one at a time.

        A monolithic :meth:`transfer` books the sender's TX link for the
        whole payload contiguously, which would stall application messages
        behind a multi-megabyte checkpoint image.  Real TCP interleaves
        streams; chunking approximates that: each chunk is reserved when
        the previous one completes, letting other traffic slot in between.

        One continuation (:meth:`_chunk_step` with a mutable remaining
        counter) is shared by every chunk — no per-chunk closure chain.
        The whole transfer counts as **one** logical message; each chunk
        is one wire message and is counted in the ``chunks_*`` /
        ``total_chunk_messages`` columns (see :class:`TransferStats`).
        """
        self.total_logical_messages += 1
        self.nics[src].stats.logical_messages_sent += 1
        self.nics[dst].stats.logical_messages_received += 1
        if nbytes <= chunk_bytes:
            self.transfer(src, dst, nbytes, deliver, _chunk=True)
            self.total_chunk_messages += 1
            return
        state = [src, dst, nbytes, chunk_bytes, deliver]
        self._chunk_step(state)

    def _chunk_step(self, state: list) -> None:
        src, dst, remaining, chunk_bytes, deliver = state
        take = min(chunk_bytes, remaining)
        state[2] = remaining - take
        self.total_chunk_messages += 1
        if state[2] > 0:
            self.transfer(src, dst, take, self._chunk_step, args=(state,), _chunk=True)
        else:
            self.transfer(src, dst, take, deliver, _chunk=True)
