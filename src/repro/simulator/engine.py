"""Deterministic discrete-event simulation engine.

The engine executes callbacks scheduled at absolute simulated times in
``(time, seq)`` order, so two events scheduled for the same instant fire in
scheduling order.  This makes every simulation in the repository
bit-reproducible, which the test suite relies on (e.g. a fault-free run and
a faulty run with recovery must produce identical application results).

Two interchangeable implementations share that contract:

* :class:`Simulator` — the default *macro-event* engine.  The heap holds
  **unique timestamps**; each timestamp maps to a FIFO bucket of entries.
  Because the global sequence number grows monotonically, append order
  within a bucket *is* ``seq`` order, so draining one bucket left-to-right
  in a single loop iteration reproduces the reference execution order
  exactly while paying one heap push/pop per *timestamp* instead of one
  per event.  The bucket of the timestamp currently being drained doubles
  as the *now-queue*: ``call_soon`` / zero-delay hand-offs append to it
  and execute in the same drain without ever touching the heap.
* :class:`ReferenceSimulator` — the classic one-heap-entry-per-event
  simulator (the seed implementation), kept as the A/B reference path
  behind the ``engine_coalesce`` cluster knob.

Hot-path notes
--------------

Entries are plain lists ``[time, seq, fn, args]``: list layout is shared by
both engines so :class:`EventHandle` cancellation (``fn = None`` in place)
works identically.  :meth:`Simulator.post` is the allocation-lean variant
of :meth:`Simulator.at` for internal callers that do not need a
cancellation handle, and :meth:`Simulator.schedule_bulk` amortizes many
insertions into one pass.

Serial resources (a NIC's RX link, a daemon's receive pipeline, an Event
Logger's select loop) book strictly increasing completion times, so they
never need more than one live heap entry: :class:`SerialDrain` keeps their
pending work in a deque and rides the heap with a single timer re-armed at
the head entry's *pre-claimed* ``(time, seq)`` slot
(:meth:`Simulator.claim_seq` / :meth:`Simulator.post_at_seq`), which keeps
execution order bit-identical to scheduling every entry individually while
dropping heap occupancy from O(queued work) to O(resources).

Nothing in this module knows about processes, networks or MPI; those are
layered on top in :mod:`repro.simulator.process` and
:mod:`repro.simulator.network`.
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Optional


class SimulationError(RuntimeError):
    """Base class for all simulation-level failures."""


class DeadlockError(SimulationError):
    """Raised when the event heap drains while registered actors still wait.

    A discrete-event simulation "hangs" by running out of events while some
    process is still blocked on a future that nothing will ever resolve.
    The engine detects this eagerly and reports the blocked actors so that
    protocol deadlocks show up as crisp test failures instead of silently
    truncated runs.
    """

    def __init__(self, blocked: list[str]) -> None:
        self.blocked = list(blocked)
        msg = "simulation deadlock; blocked actors: " + ", ".join(blocked)
        super().__init__(msg)


# entry layout: [time, seq, fn, args]; fn is None once cancelled
_TIME, _SEQ, _FN, _ARGS = 0, 1, 2, 3


class EventHandle:
    """Cancellable handle for a scheduled callback."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        return self._entry[_FN] is None

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        entry = self._entry
        entry[_FN] = None
        entry[_ARGS] = ()


#: sentinel "no timestamp is being drained" value (compares unequal to
#: every schedulable time)
_NO_LIVE = float("-inf")


class Simulator:
    """Macro-event engine: timestamp heap + per-timestamp FIFO buckets.

    Bucket representation: ``_buckets[t]`` is either a bare entry
    (``[time, seq, fn, args]`` — the overwhelmingly common single-event
    timestamp pays no wrapper list) or a list of entries.  The two are
    distinguished by the type of element 0 (a number for a bare entry, a
    list for a bucket).  While timestamp ``t`` is being drained its bucket
    is moved out of the dict and ``_live`` collects events scheduled *at*
    ``t`` (``call_soon``, zero-delay hand-offs): the now-queue.  Now-queue
    entries carry fresh sequence numbers, which are by construction larger
    than those of every pending entry at ``t``, so draining the bucket
    then the now-queue left-to-right is exactly ``(time, seq)`` order.

    Parameters
    ----------
    trace:
        Optional callable ``trace(time, label)`` invoked for every event
        executed when tracing is enabled; useful when debugging protocol
        interleavings.
    """

    #: downstream layers key their coalesced fast paths off this flag
    coalesced = True
    #: True only on the conservative-window facade
    #: (:class:`repro.simulator.partition.PartitionedSimulator`); the
    #: network checks it before routing a delivery through the exchange
    partitioned = False

    __slots__ = (
        "now",
        "_times",
        "_buckets",
        "_live",
        "_live_time",
        "_seq",
        "_trace",
        "_events_executed",
        "_extra_events",
        "_blocked_actors",
        "_running",
        "_claim_log",
    )

    def __init__(self, trace: Optional[Callable[[float, str], None]] = None) -> None:
        self.now: float = 0.0
        #: heap of timestamps that currently own a bucket
        self._times: list[float] = []
        #: timestamp -> bare entry or FIFO list of entries
        self._buckets: dict[float, list[Any]] = {}
        #: now-queue of the timestamp being drained (reused list)
        self._live: list[list[Any]] = []
        self._live_time: float = _NO_LIVE
        self._seq = 0
        self._trace = trace
        self._events_executed = 0
        #: extra executions credited by coalesced drains that deliver more
        #: than one entry per timer fire (see SerialDrain)
        self._extra_events = 0
        # Actors register a "blocked reason" here so that deadlocks can be
        # diagnosed; see DeadlockError.
        self._blocked_actors: dict[Any, str] = {}
        self._running = False
        # Sequence-claim registry for the multiprocess partition backend
        # (repro.hostexec): when a worker activates it, every seq claimed
        # during a window registers the claiming entry here so the barrier
        # can rewrite provisional sequence numbers to their global slots.
        # None (the default) costs the claim sites a single is-None check.
        self._claim_log: Optional[list[list[Any]]] = None

    # ------------------------------------------------------------------ #
    # scheduling

    def _put(self, time: float, entry: list) -> None:
        if time == self._live_time:
            self._live.append(entry)
            return
        buckets = self._buckets
        b = buckets.get(time)
        if b is None:
            buckets[time] = entry
            heappush(self._times, time)
        elif type(b[0]) is list:
            b.append(entry)
        else:
            buckets[time] = [b, entry]

    # simlint: hot
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` ``delay`` seconds from now."""
        if not delay >= 0:  # also catches NaN
            raise SimulationError(f"negative or NaN delay: {delay!r}")
        self._seq = seq = self._seq + 1
        time = self.now + delay
        entry = [time, seq, fn, args]
        # _put(), inlined (hot path)
        if time == self._live_time:
            self._live.append(entry)
        else:
            buckets = self._buckets
            b = buckets.get(time)
            if b is None:
                buckets[time] = entry
                heappush(self._times, time)
            elif type(b[0]) is list:
                b.append(entry)
            else:
                buckets[time] = [b, entry]
        return EventHandle(entry)

    # simlint: hot
    def at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self.now}"
            )
        self._seq = seq = self._seq + 1
        entry = [time, seq, fn, args]
        # _put(), inlined (hot path)
        if time == self._live_time:
            self._live.append(entry)
        else:
            buckets = self._buckets
            b = buckets.get(time)
            if b is None:
                buckets[time] = entry
                heappush(self._times, time)
            elif type(b[0]) is list:
                b.append(entry)
            else:
                buckets[time] = [b, entry]
        return EventHandle(entry)

    # simlint: hot
    def post(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """:meth:`at` without an :class:`EventHandle` (hot path).

        Internal callers that never cancel (network deliveries, daemon
        hand-offs) use this to skip one object allocation per event.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self.now}"
            )
        self._seq = seq = self._seq + 1
        entry = [time, seq, fn, args]
        # _put(), inlined (hot path)
        if time == self._live_time:
            self._live.append(entry)
        else:
            buckets = self._buckets
            b = buckets.get(time)
            if b is None:
                buckets[time] = entry
                heappush(self._times, time)
            elif type(b[0]) is list:
                b.append(entry)
            else:
                buckets[time] = [b, entry]

    def call_soon(self, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn`` at the current instant (after pending same-time events).

        While the current timestamp is being drained this appends to the
        now-queue and never touches the heap.
        """
        return self.at(self.now, fn, *args)

    def schedule_bulk(
        self, items: Iterable[tuple[float, Callable[..., None], tuple]]
    ) -> None:
        """Schedule many ``(delay, fn, args)`` triples in one operation.

        Equivalent to calling :meth:`schedule` per triple (no handles are
        returned).  Entries land directly in their timestamp buckets; only
        previously unseen timestamps pay a heap push.
        """
        now = self.now
        seq = self._seq
        put = self._put
        for delay, fn, args in items:
            if not delay >= 0:
                raise SimulationError(f"negative or NaN delay: {delay!r}")
            seq += 1
            self._seq = seq
            put(now + delay, [now + delay, seq, fn, args])

    # -- order-exact deferred scheduling (SerialDrain support) ---------- #

    def claim_seq(self) -> int:
        """Reserve the sequence slot the next scheduled event would get.

        A :class:`SerialDrain` claims the slot when work is *enqueued* and
        redeems it when its timer is armed, so the timer fires exactly
        where a per-entry ``post`` at enqueue time would have fired.
        """
        self._seq = seq = self._seq + 1
        return seq

    def post_at_seq(self, time: float, seq: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn`` at ``(time, seq)`` for a previously claimed seq.

        The entry is inserted at its seq-sorted position inside the
        timestamp bucket (buckets are otherwise append-ordered, i.e.
        seq-ascending, so a short reverse scan finds the slot).  Serial
        resources book strictly increasing completion times, so drain
        timers never target the instant currently being drained; should
        one ever land there it is appended to the now-queue — a sorted
        insert could land behind the drain cursor and silently drop the
        event, while an append is always executed.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self.now}"
            )
        entry = [time, seq, fn, args]
        if time == self._live_time:
            self._live.append(entry)
            return
        buckets = self._buckets
        b = buckets.get(time)
        if b is None:
            buckets[time] = entry
            heappush(self._times, time)
            return
        if type(b[0]) is not list:
            b = buckets[time] = [b]
        bucket = b
        i = len(bucket)
        while i > 0 and bucket[i - 1][_SEQ] > seq:
            i -= 1
        bucket.insert(i, entry)

    def credit_events(self, n: int) -> None:
        """Count ``n`` extra executions performed inside one engine event
        (a drain that delivered more than its head entry)."""
        self._extra_events += n

    # -- partition seam (real implementation on PartitionedSimulator) --- #

    def is_remote(self, host: str) -> bool:
        """Would delivering to ``host`` cross a partition?  Never, here."""
        return False

    def exchange_post(
        self,
        dst_host: str,
        time: float,
        fn: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        raise SimulationError(
            "exchange_post on a non-partitioned engine"
        )  # pragma: no cover - guarded by the `partitioned` flag

    def adopt_drain(self, drain: "SerialDrain") -> None:
        """Registration hook for :class:`SerialDrain` construction.

        The base engines need no bookkeeping; the multiprocess worker
        facade (:mod:`repro.hostexec`) overrides this to track every
        drain so armed timers can be renumbered at window barriers.
        """

    # ------------------------------------------------------------------ #
    # deadlock bookkeeping

    def mark_blocked(self, actor: Any, reason: str) -> None:
        """Record that ``actor`` is waiting for an external wake-up."""
        self._blocked_actors[actor] = reason

    def mark_unblocked(self, actor: Any) -> None:
        self._blocked_actors.pop(actor, None)

    @property
    def blocked_actors(self) -> dict[Any, str]:
        return dict(self._blocked_actors)

    # ------------------------------------------------------------------ #
    # execution

    @property
    def events_executed(self) -> int:
        return self._events_executed + self._extra_events

    def peek_time(self) -> Optional[float]:
        """Time of the next pending live event, or None when idle."""
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            b = buckets[t]
            entries = b if type(b[0]) is list else (b,)
            if any(entry[_FN] is not None for entry in entries):
                return t
            heappop(times)
            del buckets[t]
        return None

    def step(self) -> bool:
        """Execute the next event.  Returns False when nothing is pending."""
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            b = buckets[t]
            bucket = b if type(b[0]) is list else [b]
            while bucket:
                entry = bucket.pop(0)
                if not bucket:
                    heappop(times)
                    del buckets[t]
                else:
                    buckets[t] = bucket
                fn = entry[_FN]
                if fn is None:
                    continue
                self.now = t
                self._events_executed += 1
                if self._trace is not None:
                    self._trace(t, getattr(fn, "__qualname__", repr(fn)))
                fn(*entry[_ARGS])
                return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        check_deadlock: bool = True,
    ) -> None:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (events at exactly
            ``until`` still execute).
        max_events:
            Safety valve for runaway protocols; exactly ``max_events``
            events execute, then SimulationError is raised if more are
            pending (the excess event stays scheduled).
        check_deadlock:
            When True (default) raise :class:`DeadlockError` if the queue
            drains while actors are still marked blocked.

        Both paths drain one whole timestamp bucket per heap pop; events
        scheduled *at* the timestamp being drained join the live bucket
        and execute in the same iteration (the now-queue).
        """
        self._running = True
        times = self._times
        buckets = self._buckets
        live = self._live
        pop = heappop
        b = None
        i = j = 0
        single_done = False
        try:
            if until is None and max_events is None and self._trace is None:
                executed = self._events_executed
                try:
                    while times:
                        t = pop(times)
                        b = buckets.pop(t)
                        i = j = 0
                        single_done = False
                        self._live_time = t
                        # the clock advances with the first *live* entry
                        # (cancelled-only buckets leave it untouched,
                        # matching the reference engine)
                        if type(b[0]) is not list:
                            # bare entry: the common single-event timestamp
                            fn = b[_FN]
                            single_done = True
                            if fn is not None:
                                self.now = t
                                executed += 1
                                fn(*b[_ARGS])
                        else:
                            while i < len(b):
                                entry = b[i]
                                i += 1
                                fn = entry[_FN]
                                if fn is None:
                                    continue
                                self.now = t
                                executed += 1
                                fn(*entry[_ARGS])
                        if live:
                            # now-queue: events scheduled at t during the
                            # drain (their seqs postdate the bucket's)
                            while j < len(live):
                                entry = live[j]
                                j += 1
                                fn = entry[_FN]
                                if fn is None:
                                    continue
                                executed += 1
                                fn(*entry[_ARGS])
                            live.clear()
                        b = None
                finally:
                    self._events_executed = executed
            else:
                trace = self._trace
                executed = 0
                while times:
                    t = times[0]
                    if until is not None and t > until:
                        # cancelled-only buckets beyond the deadline stay
                        # parked, matching the reference engine
                        head = buckets[t]
                        entries = head if type(head[0]) is list else (head,)
                        if any(e[_FN] is not None for e in entries):
                            self.now = until
                            return
                        pop(times)
                        del buckets[t]
                        continue
                    pop(times)
                    b = buckets.pop(t)
                    if type(b[0]) is not list:
                        b = [b]
                    i = j = 0
                    single_done = False
                    self._live_time = t
                    while True:
                        if i < len(b):
                            entry = b[i]
                            from_live = False
                        elif j < len(live):
                            entry = live[j]
                            from_live = True
                        else:
                            break
                        fn = entry[_FN]
                        if fn is None:
                            if from_live:
                                j += 1
                            else:
                                i += 1
                            continue
                        if max_events is not None and executed >= max_events:
                            raise SimulationError(f"exceeded max_events={max_events}")
                        if from_live:
                            j += 1
                        else:
                            i += 1
                        self.now = t
                        executed += 1
                        self._events_executed += 1
                        if trace is not None:
                            trace(t, getattr(fn, "__qualname__", repr(fn)))
                        fn(*entry[_ARGS])
                    live.clear()
                    self._live_time = _NO_LIVE
                    b = None
            if check_deadlock and self._blocked_actors:
                raise DeadlockError(
                    sorted(str(r) for r in self._blocked_actors.values())
                )
        except BaseException:
            # a callback raised (or max_events tripped) mid-drain: park the
            # unexecuted tail of the bucket + now-queue back in the dict so
            # a subsequent run() resumes exactly where this one stopped
            if b is not None or live:
                rem = [] if (b is None or single_done) else b[i:]
                rem += live[j:]
                if rem:
                    buckets[t] = rem
                    heappush(times, t)
            live.clear()
            raise
        finally:
            self._live_time = _NO_LIVE
            self._running = False


class ReferenceSimulator(Simulator):
    """One-heap-entry-per-event engine (the seed implementation).

    Selected by ``engine_coalesce=False``; the A/B reference the macro
    engine's bit-identity is benchmarked and property-tested against.
    """

    coalesced = False

    __slots__ = ("_heap",)

    def __init__(self, trace: Optional[Callable[[float, str], None]] = None) -> None:
        super().__init__(trace)
        self._heap: list[list] = []

    # ------------------------------------------------------------------ #
    # scheduling

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        if not delay >= 0:  # also catches NaN
            raise SimulationError(f"negative or NaN delay: {delay!r}")
        # inlined at(): a non-negative delay can never land in the past
        self._seq = seq = self._seq + 1
        entry = [self.now + delay, seq, fn, args]
        heappush(self._heap, entry)
        return EventHandle(entry)

    def at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self.now}"
            )
        self._seq = seq = self._seq + 1
        entry = [time, seq, fn, args]
        heappush(self._heap, entry)
        return EventHandle(entry)

    def post(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self.now}"
            )
        self._seq = seq = self._seq + 1
        heappush(self._heap, [time, seq, fn, args])

    def call_soon(self, fn: Callable[..., None], *args: Any) -> EventHandle:
        return self.at(self.now, fn, *args)

    def schedule_bulk(
        self, items: Iterable[tuple[float, Callable[..., None], tuple]]
    ) -> None:
        """Bulk scheduling; a batch at least as large as the pending heap
        is appended and re-heapified in one O(n) pass."""
        heap = self._heap
        now = self.now
        seq = self._seq
        batch = []
        for delay, fn, args in items:
            if not delay >= 0:
                raise SimulationError(f"negative or NaN delay: {delay!r}")
            seq += 1
            batch.append([now + delay, seq, fn, args])
        self._seq = seq
        if len(batch) >= len(heap):
            heap.extend(batch)
            heapq.heapify(heap)
        else:
            for entry in batch:
                heappush(heap, entry)

    def post_at_seq(self, time: float, seq: int, fn: Callable[..., None], *args: Any) -> None:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self.now}"
            )
        heappush(self._heap, [time, seq, fn, args])

    # ------------------------------------------------------------------ #
    # execution

    def peek_time(self) -> Optional[float]:
        heap = self._heap
        while heap and heap[0][_FN] is None:
            heappop(heap)
        return heap[0][_TIME] if heap else None

    def step(self) -> bool:
        heap = self._heap
        while heap:
            entry = heappop(heap)
            fn = entry[_FN]
            if fn is None:
                continue
            self.now = entry[_TIME]
            self._events_executed += 1
            if self._trace is not None:
                self._trace(self.now, getattr(fn, "__qualname__", repr(fn)))
            fn(*entry[_ARGS])
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        check_deadlock: bool = True,
    ) -> None:
        self._running = True
        heap = self._heap
        pop = heappop
        try:
            if until is None and max_events is None and self._trace is None:
                executed = self._events_executed
                try:
                    while heap:
                        entry = pop(heap)
                        fn = entry[_FN]
                        if fn is None:
                            continue
                        self.now = entry[_TIME]
                        executed += 1
                        fn(*entry[_ARGS])
                finally:
                    self._events_executed = executed
            else:
                trace = self._trace
                executed = 0
                while heap:
                    entry = heap[0]
                    fn = entry[_FN]
                    if fn is None:
                        pop(heap)
                        continue
                    t = entry[_TIME]
                    if until is not None and t > until:
                        self.now = until
                        return
                    if max_events is not None and executed >= max_events:
                        raise SimulationError(f"exceeded max_events={max_events}")
                    pop(heap)
                    self.now = t
                    self._events_executed += 1
                    if trace is not None:
                        trace(t, getattr(fn, "__qualname__", repr(fn)))
                    fn(*entry[_ARGS])
                    executed += 1
            if check_deadlock and self._blocked_actors:
                raise DeadlockError(
                    sorted(str(r) for r in self._blocked_actors.values())
                )
        finally:
            self._running = False


def make_simulator(
    trace: Optional[Callable[[float, str], None]] = None,
    coalesce: bool = True,
    partitions: int = 0,
    lookahead_s: float = 0.0,
) -> Simulator:
    """Engine factory keyed by the ``engine_coalesce`` and
    ``partition_ranks`` cluster knobs.

    ``partitions > 0`` selects the conservative-window facade
    (:class:`repro.simulator.partition.PartitionedSimulator`) with the
    given window width; ``partitions == 0`` keeps the verbatim
    single-store engines.
    """
    if partitions > 0:
        from repro.simulator.partition import PartitionedSimulator

        return PartitionedSimulator(
            partitions, lookahead_s, trace=trace, coalesce=coalesce
        )
    return Simulator(trace) if coalesce else ReferenceSimulator(trace)


class SerialDrain:
    """Order-exact pending queue for one serial resource.

    A serial resource (a NIC's RX link, a daemon's single-threaded receive
    pipeline, an Event Logger's select loop) books strictly increasing
    completion times, so at any instant it needs at most one live engine
    event.  Work is appended to a deque as ``(ready_time, seq, fn, args)``
    with the sequence slot *claimed at enqueue time*; a single timer rides
    the engine at the head entry's ``(ready_time, seq)``, fires, delivers
    every entry whose ready time has arrived (exactly one when completion
    times are strictly increasing), and re-arms at the new head's reserved
    slot.  Claimed slots make execution order — and therefore the whole
    simulation — bit-identical to scheduling each entry individually,
    while heap occupancy drops from O(queued work) to O(resources).

    Entries delivered beyond the head in one fire are credited back to
    ``events_executed`` so event counts stay comparable across modes.
    """

    __slots__ = ("sim", "pending", "armed", "_entry")

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        # entries share the engine's [time, seq, fn, args] list layout so
        # the hostexec claim registry can renumber them in place
        self.pending: deque[list[Any]] = deque()
        self.armed = False
        # reusable timer entry: the timer is re-armed only after it fired
        # (its entry left the queue), so one list serves every arming
        self._entry = [0.0, 0, self._drain, ()]
        sim.adopt_drain(self)

    def _arm(self, when: float, seq: int) -> None:
        """Specialized put of the (reused) timer entry at ``(when, seq)``.

        ``when`` is strictly in the future (serial resources book
        ``now + duration`` with positive duration), so no past/now-queue
        checks are needed; the claimed seq may predate entries already in
        the bucket, hence the seq-sorted insert.
        """
        sim = self.sim
        entry = self._entry
        entry[0] = when
        entry[1] = seq
        buckets = sim._buckets
        b = buckets.get(when)
        if b is None:
            buckets[when] = entry
            heappush(sim._times, when)
        elif type(b[0]) is list:
            i = len(b)
            while i > 0 and b[i - 1][1] > seq:
                i -= 1
            b.insert(i, entry)
        else:
            buckets[when] = [entry, b] if b[1] > seq else [b, entry]

    def __len__(self) -> int:
        return len(self.pending)

    def enqueue(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Queue ``fn(*args)`` for ``when`` (serial completion order)."""
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        entry = [when, seq, fn, args]
        log = sim._claim_log
        if log is not None:
            log.append(entry)
        pending = self.pending
        if pending:
            # the timer is armed at the current head; just join the queue
            if when >= pending[-1][0]:
                pending.append(entry)
                return
            # ready time regressed (a resource reset mid-simulation, e.g.
            # a daemon restarting over a stale pipeline): schedule this
            # entry individually — order-exact either way
            sim.post_at_seq(when, seq, fn, *args)
            return
        pending.append(entry)
        if not self.armed:
            self.armed = True
            self._arm(when, seq)
        # else: an enqueue from inside the head's delivery callback (the
        # deque is momentarily empty mid-_drain); the drain tail re-arms

    def _drain(self) -> None:
        pending = self.pending
        sim = self.sim
        try:
            entry = pending.popleft()  # the timer fired at the head's slot
            entry[2](*entry[3])
            now = sim.now
            while pending and pending[0][0] <= now:
                # completion times are strictly increasing for the
                # resources drained this way, so this is defensive; extra
                # deliveries are credited to keep events_executed
                # comparable across engines
                e = pending.popleft()
                e[2](*e[3])
                sim.credit_events(1)
        finally:
            # re-arm even when a delivery raised: the raising entry is
            # consumed (like the raising event on the reference engine)
            # but the rest of the queue must survive a resumed run()
            if pending:
                head = pending[0]
                self._arm(head[0], head[1])
            else:
                self.armed = False
