"""Deterministic discrete-event simulation engine.

The engine is a classic event-heap simulator: callbacks are scheduled at
absolute simulated times and executed in (time, sequence) order, so two
events scheduled for the same instant fire in scheduling order.  This makes
every simulation in the repository bit-reproducible, which the test suite
relies on (e.g. a fault-free run and a faulty run with recovery must produce
identical application results).

Hot-path notes
--------------

Every simulated event costs one heap push and one heap pop, so the entry
representation is the single biggest constant factor of the whole
repository.  Entries are plain lists ``[time, seq, fn, args]``: list
comparison is elementwise in C and the unique ``seq`` guarantees the
comparison never reaches ``fn``, so no rich-comparison dunder or dataclass
construction is ever paid.  Cancellation sets ``fn`` to ``None`` in place
(the sentinel the pop loops skip).  :meth:`Simulator.post` is the
allocation-free variant of :meth:`Simulator.at` for internal callers that
do not need a cancellation handle, and :meth:`Simulator.schedule_bulk`
amortizes many pushes into one heapify.

Nothing in this module knows about processes, networks or MPI; those are
layered on top in :mod:`repro.simulator.process` and
:mod:`repro.simulator.network`.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Any, Callable, Iterable, Optional


class SimulationError(RuntimeError):
    """Base class for all simulation-level failures."""


class DeadlockError(SimulationError):
    """Raised when the event heap drains while registered actors still wait.

    A discrete-event simulation "hangs" by running out of events while some
    process is still blocked on a future that nothing will ever resolve.
    The engine detects this eagerly and reports the blocked actors so that
    protocol deadlocks show up as crisp test failures instead of silently
    truncated runs.
    """

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        msg = "simulation deadlock; blocked actors: " + ", ".join(blocked)
        super().__init__(msg)


# heap entry layout: [time, seq, fn, args]; fn is None once cancelled
_TIME, _SEQ, _FN, _ARGS = 0, 1, 2, 3


class EventHandle:
    """Cancellable handle for a scheduled callback."""

    __slots__ = ("_entry",)

    def __init__(self, entry: list):
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        return self._entry[_FN] is None

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        entry = self._entry
        entry[_FN] = None
        entry[_ARGS] = ()


class Simulator:
    """Event heap + simulated clock.

    Parameters
    ----------
    trace:
        Optional callable ``trace(time, label)`` invoked for every event
        executed when tracing is enabled; useful when debugging protocol
        interleavings.
    """

    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "_trace",
        "_events_executed",
        "_blocked_actors",
        "_running",
    )

    def __init__(self, trace: Optional[Callable[[float, str], None]] = None):
        self.now: float = 0.0
        self._heap: list[list] = []
        self._seq = 0
        self._trace = trace
        self._events_executed = 0
        # Actors register a "blocked reason" here so that deadlocks can be
        # diagnosed; see DeadlockError.
        self._blocked_actors: dict[Any, str] = {}
        self._running = False

    # ------------------------------------------------------------------ #
    # scheduling

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` ``delay`` seconds from now."""
        if not delay >= 0:  # also catches NaN
            raise SimulationError(f"negative or NaN delay: {delay!r}")
        # inlined at(): a non-negative delay can never land in the past
        self._seq = seq = self._seq + 1
        entry = [self.now + delay, seq, fn, args]
        heappush(self._heap, entry)
        return EventHandle(entry)

    def at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self.now}"
            )
        self._seq = seq = self._seq + 1
        entry = [time, seq, fn, args]
        heappush(self._heap, entry)
        return EventHandle(entry)

    def post(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """:meth:`at` without an :class:`EventHandle` (hot path).

        Internal callers that never cancel (network deliveries, daemon
        hand-offs) use this to skip one object allocation per event.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self.now}"
            )
        self._seq = seq = self._seq + 1
        heappush(self._heap, [time, seq, fn, args])

    def call_soon(self, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn`` at the current instant (after pending same-time events)."""
        return self.at(self.now, fn, *args)

    def schedule_bulk(
        self, items: Iterable[tuple[float, Callable[..., None], tuple]]
    ) -> None:
        """Schedule many ``(delay, fn, args)`` triples in one operation.

        Equivalent to calling :meth:`schedule` per triple (no handles are
        returned).  When the batch is at least as large as the pending
        heap, the entries are appended and the heap rebuilt in one O(n)
        heapify instead of n O(log n) pushes.
        """
        heap = self._heap
        now = self.now
        seq = self._seq
        batch = []
        for delay, fn, args in items:
            if not delay >= 0:
                raise SimulationError(f"negative or NaN delay: {delay!r}")
            seq += 1
            batch.append([now + delay, seq, fn, args])
        self._seq = seq
        if len(batch) >= len(heap):
            heap.extend(batch)
            heapq.heapify(heap)
        else:
            for entry in batch:
                heappush(heap, entry)

    # ------------------------------------------------------------------ #
    # deadlock bookkeeping

    def mark_blocked(self, actor: Any, reason: str) -> None:
        """Record that ``actor`` is waiting for an external wake-up."""
        self._blocked_actors[actor] = reason

    def mark_unblocked(self, actor: Any) -> None:
        self._blocked_actors.pop(actor, None)

    @property
    def blocked_actors(self) -> dict[Any, str]:
        return dict(self._blocked_actors)

    # ------------------------------------------------------------------ #
    # execution

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when the heap is empty."""
        heap = self._heap
        while heap and heap[0][_FN] is None:
            heappop(heap)
        return heap[0][_TIME] if heap else None

    def step(self) -> bool:
        """Execute the next event.  Returns False when the heap is empty."""
        heap = self._heap
        while heap:
            entry = heappop(heap)
            fn = entry[_FN]
            if fn is None:
                continue
            self.now = entry[_TIME]
            self._events_executed += 1
            if self._trace is not None:
                self._trace(self.now, getattr(fn, "__qualname__", repr(fn)))
            fn(*entry[_ARGS])
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        check_deadlock: bool = True,
    ) -> None:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (events at exactly
            ``until`` still execute).
        max_events:
            Safety valve for runaway protocols; raises SimulationError when
            exceeded.
        check_deadlock:
            When True (default) raise :class:`DeadlockError` if the heap
            drains while actors are still marked blocked.

        The common case (no ``until``, no ``max_events``, no trace) runs a
        tight pop-and-call loop with one heap touch per event; the general
        case peeks the deadline before popping.
        """
        self._running = True
        heap = self._heap
        pop = heappop
        try:
            if until is None and max_events is None and self._trace is None:
                executed = self._events_executed
                try:
                    while heap:
                        entry = pop(heap)
                        fn = entry[_FN]
                        if fn is None:
                            continue
                        self.now = entry[_TIME]
                        executed += 1
                        fn(*entry[_ARGS])
                finally:
                    self._events_executed = executed
            else:
                executed = 0
                while heap:
                    entry = heap[0]
                    if entry[_FN] is None:
                        pop(heap)
                        continue
                    t = entry[_TIME]
                    if until is not None and t > until:
                        self.now = until
                        return
                    pop(heap)
                    self.now = t
                    self._events_executed += 1
                    if self._trace is not None:
                        self._trace(
                            t, getattr(entry[_FN], "__qualname__", repr(entry[_FN]))
                        )
                    entry[_FN](*entry[_ARGS])
                    executed += 1
                    if max_events is not None and executed > max_events:
                        raise SimulationError(f"exceeded max_events={max_events}")
            if check_deadlock and self._blocked_actors:
                raise DeadlockError(
                    sorted(str(r) for r in self._blocked_actors.values())
                )
        finally:
            self._running = False
