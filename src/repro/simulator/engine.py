"""Deterministic discrete-event simulation engine.

The engine is a classic event-heap simulator: callbacks are scheduled at
absolute simulated times and executed in (time, sequence) order, so two
events scheduled for the same instant fire in scheduling order.  This makes
every simulation in the repository bit-reproducible, which the test suite
relies on (e.g. a fault-free run and a faulty run with recovery must produce
identical application results).

Nothing in this module knows about processes, networks or MPI; those are
layered on top in :mod:`repro.simulator.process` and
:mod:`repro.simulator.network`.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Base class for all simulation-level failures."""


class DeadlockError(SimulationError):
    """Raised when the event heap drains while registered actors still wait.

    A discrete-event simulation "hangs" by running out of events while some
    process is still blocked on a future that nothing will ever resolve.
    The engine detects this eagerly and reports the blocked actors so that
    protocol deadlocks show up as crisp test failures instead of silently
    truncated runs.
    """

    def __init__(self, blocked: list[str]):
        self.blocked = list(blocked)
        msg = "simulation deadlock; blocked actors: " + ", ".join(blocked)
        super().__init__(msg)


@dataclass(order=True)
class _HeapEntry:
    time: float
    seq: int
    fn: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Cancellable handle for a scheduled callback."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _HeapEntry):
        self._entry = entry

    @property
    def time(self) -> float:
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        self._entry.cancelled = True


class Simulator:
    """Event heap + simulated clock.

    Parameters
    ----------
    trace:
        Optional callable ``trace(time, label)`` invoked for every event
        executed when tracing is enabled; useful when debugging protocol
        interleavings.
    """

    def __init__(self, trace: Optional[Callable[[float, str], None]] = None):
        self.now: float = 0.0
        self._heap: list[_HeapEntry] = []
        self._seq = itertools.count()
        self._trace = trace
        self._events_executed = 0
        # Actors register a "blocked reason" here so that deadlocks can be
        # diagnosed; see DeadlockError.
        self._blocked_actors: dict[Any, str] = {}
        self._running = False

    # ------------------------------------------------------------------ #
    # scheduling

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` ``delay`` seconds from now."""
        if delay < 0 or math.isnan(delay):
            raise SimulationError(f"negative or NaN delay: {delay!r}")
        return self.at(self.now + delay, fn, *args)

    def at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self.now}"
            )
        entry = _HeapEntry(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, entry)
        return EventHandle(entry)

    def call_soon(self, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule ``fn`` at the current instant (after pending same-time events)."""
        return self.at(self.now, fn, *args)

    # ------------------------------------------------------------------ #
    # deadlock bookkeeping

    def mark_blocked(self, actor: Any, reason: str) -> None:
        """Record that ``actor`` is waiting for an external wake-up."""
        self._blocked_actors[actor] = reason

    def mark_unblocked(self, actor: Any) -> None:
        self._blocked_actors.pop(actor, None)

    @property
    def blocked_actors(self) -> dict[Any, str]:
        return dict(self._blocked_actors)

    # ------------------------------------------------------------------ #
    # execution

    @property
    def events_executed(self) -> int:
        return self._events_executed

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when the heap is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next event.  Returns False when the heap is empty."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if entry.cancelled:
                continue
            self.now = entry.time
            self._events_executed += 1
            if self._trace is not None:
                self._trace(self.now, getattr(entry.fn, "__qualname__", repr(entry.fn)))
            entry.fn(*entry.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        check_deadlock: bool = True,
    ) -> None:
        """Run the simulation.

        Parameters
        ----------
        until:
            Stop once the clock would pass this time (events at exactly
            ``until`` still execute).
        max_events:
            Safety valve for runaway protocols; raises SimulationError when
            exceeded.
        check_deadlock:
            When True (default) raise :class:`DeadlockError` if the heap
            drains while actors are still marked blocked.
        """
        self._running = True
        executed = 0
        try:
            while True:
                t = self.peek_time()
                if t is None:
                    if check_deadlock and self._blocked_actors:
                        raise DeadlockError(
                            sorted(str(r) for r in self._blocked_actors.values())
                        )
                    return
                if until is not None and t > until:
                    self.now = until
                    return
                self.step()
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
        finally:
            self._running = False
