"""Seeded random-number streams.

Every stochastic component (fault injector, checkpoint scheduler's random
policy, synthetic workloads) draws from its own named child stream of one
root :class:`numpy.random.SeedSequence`, so adding randomness to one
component never perturbs another and every experiment is reproducible from
a single integer seed.
"""

from __future__ import annotations

import zlib

import numpy as np


class SeedSequenceStream:
    """Factory of independent, named :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def generator(self, name: str) -> np.random.Generator:
        """Return a Generator deterministic in (root seed, name)."""
        # crc32 gives a stable 32-bit hash of the component name; spawning
        # from (seed, hash) keeps streams independent.
        tag = zlib.crc32(name.encode("utf-8"))
        return np.random.default_rng(np.random.SeedSequence([self.seed, tag]))
