"""Partitioned conservative-window simulation (classic PDES, in-process).

Ranks are sharded into ``K`` contiguous blocks (``partition_of_rank``);
each block's events live in their own engine store — a timestamp heap +
bucket dict per partition, exactly the :class:`~repro.simulator.engine.
Simulator` layout — and the partitions advance together through
*conservative time windows* of width ``lookahead``:

* **Lookahead derivation** (:func:`derive_lookahead`): every cross-host
  message crosses the switch, paying at least ``network_latency_s`` of
  propagation before its first byte lands, plus a strictly positive
  serialization time.  A message sent at ``t`` therefore cannot be
  delivered before ``t + network_latency_s`` — the minimum
  cross-partition link latency is a safe lookahead, the classic
  Chandy/Misra/Bryant bound.
* **Windows**: each window starts at the minimum pending timestamp
  across all partitions and spans ``lookahead`` seconds.  Timestamps
  inside the window drain; cross-partition messages produced during the
  window are *not* delivered directly — they are buffered in an exchange
  (:meth:`PartitionedSimulator.exchange_post`, with their global engine
  sequence number claimed at send time) and merged into the destination
  partition's queue at the window barrier, in ``(time, seq)`` order.
  The conservative invariant — every exchanged message lands at or
  beyond the window end — is asserted on every crossing.

**Bit identity.**  All partitions share one global sequence counter, and
the in-process window drain executes the union of the partition queues
in exact global ``(time, seq)`` order — the same order a single engine
would execute them, by construction.  Every seam claims its sequence
number at the same call site as the single-engine path (an exchange
crossing claims where :class:`~repro.simulator.engine.SerialDrain`
``enqueue`` would have), so sequence assignment, execution order,
``now``, ``events_executed`` and therefore every simulated observable
are bit-identical to ``partition_ranks=0``
(``tests/test_partition_conformance.py`` is the differential proof).
The partition/window structure is what a multi-process deployment would
ship per worker; the remaining shared-state seams (synchronous
cross-rank daemon calls, shared NIC reservations, shared probes) are
documented in ``docs/ARCHITECTURE.md``.

Window and crossing counters live on the facade (``windows``,
``cross_messages``) and deliberately **not** in
:class:`~repro.metrics.probes.ClusterProbes`: the full probe image must
stay identical between partitioned and single-engine runs.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Optional

from repro.simulator.engine import (
    _ARGS,
    _FN,
    _NO_LIVE,
    _SEQ,
    DeadlockError,
    EventHandle,
    SimulationError,
    Simulator,
)

__all__ = ["PartitionedSimulator", "derive_lookahead", "partition_of_rank"]


def partition_of_rank(rank: int, nprocs: int, partitions: int) -> int:
    """Partition of ``rank``: ``partitions`` contiguous, balanced blocks."""
    if not 0 <= rank < nprocs:
        raise ValueError(f"rank {rank} out of range for nprocs={nprocs}")
    if partitions < 1:
        raise ValueError(f"partitions must be >= 1, got {partitions}")
    return rank * partitions // nprocs


def derive_lookahead(config: Any) -> float:
    """Conservative lookahead from a :class:`ClusterConfig`.

    All inter-host links share one switch with ``network_latency_s``
    one-way propagation, and serialization adds a strictly positive
    duration on top, so ``network_latency_s`` *is* the minimum
    cross-partition link latency (loopback traffic never crosses a
    partition: a host belongs to exactly one).
    """
    lookahead = float(config.network_latency_s)
    if lookahead < 0:
        raise SimulationError(f"negative lookahead: {lookahead!r}")
    return lookahead


#: exchange record: (dst partition, time, claimed seq, fn, args)
_Crossing = tuple[int, float, int, Callable[..., None], tuple[Any, ...]]


class PartitionedSimulator(Simulator):
    """K engine stores advanced through conservative lookahead windows.

    Subclasses :class:`Simulator` so every layer built against the
    engine (drains, NICs, daemons, fastpath closures) works unchanged:
    ``_times``/``_buckets`` are exposed as properties returning the
    *active* partition's store, which routes even the direct structure
    pokes of :class:`~repro.simulator.engine.SerialDrain` to the right
    partition.  Events scheduled while an event executes inherit the
    executing partition; the only explicit cross-partition seam is
    :meth:`exchange_post` (driven by ``Network.transfer``).
    """

    partitioned = True

    __slots__ = (
        "coalesced",
        "_nparts",
        "_lookahead",
        "_ptimes",
        "_pbuckets",
        "_cur",
        "_host_pid",
        "_exchange",
        "_window_end",
        "_live_pids",
        "_scan_pids",
        "_exec_log",
        "windows",
        "cross_messages",
    )

    def __init__(
        self,
        partitions: int,
        lookahead_s: float,
        trace: Optional[Callable[[float, str], None]] = None,
        coalesce: bool = True,
    ) -> None:
        if partitions < 1:
            raise SimulationError(f"partitions must be >= 1, got {partitions}")
        if not lookahead_s >= 0:  # also catches NaN
            raise SimulationError(f"negative or NaN lookahead: {lookahead_s!r}")
        # Simulator.__init__ is bypassed on purpose: it assigns _times /
        # _buckets, which are read-only partition-routing properties here.
        # The remaining base slots are initialized by hand.
        self.now = 0.0
        self._live = []
        self._live_time = _NO_LIVE
        self._seq = 0
        self._trace = trace
        self._events_executed = 0
        self._extra_events = 0
        self._blocked_actors = {}
        self._running = False
        self._claim_log = None
        self.coalesced = bool(coalesce)
        self._nparts = partitions
        self._lookahead = float(lookahead_s)
        #: per-partition timestamp heaps / bucket dicts (Simulator layout)
        self._ptimes: list[list[float]] = [[] for _ in range(partitions)]
        self._pbuckets: list[dict[float, list[Any]]] = [
            {} for _ in range(partitions)
        ]
        #: partition whose store scheduling currently routes into: the
        #: source partition of the executing event, or the partition set
        #: by :meth:`enter_partition` at wiring time
        self._cur = 0
        self._host_pid: dict[str, int] = {}
        self._exchange: list[_Crossing] = []
        self._window_end = 0.0
        #: source partition of each now-queue entry (parallel to _live)
        self._live_pids: list[int] = []
        #: partitions this engine instance drains — all of them in
        #: process; a hostexec worker narrows it to its owned block
        self._scan_pids: "range | tuple[int, ...]" = range(partitions)
        #: per-executed-event (time, seq, nclaims) journal for the
        #: hostexec barrier replay; None keeps the hook disabled
        self._exec_log: Optional[list[tuple[float, int, int]]] = None
        #: conservative windows completed (barrier flushes)
        self.windows = 0
        #: cross-partition messages merged at window barriers
        self.cross_messages = 0

    # ------------------------------------------------------------------ #
    # partition topology

    @property
    def partitions(self) -> int:
        return self._nparts

    @property
    def lookahead_s(self) -> float:
        return self._lookahead

    @property
    def active_partition(self) -> int:
        return self._cur

    def register_host(self, host: str, partition: int) -> None:
        """Pin ``host``'s events and deliveries to ``partition``."""
        if not 0 <= partition < self._nparts:
            raise SimulationError(
                f"partition {partition} out of range for {self._nparts}"
            )
        self._host_pid[host] = partition

    def partition_of_host(self, host: str) -> int:
        """Partition owning ``host`` (unregistered hosts: partition 0)."""
        return self._host_pid.get(host, 0)

    def enter_partition(self, partition: int) -> None:
        """Route subsequent wiring-time scheduling into ``partition``.

        Only meaningful outside event execution (during execution the
        active partition follows the executing event); the cluster uses
        it to pin each rank's bootstrap events to the rank's partition.
        """
        if not 0 <= partition < self._nparts:
            raise SimulationError(
                f"partition {partition} out of range for {self._nparts}"
            )
        self._cur = partition

    def is_remote(self, host: str) -> bool:
        """Does delivering to ``host`` cross out of the active partition?"""
        return self._host_pid.get(host, self._cur) != self._cur

    # ------------------------------------------------------------------ #
    # partition-routing views of the engine store

    @property  # type: ignore[override]
    def _times(self) -> list[float]:
        """Active partition's timestamp heap (SerialDrain pokes included)."""
        return self._ptimes[self._cur]

    @property  # type: ignore[override]
    def _buckets(self) -> dict[float, list[Any]]:
        """Active partition's bucket dict."""
        return self._pbuckets[self._cur]

    # ------------------------------------------------------------------ #
    # scheduling: same contract as Simulator, routed per partition

    def _put(self, time: float, entry: list) -> None:
        log = self._claim_log
        if log is not None:
            # every fresh claim (schedule/at/post/schedule_bulk) funnels
            # through here; pre-claimed seqs (post_at_seq) do not
            log.append(entry)
        if time == self._live_time:
            self._live.append(entry)
            self._live_pids.append(self._cur)
            return
        buckets = self._pbuckets[self._cur]
        b = buckets.get(time)
        if b is None:
            buckets[time] = entry
            heappush(self._ptimes[self._cur], time)
        elif type(b[0]) is list:
            b.append(entry)
        else:
            buckets[time] = [b, entry]

    def schedule(
        self, delay: float, fn: Callable[..., None], *args: Any
    ) -> EventHandle:
        if not delay >= 0:  # also catches NaN
            raise SimulationError(f"negative or NaN delay: {delay!r}")
        self._seq = seq = self._seq + 1
        time = self.now + delay
        entry = [time, seq, fn, args]
        self._put(time, entry)
        return EventHandle(entry)

    def at(self, time: float, fn: Callable[..., None], *args: Any) -> EventHandle:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self.now}"
            )
        self._seq = seq = self._seq + 1
        entry = [time, seq, fn, args]
        self._put(time, entry)
        return EventHandle(entry)

    def post(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self.now}"
            )
        self._seq = seq = self._seq + 1
        self._put(time, [time, seq, fn, args])

    def post_at_seq(
        self, time: float, seq: int, fn: Callable[..., None], *args: Any
    ) -> None:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: {time} < now={self.now}"
            )
        entry = [time, seq, fn, args]
        if time == self._live_time:
            self._live.append(entry)
            self._live_pids.append(self._cur)
            return
        self._insert_entry(self._cur, time, entry)

    def _insert_entry(self, pid: int, time: float, entry: list) -> None:
        """Seq-sorted insert into ``pid``'s bucket (pre-claimed seqs may
        predate entries already parked at the timestamp)."""
        buckets = self._pbuckets[pid]
        b = buckets.get(time)
        if b is None:
            buckets[time] = entry
            heappush(self._ptimes[pid], time)
            return
        if type(b[0]) is not list:
            b = buckets[time] = [b]
        seq = entry[_SEQ]
        i = len(b)
        while i > 0 and b[i - 1][_SEQ] > seq:
            i -= 1
        b.insert(i, entry)

    # ------------------------------------------------------------------ #
    # the cross-partition exchange

    def exchange_post(
        self,
        dst_host: str,
        time: float,
        fn: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        """Buffer a cross-partition delivery for the window barrier.

        The global sequence slot is claimed *now* — the same call site
        where the single-engine path's drain enqueue (or ``post``) would
        have claimed it — so the merged entry executes at exactly the
        ``(time, seq)`` position the single engine would have used.
        """
        self._seq = seq = self._seq + 1
        pid = self._host_pid.get(dst_host, 0)
        if not self._running:
            # wiring-time crossing (no window in progress): merge directly
            self._insert_entry(pid, time, [time, seq, fn, args])
            return
        if time < self._window_end:
            raise SimulationError(
                "conservative lookahead violated: crossing at "
                f"t={time!r} inside window ending {self._window_end!r}"
            )
        self._exchange.append((pid, time, seq, fn, args))

    def _flush_exchange(self) -> None:
        buf = self._exchange
        if not buf:
            return
        self._exchange = []
        self.cross_messages += len(buf)
        for pid, time, seq, fn, args in buf:
            self._insert_entry(pid, time, [time, seq, fn, args])

    # ------------------------------------------------------------------ #
    # execution: global (time, seq) merge inside lookahead windows

    def _peek_partition(self, pid: int) -> Optional[float]:
        """Next live timestamp of ``pid`` (cancelled-only buckets popped,
        matching ``Simulator.peek_time``)."""
        times = self._ptimes[pid]
        buckets = self._pbuckets[pid]
        while times:
            t = times[0]
            b = buckets[t]
            entries = b if type(b[0]) is list else (b,)
            if any(entry[_FN] is not None for entry in entries):
                return t
            heappop(times)
            del buckets[t]
        return None

    def _min_pending(self) -> Optional[float]:
        best: Optional[float] = None
        for pid in self._scan_pids:
            t = self._peek_partition(pid)
            if t is not None and (best is None or t < best):
                best = t
        return best

    def peek_time(self) -> Optional[float]:
        return self._min_pending()

    def _pop_timestamp(self, t: float) -> list[tuple[int, list, int]]:
        """Pop ``t``'s bucket from every partition owning it; return the
        union as ``(seq, entry, source partition)`` in global seq order.

        Global seqs are unique, so the sort never compares past the
        first tuple element.
        """
        merged: list[tuple[int, list, int]] = []
        for pid in self._scan_pids:
            buckets = self._pbuckets[pid]
            b = buckets.get(t)
            if b is None:
                continue
            del buckets[t]
            times = self._ptimes[pid]
            if times and times[0] == t:
                heappop(times)
            if type(b[0]) is not list:
                merged.append((b[_SEQ], b, pid))
            else:
                for entry in b:
                    merged.append((entry[_SEQ], entry, pid))
        merged.sort()
        return merged

    def _park(self, pid: int, t: float, entry: list) -> None:
        """Re-park an unexecuted entry (callers feed ascending seqs, so
        plain appends keep buckets seq-ordered)."""
        buckets = self._pbuckets[pid]
        b = buckets.get(t)
        if b is None:
            buckets[t] = entry
            heappush(self._ptimes[pid], t)
        elif type(b[0]) is list:
            b.append(entry)
        else:
            buckets[t] = [b, entry]

    def _drain_timestamp(
        self,
        t: float,
        max_events: Optional[int],
        executed: int,
    ) -> int:
        """Execute every live entry at ``t`` across all partitions in
        global seq order, then the shared now-queue; park the tail on an
        exception (resume semantics identical to ``Simulator.run``)."""
        merged = self._pop_timestamp(t)
        trace = self._trace
        live = self._live
        live_pids = self._live_pids
        exec_log = self._exec_log
        self._live_time = t
        i = j = 0
        try:
            while True:
                if i < len(merged):
                    _seq, entry, pid = merged[i]
                    from_live = False
                elif j < len(live):
                    entry = live[j]
                    pid = live_pids[j]
                    from_live = True
                else:
                    break
                fn = entry[_FN]
                if fn is None:
                    if from_live:
                        j += 1
                    else:
                        i += 1
                    continue
                if max_events is not None and executed >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
                if from_live:
                    j += 1
                else:
                    i += 1
                self.now = t
                executed += 1
                self._events_executed += 1
                self._cur = pid
                if trace is not None:
                    trace(t, getattr(fn, "__qualname__", repr(fn)))
                if exec_log is None:
                    fn(*entry[_ARGS])
                else:
                    # journal (time, seq, claims-made) per executed event
                    # so the hostexec driver can replay the global merge.
                    # The seq must be read *before* the callback runs: a
                    # SerialDrain timer reuses one mutable entry and
                    # re-arms it with the next head's seq mid-callback,
                    # and the merge key is the seq the event fired with.
                    seq = entry[_SEQ]
                    claims = self._claim_log
                    base = 0 if claims is None else len(claims)
                    fn(*entry[_ARGS])
                    nclaims = 0 if claims is None else len(claims) - base
                    exec_log.append((t, seq, nclaims))
        except BaseException:
            # a callback raised (or max_events tripped): park the
            # unexecuted tail back into its source partitions so a
            # subsequent run() resumes exactly where this one stopped
            for k in range(i, len(merged)):
                _seq, entry, pid = merged[k]
                if entry[_FN] is not None:
                    self._park(pid, t, entry)
            for k in range(j, len(live)):
                entry = live[k]
                if entry[_FN] is not None:
                    self._park(live_pids[k], t, entry)
            raise
        finally:
            live.clear()
            live_pids.clear()
            self._live_time = _NO_LIVE
            self._cur = 0
        return executed

    def step(self) -> bool:
        merged = None
        t = self._min_pending()
        if t is None:
            return False
        merged = self._pop_timestamp(t)
        for k, (_seq, entry, pid) in enumerate(merged):
            fn = entry[_FN]
            if fn is None:
                continue
            # park the rest *before* executing so same-time events the
            # callback schedules append after them (seq order holds)
            for m in range(k + 1, len(merged)):
                _mseq, mentry, mpid = merged[m]
                self._park(mpid, t, mentry)
            self.now = t
            self._events_executed += 1
            self._cur = pid
            if self._trace is not None:
                self._trace(t, getattr(fn, "__qualname__", repr(fn)))
            try:
                fn(*entry[_ARGS])
            finally:
                self._cur = 0
            return True
        return False

    def _drain_window(
        self,
        t: float,
        window_end: float,
        until: Optional[float],
        max_events: Optional[int],
        executed: int,
    ) -> tuple[int, bool]:
        """Drain every pending timestamp in ``[t, window_end)``.

        Shared by the in-process window loop and the hostexec worker
        loop (which receives its window bounds from the driver).
        Returns ``(executed, stopped)``; ``stopped`` means the ``until``
        deadline was hit mid-window and the run must return.
        """
        if self._lookahead == 0.0:
            # degenerate window: one timestamp, then a barrier
            return self._drain_timestamp(t, max_events, executed), False
        # a timestamp at exactly window_end starts the *next* window: a
        # crossing may land exactly there, and it must be merged (its
        # seq was claimed mid-window) before that timestamp drains
        next_t: Optional[float] = t
        while next_t is not None and next_t < window_end:
            if until is not None and next_t > until:
                self.now = until
                return executed, True
            executed = self._drain_timestamp(next_t, max_events, executed)
            next_t = self._min_pending()
        return executed, False

    def _window_barrier(self) -> None:
        """In-process barrier: count the window, merge buffered crossings."""
        self.windows += 1
        self._flush_exchange()

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        check_deadlock: bool = True,
    ) -> None:
        """Drain conservative windows to completion (or ``until``).

        Semantics match :meth:`Simulator.run` exactly: events at
        ``until`` still execute, exactly ``max_events`` events execute
        before the excess raises with its event left scheduled, and a
        drained queue with blocked actors raises :class:`DeadlockError`.
        """
        self._running = True
        executed = 0
        lookahead = self._lookahead
        try:
            while True:
                t = self._min_pending()
                if t is None:
                    break
                if until is not None and t > until:
                    self.now = until
                    return
                self._window_end = window_end = t + lookahead
                executed, stopped = self._drain_window(
                    t, window_end, until, max_events, executed
                )
                if stopped:
                    return
                self._window_barrier()
            if check_deadlock and self._blocked_actors:
                raise DeadlockError(
                    sorted(str(r) for r in self._blocked_actors.values())
                )
        finally:
            # crossings buffered by an interrupted window must survive
            # into the next run() (resume-after-fault, until-slicing)
            self._flush_exchange()
            self._live_time = _NO_LIVE
            self._running = False
