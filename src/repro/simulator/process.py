"""Generator-coroutine processes for the discrete-event engine.

Application and server code in this repository is written as Python
generators that ``yield`` *syscalls* to the engine:

* ``yield delay`` (a float, seconds) — advance simulated time, i.e. compute.
* ``yield future`` (a :class:`Future`) — block until the future resolves;
  the generator resumes with ``future.value``.
* ``yield from subroutine(...)`` — ordinary delegation; the MPI layer and
  the protocol layers are all written as delegating generators.

All *durable* application state must live in an external state object (see
``MpiContext.state`` in :mod:`repro.mpi.api`), never in generator locals
that survive a yield across a potential checkpoint.  This "restartable
style" is what makes checkpoint = deepcopy-of-state and restart = rebuild
generator work (DESIGN.md §5.1).

Processes can be killed at any instant (fault injection): the generator is
closed, pending wake-ups for the old incarnation are ignored, and a fresh
incarnation may be started later by the dispatcher.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable, Optional

from repro.simulator.engine import SimulationError, Simulator


class ProcessCrashed(Exception):
    """Injected into a generator when its process is killed mid-wait."""


class Future:
    """One-shot resolvable value; the only blocking primitive.

    A future may be awaited by at most one process at a time (the daemon
    model never shares futures).  Resolving an already-resolved future is an
    error — protocol bugs that double-deliver show up immediately.
    """

    __slots__ = ("sim", "resolved", "value", "_waiter", "label", "cancelled")

    def __init__(self, sim: Simulator, label: str = "future") -> None:
        self.sim = sim
        self.resolved = False
        self.cancelled = False
        self.value: Any = None
        self._waiter: Optional[SimProcess] = None
        self.label = label

    def resolve(self, value: Any = None) -> None:
        if self.cancelled:
            return
        if self.resolved:
            raise SimulationError(f"future {self.label!r} resolved twice")
        self.resolved = True
        self.value = value
        if self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            waiter._wake(self, value)

    def cancel(self) -> None:
        """Detach any waiter and make future inert (used on process kill)."""
        self.cancelled = True
        self._waiter = None

    # internal: called by SimProcess
    def _attach(self, proc: "SimProcess") -> None:
        if self._waiter is not None:
            raise SimulationError(f"future {self.label!r} awaited twice")
        self._waiter = proc


SimGenerator = Generator[Any, Any, Any]


class SimProcess:
    """Drives a generator coroutine on the simulator.

    Parameters
    ----------
    sim: engine.
    name: diagnostic name (also used in deadlock reports).
    gen_factory: zero-argument callable returning a fresh generator; kept so
        the dispatcher can restart the process after a crash.
    on_exit: optional callback ``on_exit(proc, result)`` fired when the
        generator returns normally.
    """

    __slots__ = (
        "sim", "name", "gen_factory", "on_exit", "gen", "alive",
        "finished", "result", "incarnation", "_waiting_on",
        "started_at", "ended_at",
    )

    def __init__(
        self,
        sim: Simulator,
        name: str,
        gen_factory: Callable[[], SimGenerator],
        on_exit: Optional[Callable[["SimProcess", Any], None]] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.gen_factory = gen_factory
        self.on_exit = on_exit
        self.gen: Optional[SimGenerator] = None
        self.alive = False
        self.finished = False
        self.result: Any = None
        self.incarnation = 0
        self._waiting_on: Optional[Future] = None
        self.started_at: Optional[float] = None
        self.ended_at: Optional[float] = None

    # ------------------------------------------------------------------ #

    def start(self, delay: float = 0.0) -> None:
        """Schedule the first step of a fresh incarnation."""
        if self.alive:
            raise SimulationError(f"process {self.name} already running")
        self.incarnation += 1
        self.alive = True
        self.finished = False
        self.gen = self.gen_factory()
        inc = self.incarnation
        self.sim.schedule(delay, self._first_step, inc)

    def _first_step(self, inc: int) -> None:
        if inc != self.incarnation or not self.alive:
            return  # stale wake-up from before a kill
        self.started_at = self.sim.now
        self._advance(None)

    def kill(self) -> None:
        """Crash the process: close the generator, drop pending wake-ups."""
        if not self.alive:
            return
        self.alive = False
        self.sim.mark_unblocked(self)
        if self._waiting_on is not None:
            self._waiting_on.cancel()
            self._waiting_on = None
        gen, self.gen = self.gen, None
        if gen is not None:
            try:
                gen.throw(ProcessCrashed())
            except (ProcessCrashed, StopIteration):
                pass
            except RuntimeError:
                # generator already executing / closed; nothing to unwind
                pass
            finally:
                gen.close()

    # ------------------------------------------------------------------ #
    # stepping machinery

    def _wake(self, fut: Future, value: Any) -> None:
        if not self.alive or fut is not self._waiting_on:
            return
        self._waiting_on = None
        self.sim.mark_unblocked(self)
        # resume at the current instant through the heap so that all
        # same-time resolutions execute in deterministic order
        sim = self.sim
        sim.post(sim.now, self._resume_if_current, self.incarnation, value)

    def _resume_if_current(self, inc: int, value: Any) -> None:
        if inc != self.incarnation or not self.alive:
            return
        self._advance(value)

    def _advance(self, send_value: Any) -> None:
        assert self.gen is not None
        try:
            yielded = self.gen.send(send_value)
        except StopIteration as stop:
            self.alive = False
            self.finished = True
            self.ended_at = self.sim.now
            self.result = stop.value
            self.sim.mark_unblocked(self)
            if self.on_exit is not None:
                self.on_exit(self, stop.value)
            return
        self._handle_syscall(yielded)

    def _handle_syscall(self, yielded: Any) -> None:
        if isinstance(yielded, Future):
            if yielded.resolved:
                # fast path: already resolved; resume via heap to keep
                # deterministic ordering with other same-time events.
                sim = self.sim
                sim.post(
                    sim.now, self._resume_if_current, self.incarnation, yielded.value
                )
                return
            yielded._attach(self)
            self._waiting_on = yielded
            self.sim.mark_blocked(self, f"{self.name} waiting on {yielded.label}")
            return
        if isinstance(yielded, (int, float)):
            delay = float(yielded)
            if not delay >= 0:  # also catches NaN (post alone would miss it)
                raise SimulationError(f"negative or NaN delay: {delay!r}")
            sim = self.sim
            sim.post(sim.now + delay, self._resume_if_current, self.incarnation, None)
            return
        raise SimulationError(
            f"process {self.name} yielded unsupported value {yielded!r}"
        )


def wait_all(sim: Simulator, futures: Iterable[Future], label: str = "wait_all") -> SimGenerator:
    """Generator helper: wait for every future, return list of values.

    Usage: ``values = yield from wait_all(sim, futs)``.
    """
    values = []
    for fut in futures:
        v = yield fut
        values.append(v)
    return values
