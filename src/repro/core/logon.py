"""LogOn piggyback reduction (Lee, Park, Yeom, Cho, SRDS 1998; paper §III-B.2).

Like Manetho, LogOn maintains an antecedence graph, but it additionally
**partially reorders events** according to a log-inheritance relationship:

* On *send*, the graph is explored in reverse order, starting from the last
  reception event of the sender, until events of the receiver are reached;
  the resulting set is then reordered into a linear extension of the causal
  order before serialization.  The reordering costs O(n log n) and is why
  LogOn spends more time on the send path than Manetho.
* On *reception*, because the piggyback ``m1 … mk`` guarantees that for all
  i < j, ``mj`` cannot be in the causal past of ``mi``, merging is a single
  forward pass: every event's predecessors are already in the graph when it
  is inserted, so no re-linking pass is needed (cheaper than Manetho).
* The partial order makes factoring by creator impossible, so each wire
  event carries its creator rank (16 bytes vs 12, paper §III-C).

Run table: maximal same-creator stretches of the linear extension are
clock-ascending chain segments, so ``build_piggyback`` records them as a
``(creator, start, stop)`` run table (``Piggyback.runs``) and
``accept_piggyback`` merges run-at-a-time through
:meth:`~repro.core.antecedence.AntecedenceGraph.add_run` instead of one
graph probe per determinant.  The table is free on the wire: boundaries
are implicit in the flat format because every event already carries its
creator rank, so the 16-byte accounting above is unchanged.  See
``docs/PROTOCOLS.md`` for the full wire-format and accept-path contract.
"""

from __future__ import annotations

from typing import Any

from math import log2

from repro.core.antecedence import AntecedenceGraph
from repro.core.bounds import BoundVector
from repro.core.events import Determinant, StableState
from repro.core.piggyback import Piggyback, creator_runs, flat_bytes
from repro.core.protocol_base import VProtocol
from repro.metrics.probes import ProcessProbes
from repro.runtime.config import ClusterConfig


class LogOnProtocol(VProtocol):
    """Antecedence-graph causal logging, partial-order piggybacks."""

    __slots__ = ("graph", "known", "peer_clock_seen")

    uses_event_logger = True
    name = "logon"

    def __init__(
        self,
        rank: int,
        nprocs: int,
        config: ClusterConfig,
        probes: ProcessProbes,
    ) -> None:
        super().__init__(rank, nprocs, config, probes)
        self.graph = AntecedenceGraph(nprocs)
        #: peer -> sparse per-creator clock bounds the peer is known to hold
        self.known: dict[int, BoundVector] = {}
        #: peer -> highest reception clock observed via dep fields
        self.peer_clock_seen: dict[int, int] = {}

    def _known(self, peer: int) -> BoundVector:
        k = self.known.get(peer)
        if k is None:
            k = self.known[peer] = BoundVector()
        return k

    # ------------------------------------------------------------------ #

    def build_piggyback(self, dst: int) -> Piggyback:
        cfg = self.config
        known = self._known(dst)
        # reverse exploration from our last reception until events of the
        # receiver are reached: equivalently, raise the knowledge bounds
        # from the receiver's latest event we hold, then ship the rest.
        visits = 0
        dst_seq = self.graph.seqs.get(dst)
        start = max(
            self.peer_clock_seen.get(dst, 0),
            dst_seq.max_clock if dst_seq is not None else 0,
        )
        if start > known[dst]:
            visits = self.graph.raise_knowledge((dst, start), known, self.stable)
        # select_unknown raises known in place over everything selected;
        # the dirty-creator worklist restricts the scan to chains grown
        # since the last build for dst (clean chains contribute nothing)
        graph = self.graph
        candidates = self._build_candidates(dst, graph.growth, len(graph.seqs))
        events, scan, _runs = graph.select_unknown(known, self.stable, candidates)
        # reorder into a linear extension of the causal order (the defining
        # LogOn step; n log n)
        ordered = self.graph.topological(events)
        n = len(ordered)
        reorder = n * max(1.0, log2(n)) * cfg.cost_logon_reorder_s if n else 0.0
        # sparse mode charges the held chains, not nprocs; the charge is
        # worklist-independent (simulated results must not change)
        cost = (
            cfg.cost_piggyback_fixed_s
            + self._pb_send_scan_cost(len(self.graph.seqs))
            + (visits + scan) * cfg.cost_graph_visit_s
            + reorder
            + n * cfg.cost_serialize_event_s
            + cfg.cost_graph_pressure_s * log2(1 + len(self.graph))
        )
        self.probes.pb_send_ops += visits + scan + n
        self.probes.pb_send_time_s += cost
        # Run table over the linear extension: maximal same-creator
        # stretches of the partial order are clock-ascending chain
        # segments, so the receiver can merge them run-at-a-time.  The
        # table costs nothing on the wire — boundaries are implicit in the
        # flat format because every event already carries its creator rank
        # (the 16-byte §III-C accounting is unchanged).
        return Piggyback(
            events=tuple(ordered),
            nbytes=flat_bytes(ordered, self.config),
            build_cost_s=cost,
            runs=tuple(creator_runs(ordered)),
        )

    def on_local_event(self, det: Determinant) -> None:
        self.graph.add(det)
        self.probes.note_events_held(len(self.graph))

    def accept_piggyback(self, src: int, pb: Piggyback, dep: int) -> float:
        cfg = self.config
        known = self._known(src).data
        kget = known.get
        graph = self.graph
        events = pb.events
        new = 0
        # the run table segments the linear extension into clock-ascending
        # chain runs; consume run-at-a-time (batch append, O(1) duplicate
        # skip) exactly like the factored formats, instead of one graph
        # probe per determinant.  Within a run the creator's clocks ascend
        # and across runs of the same creator later runs carry later
        # clocks (chain order is causal order), so per-run knowledge
        # updates land on the same bounds the per-determinant walk did.
        runs = pb.runs or creator_runs(events)
        r0, d0 = graph.run_merges, graph.det_merges
        for creator, i, j in runs:
            new += graph.add_run(events[i:j])
            last = events[j - 1].clock
            if last > kget(creator, 0):
                known[creator] = last
        self.probes.pb_accept_runs += graph.run_merges - r0
        self.probes.pb_accept_fallback_dets += graph.det_merges - d0
        if dep > kget(src, 0):
            known[src] = dep
        if dep > self.peer_clock_seen.get(src, 0):
            self.peer_clock_seen[src] = dep
        # sparse mode: the touched knowledge entries are the distinct
        # creators plus src's own (the set is only materialized when the
        # sparse model will charge for it)
        touched = (
            0
            if self._recv_scan_dense is not None
            else len({r[0] for r in runs}) + 1
        )
        # single forward pass: the partial order guarantees predecessors
        # are already present, so no re-linking pass is needed
        cost = (
            self._pb_recv_scan_cost(touched)
            + new * cfg.cost_graph_insert_s
            + len(pb.events) * cfg.cost_deserialize_event_s
        )
        self.probes.pb_recv_ops += new
        self.probes.pb_recv_time_s += cost
        self.probes.note_events_held(len(self.graph))
        return cost

    def on_el_ack(self, stable_vector: StableState) -> None:
        # unconditional full prune, exactly the pre-worklist behavior: a
        # chain's prune floor is only raised when its window is visited
        # with stable coverage, so stale determinants re-admitted below an
        # already-stable clock must be dropped by the *next* ack even when
        # no stable entry moved — a moved-creators worklist cannot
        # reproduce that transient (vcausal can, because its fused loop
        # keeps every floor glued to the stable vector)
        super().on_el_ack(stable_vector)
        self.graph.prune(self.stable)

    # ------------------------------------------------------------------ #

    def events_created_by(self, creator: int) -> list[Determinant]:
        return self.graph.events_created_by(creator)

    def events_held(self) -> int:
        return len(self.graph)

    def scan_events_held(self) -> int:
        return self.graph.scan_size()

    def export_state(self) -> dict[str, Any]:
        return {
            "graph": self.graph.export_state(),
            "known": {p: v.export_state() for p, v in self.known.items()},
            "peer_clock_seen": dict(self.peer_clock_seen),
            "stable": self.stable.as_list(),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self.graph = AntecedenceGraph(self.nprocs)
        self.graph.restore_state(state["graph"])
        self.known = {
            p: BoundVector.from_state(v) for p, v in state["known"].items()
        }
        self.peer_clock_seen = dict(state["peer_clock_seen"])
        self.stable.update(state["stable"])
        # the fresh graph re-marked every restored chain dirty; the channel
        # cursors must restart with it, or an in-place restore would leave
        # stale cursors above the new growth ticks and mark everything
        # clean — the under-full-piggyback bug the worklist must not have
        self._chan_synced = {}
