"""Pessimistic sender-based message logging (MPICH-V2 baseline).

Pessimistic protocols ensure that every event of a process P is safely
logged on stable storage **before P can impact the system** (i.e. send a
message).  In MPICH-V2 the payload stays on the sender (sender-based) and
the determinant goes to the Event Logger synchronously: a send blocks until
the EL has acknowledged all of the sender's prior reception events.

No causality is ever piggybacked — the cost moved from piggybacks to
synchronous waits.  Used as the baseline of Fig. 1 (fault resilience) and
as a comparison point in the examples.
"""

from __future__ import annotations

from typing import Any

from repro.core.events import Determinant, EventSequence, StableState
from repro.core.piggyback import Piggyback
from repro.core.protocol_base import VProtocol
from repro.metrics.probes import ProcessProbes
from repro.runtime.config import ClusterConfig


class PessimisticProtocol(VProtocol):
    """Synchronous determinant logging; empty piggybacks."""

    __slots__ = ("own",)

    uses_event_logger = True
    blocking_on_stability = True
    name = "pessimistic"

    def __init__(
        self,
        rank: int,
        nprocs: int,
        config: ClusterConfig,
        probes: ProcessProbes,
    ) -> None:
        super().__init__(rank, nprocs, config, probes)
        #: own events not yet acknowledged by the EL
        self.own = EventSequence(rank)

    def build_piggyback(self, dst: int) -> Piggyback:
        # nothing rides on messages; stability gating happens in the daemon
        return Piggyback()

    def on_local_event(self, det: Determinant) -> None:
        self.own.append(det)
        self.probes.note_events_held(len(self.own))

    def on_el_ack(self, stable_vector: StableState) -> None:
        super().on_el_ack(stable_vector)
        self.own.prune_upto(self.stable[self.rank])

    def stability_gap(self) -> int:
        """Own events still unacknowledged (sends must wait for zero)."""
        return len(self.own)

    def events_created_by(self, creator: int) -> list[Determinant]:
        return list(self.own) if creator == self.rank else []

    def events_held(self) -> int:
        return len(self.own)

    def export_state(self) -> dict[str, Any]:
        return {"own": list(self.own), "stable": self.stable.as_list()}

    def restore_state(self, state: dict[str, Any]) -> None:
        self.own = EventSequence(self.rank)
        for det in state["own"]:
            self.own.append(det)
        self.stable.update(state["stable"])
