"""Antecedence graph shared by the Manetho and LogOn protocols.

The graph (paper Fig. 3) records the causal relationship between
non-deterministic events:

* vertices are reception determinants, identified by (creator, clock);
* each vertex has an implicit *chain* edge from (creator, clock-1); and
* a *cross* edge from (sender, dep) — the sender's last non-deterministic
  event preceding the emission of the received message.

Because each creator's events form a chain, "X knows event (c, k)" implies
"X knows every event of c with clock ≤ k" (the chain is in the causal
past), so per-peer knowledge is a vector of per-creator clock bounds, and
knowledge discovery is a traversal that walks unknown chain segments and
follows their cross edges.

Every vertex also carries a Lamport stamp ``L(e) = 1 + max(L(chain pred),
L(cross pred))``; sorting by it yields a linear extension of the causal
order, which is exactly the partial-order piggyback LogOn ships.

EL acknowledgements *prune* the graph: stable vertices and their incident
edges are dropped ("information avoiding the emission of unnecessary
events" is lost — pruned cross edges make knowledge discovery conservative,
never wrong, because stable events are excluded from piggybacks anyway).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.core.bounds import BoundVector
from repro.core.events import Determinant, EventSequence, GrowthLog, StableVector


class AntecedenceGraph:
    """Prunable DAG of determinants with knowledge-traversal support."""

    def __init__(self, nprocs: int) -> None:
        self.nprocs = nprocs
        self.seqs: dict[int, EventSequence] = {}
        #: (creator, clock) -> Lamport stamp
        self.lamport: dict[tuple[int, int], int] = {}
        #: maintained vertex count (len() is on the per-message cost path)
        self._size = 0
        #: dirty-creator worklist backing: creators grown since any given
        #: channel cursor (see VProtocol._build_candidates); a creator
        #: whose tick is at or below a channel's cursor is clean for that
        #: channel and need not be scanned when building for it
        self.growth = GrowthLog()
        #: accept-path merge counters, mirrored into probes by the
        #: protocols: whole runs consumed via the O(1) classification vs
        #: determinants merged one by one through the fallback path
        self.run_merges = 0
        self.det_merges = 0

    # ------------------------------------------------------------------ #

    def _seq(self, creator: int) -> EventSequence:
        seq = self.seqs.get(creator)
        if seq is None:
            seq = self._new_seq(creator)
        return seq

    def _new_seq(self, creator: int) -> EventSequence:
        seq = self.seqs[creator] = EventSequence(creator)
        self.growth.register(creator)
        return seq

    def __contains__(self, event_id: tuple[int, int]) -> bool:
        seq = self.seqs.get(event_id[0])
        return seq is not None and seq.get(event_id[1]) is not None

    def __len__(self) -> int:
        return self._size

    def scan_size(self) -> int:
        """O(#creators) recount of ``len(self)`` (tests verify equality)."""
        return sum(len(s) for s in self.seqs.values())

    def get(self, creator: int, clock: int) -> Determinant | None:
        seq = self.seqs.get(creator)
        return seq.get(clock) if seq is not None else None

    # ------------------------------------------------------------------ #
    # construction

    def add(self, det: Determinant) -> bool:
        """Insert a vertex (and its implicit edges); False if already present."""
        creator = det.creator
        seq = self.seqs.get(creator)
        if seq is None:
            seq = self._new_seq(creator)
        clock = det.clock
        if clock <= seq.pruned_upto:
            return False  # stable (possibly compacted away): never re-admit
        if clock > seq.max_clock:
            seq.append(det)
        elif seq.holds(clock):
            return False
        elif seq.merge([det]) == 0:
            return False
        lamport = self.lamport
        chain = lamport.get((creator, clock - 1), 0)
        cross = lamport.get((det.sender, det.dep), 0) if det.dep > 0 else 0
        lamport[(creator, clock)] = 1 + max(chain, cross)
        self._size += 1
        self.growth.mark_grown(creator)
        return True

    def add_run(self, dets: Sequence[Determinant]) -> int:
        """Insert one creator run (clock-ascending); returns vertices added.

        Equivalent to calling :meth:`add` per determinant.  The factored
        piggyback accept path — and, since the LogOn run table, the flat
        one too — hands over whole creator runs, so the two frequent cases
        — every event new, every event already present — skip the
        per-event sequence probes.
        """
        first = dets[0]
        creator = first.creator
        seq = self.seqs.get(creator)
        if seq is None:
            seq = self._new_seq(creator)
        count = len(dets)
        split = seq.new_run_offset(first.clock, dets[-1].clock, count)
        if split is None:
            # unclassifiable run (holes / partial overlap): per-determinant
            # fallback; add() marks growth itself
            self.det_merges += count
            added = 0
            for det in dets:
                if self.add(det):
                    added += 1
            return added
        self.run_merges += 1
        if split == count:
            return 0  # whole run already present
        new = dets[split:] if split else dets
        n = seq.extend_monotonic(new)
        lamport = self.lamport
        for det in new:
            clock = det.clock
            chain = lamport.get((creator, clock - 1), 0)
            cross = lamport.get((det.sender, det.dep), 0) if det.dep > 0 else 0
            lamport[(creator, clock)] = 1 + max(chain, cross)
        self._size += n
        self.growth.mark_grown(creator)
        return n

    def prune(self, stable: StableVector) -> int:
        """Drop vertices made stable by the EL; returns vertices dropped.

        Scans every chain on purpose: a chain's prune floor is only
        raised when its window is visited, so the per-ack full scan is
        what drops stale determinants re-admitted below already-stable
        clocks on the next ack (see Manetho/LogOn ``on_el_ack``).
        """
        dropped = 0
        lamport = self.lamport
        for creator, seq in self.seqs.items():
            bound = stable[creator]
            lo = seq.min_clock
            if lo is None or bound < lo:
                continue
            for clock in seq.clocks_upto(bound):
                lamport.pop((creator, clock), None)
            dropped += seq.prune_upto(bound)
        self._size -= dropped
        return dropped

    # ------------------------------------------------------------------ #
    # knowledge traversal

    def raise_knowledge(
        self,
        start: tuple[int, int],
        known: BoundVector,
        stable: StableVector,
    ) -> int:
        """Raise per-creator ``known`` bounds to cover the causal past of
        ``start``; returns the number of graph steps visited (the cost).

        The traversal walks each creator's unknown chain segment once and
        follows cross edges.  Segments below the stable clock are pruned
        from the graph, making the traversal stop there (conservative).
        """
        kdata = known.data
        kget = kdata.get
        visits = 0
        stack = [start]
        while stack:
            creator, clock = stack.pop()
            bound = kget(creator, 0)
            if clock <= bound:
                continue
            kdata[creator] = clock
            seq = self.seqs.get(creator)
            if seq is None:
                continue
            # walk the chain segment (bound, clock] following cross edges;
            # index-based reverse walk over the backing list — no per-
            # segment tail copy on the send path
            dets, lo, hi = seq.index_window(bound, clock)
            for i in range(hi - 1, lo - 1, -1):
                det = dets[i]
                visits += 1
                if det.dep > 0 and det.dep > kget(det.sender, 0):
                    stack.append((det.sender, det.dep))
        return visits

    def select_unknown(
        self,
        known: BoundVector,
        stable: StableVector,
        candidates: list[int] | None = None,
    ) -> tuple[list[Determinant], int, list[tuple[int, int, int]]]:
        """Events not covered by ``known`` or the stable vector.

        Returns (events grouped by creator in clock order, scan cost,
        creator runs as ``(creator, start, stop)`` index triples).
        ``known`` is raised in place over everything selected — every
        selected creator tail runs to the end of its sequence, so the new
        bound is that sequence's max clock.

        ``candidates`` restricts the scan to the given creators (the
        dirty-creator worklist, already in chain-creation order); ``None``
        scans every held chain.  A candidate list that is a superset of
        the creators with unknown events selects exactly what the full
        scan would.
        """
        events: list[Determinant] = []
        visits = 0
        runs: list[tuple[int, int, int]] = []
        kdata = known.data
        kget = kdata.get
        sv = stable.view()
        if candidates is None:
            items = self.seqs.items()
        else:
            seqs = self.seqs
            items = [(c, seqs[c]) for c in candidates]
        for creator, seq in items:
            lo = kget(creator, 0)
            s = sv[creator]
            if s > lo:
                lo = s
            if seq.max_clock <= lo:
                continue  # peer already covers this creator
            start = len(events)
            n = seq.extend_tail_into(events, lo)
            if n:
                visits += n
                runs.append((creator, start, start + n))
                kdata[creator] = seq.max_clock
        return events, visits, runs

    def topological(self, events: list[Determinant]) -> list[Determinant]:
        """Order ``events`` by a linear extension of the causal order."""
        lam = self.lamport
        return sorted(
            events, key=lambda d: (lam.get((d.creator, d.clock), 0), d.creator, d.clock)
        )

    # ------------------------------------------------------------------ #

    def events_created_by(self, creator: int) -> list[Determinant]:
        seq = self.seqs.get(creator)
        return list(seq) if seq is not None else []

    def export_state(self) -> dict[str, Any]:
        return {
            "seqs": {c: s.export_state() for c, s in self.seqs.items()},
            "lamport": dict(self.lamport),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        # EventSequence.from_state restores each sequence's pruned_upto, so
        # a restored graph keeps refusing stale duplicates of events the EL
        # already made stable (add()/merge() would otherwise resurrect them
        # and silently re-grow the graph)
        self.seqs = {
            creator: EventSequence.from_state(creator, s)
            for creator, s in state["seqs"].items()
        }
        self._size = self.scan_size()
        self.lamport = dict(state["lamport"])
        # every restored chain counts as freshly grown, so the first build
        # on each channel after a restore scans them all (see
        # GrowthLog.repopulate; protocols also reset their channel cursors)
        self.growth.repopulate(self.seqs)
