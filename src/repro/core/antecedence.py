"""Antecedence graph shared by the Manetho and LogOn protocols.

The graph (paper Fig. 3) records the causal relationship between
non-deterministic events:

* vertices are reception determinants, identified by (creator, clock);
* each vertex has an implicit *chain* edge from (creator, clock-1); and
* a *cross* edge from (sender, dep) — the sender's last non-deterministic
  event preceding the emission of the received message.

Because each creator's events form a chain, "X knows event (c, k)" implies
"X knows every event of c with clock ≤ k" (the chain is in the causal
past), so per-peer knowledge is a vector of per-creator clock bounds, and
knowledge discovery is a traversal that walks unknown chain segments and
follows their cross edges.

Every vertex also carries a Lamport stamp ``L(e) = 1 + max(L(chain pred),
L(cross pred))``; sorting by it yields a linear extension of the causal
order, which is exactly the partial-order piggyback LogOn ships.

EL acknowledgements *prune* the graph: stable vertices and their incident
edges are dropped ("information avoiding the emission of unnecessary
events" is lost — pruned cross edges make knowledge discovery conservative,
never wrong, because stable events are excluded from piggybacks anyway).
"""

from __future__ import annotations

from repro.core.events import Determinant, EventSequence, StableVector


class AntecedenceGraph:
    """Prunable DAG of determinants with knowledge-traversal support."""

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self.seqs: dict[int, EventSequence] = {}
        #: (creator, clock) -> Lamport stamp
        self.lamport: dict[tuple[int, int], int] = {}

    # ------------------------------------------------------------------ #

    def _seq(self, creator: int) -> EventSequence:
        seq = self.seqs.get(creator)
        if seq is None:
            seq = self.seqs[creator] = EventSequence(creator)
        return seq

    def __contains__(self, event_id: tuple[int, int]) -> bool:
        seq = self.seqs.get(event_id[0])
        return seq is not None and seq.get(event_id[1]) is not None

    def __len__(self) -> int:
        return sum(len(s) for s in self.seqs.values())

    def get(self, creator: int, clock: int) -> Determinant | None:
        seq = self.seqs.get(creator)
        return seq.get(clock) if seq is not None else None

    # ------------------------------------------------------------------ #
    # construction

    def add(self, det: Determinant) -> bool:
        """Insert a vertex (and its implicit edges); False if already present."""
        seq = self._seq(det.creator)
        if det.clock > seq.max_clock:
            seq.append(det)
            added = True
        elif seq.get(det.clock) is not None:
            return False
        else:
            added = seq.merge([det]) > 0
        if added:
            chain = self.lamport.get((det.creator, det.clock - 1), 0)
            cross = self.lamport.get((det.sender, det.dep), 0) if det.dep > 0 else 0
            self.lamport[(det.creator, det.clock)] = 1 + max(chain, cross)
        return added

    def prune(self, stable: StableVector) -> int:
        """Drop vertices made stable by the EL; returns vertices dropped."""
        dropped = 0
        for creator, seq in self.seqs.items():
            bound = stable[creator]
            lo = seq.min_clock
            if lo is None or bound < lo:
                continue
            for det in seq.tail_after(0):
                if det.clock > bound:
                    break
                self.lamport.pop((creator, det.clock), None)
            dropped += seq.prune_upto(bound)
        return dropped

    # ------------------------------------------------------------------ #
    # knowledge traversal

    def raise_knowledge(
        self,
        start: tuple[int, int],
        known: list[int],
        stable: StableVector,
    ) -> int:
        """Raise per-creator ``known`` bounds to cover the causal past of
        ``start``; returns the number of graph steps visited (the cost).

        The traversal walks each creator's unknown chain segment once and
        follows cross edges.  Segments below the stable clock are pruned
        from the graph, making the traversal stop there (conservative).
        """
        visits = 0
        stack = [start]
        while stack:
            creator, clock = stack.pop()
            bound = known[creator]
            if clock <= bound:
                continue
            known[creator] = clock
            seq = self.seqs.get(creator)
            if seq is None:
                continue
            # walk the chain segment (bound, clock] following cross edges
            for det in reversed(seq.tail_after(bound)):
                if det.clock > clock:
                    continue
                visits += 1
                if det.dep > 0 and det.dep > known[det.sender]:
                    stack.append((det.sender, det.dep))
        return visits

    def select_unknown(
        self,
        known: list[int],
        stable: StableVector,
    ) -> tuple[list[Determinant], int]:
        """Events not covered by ``known`` or the stable vector.

        Returns (events grouped by creator in clock order, scan cost).
        """
        events: list[Determinant] = []
        visits = 0
        for creator, seq in self.seqs.items():
            lo = max(known[creator], stable[creator])
            tail = seq.tail_after(lo)
            visits += len(tail)
            events.extend(tail)
        return events, visits

    def topological(self, events: list[Determinant]) -> list[Determinant]:
        """Order ``events`` by a linear extension of the causal order."""
        lam = self.lamport
        return sorted(
            events, key=lambda d: (lam.get((d.creator, d.clock), 0), d.creator, d.clock)
        )

    # ------------------------------------------------------------------ #

    def events_created_by(self, creator: int) -> list[Determinant]:
        seq = self.seqs.get(creator)
        return list(seq) if seq is not None else []

    def export_state(self) -> dict:
        return {
            "seqs": {c: list(s) for c, s in self.seqs.items()},
            "lamport": dict(self.lamport),
        }

    def restore_state(self, state: dict) -> None:
        self.seqs = {}
        for creator, dets in state["seqs"].items():
            seq = self._seq(creator)
            for det in dets:
                seq.append(det)
        self.lamport = dict(state["lamport"])
