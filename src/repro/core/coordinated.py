"""Coordinated checkpointing baseline (Chandy-Lamport style).

MPICH-V's coordinated protocol takes a global, channel-consistent snapshot
of all processes; when **any** process fails, **every** process rolls back
to the last completed snapshot line (the defining weakness at high fault
frequency, Fig. 1).

No determinants, no piggybacks, no sender-based logs.  The coordination
itself (synchronizing all ranks at a checkpoint line and draining
channels) is orchestrated by :mod:`repro.runtime.checkpoint_scheduler`
with the daemon's checkpoint machinery; on failure the dispatcher performs
the *global* restart instead of the single-rank restart used by the
logging protocols.
"""

from __future__ import annotations

from repro.core.protocol_base import VProtocol


class CoordinatedProtocol(VProtocol):
    """Marker: selects global-restart recovery and coordinated snapshots."""

    __slots__ = ()

    uses_event_logger = False
    name = "coordinated"

    #: dispatcher keys on this to restart all ranks instead of one
    global_restart = True
    #: checkpoint scheduler keys on this to synchronize checkpoints
    coordinated_checkpoints = True
