"""The Event Logger (EL): stable, asynchronous determinant storage.

The EL is "a single thread server based on a select loop to handle non
blocking asynchronous communications" (paper §IV-B.4):

* every process sends each reception determinant to the EL
  **asynchronously** (fire-and-forget, off the critical path);
* the EL stores it and replies with an acknowledgment carrying the *last
  event stored for each process* (a full stable vector), letting every
  process garbage-collect causality information about **all** creators;
* being single-threaded, it has a finite service rate: at high event rates
  the ack latency grows and processes cannot prune before their next send
  — this saturation is what limits the EL's benefit on LU/16 (Fig. 7) and
  motivates the distributed-EL future work of §VI.

During recovery the EL answers a single bulk query with every determinant
of the crashed process — one request to one server instead of one to every
peer, which is the whole Fig. 10 story.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.core.bounds import BoundVector
from repro.core.events import Determinant
from repro.metrics.probes import ClusterProbes
from repro.runtime.config import ClusterConfig
from repro.simulator.engine import SerialDrain, Simulator
from repro.simulator.network import Network

#: host name of the EL's NIC in every deployment
EL_HOST = "el"


class ElAck(BoundVector):
    """A stable-vector ack that also carries its logger's advance journal.

    Behaves exactly like the :class:`BoundVector` snapshot it wraps (all
    protocols consume it through ``items()``), plus three fields that let
    a receiver which has folded ``src``'s acks *exclusively* replace the
    full-vector rescan with the journal slice ``log[pos:upto]`` — the
    entries that actually moved since the ack it last processed.  Acks
    from one logger to one daemon are served and delivered FIFO, so
    ``upto`` is monotone per receiver and the slice fold is exact.
    """

    __slots__ = ("src", "log", "upto")

    def __init__(
        self,
        vector: BoundVector,
        src: "EventLogger",
        log: list[tuple[int, int]],
        upto: int,
    ) -> None:
        # adopt the fresh per-ack snapshot dict (no extra copy)
        self.data = vector.data
        self.src = src
        self.log = log
        self.upto = upto


class EventLogger:
    """Single-threaded stable storage for determinants."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: ClusterConfig,
        probes: ClusterProbes,
        nprocs: int,
    ) -> None:
        self.sim = sim
        self.network = network
        self.config = config
        self.probes = probes
        self.nprocs = nprocs
        #: NIC this logger serves from (shards override with their own)
        self.host = EL_HOST
        #: False after a crash: messages addressed to this logger are
        #: dropped on the floor (clients time out and retry elsewhere)
        self.alive = True
        #: creators whose absorbed key range is still being rebuilt from a
        #: dead peer's disk — their fetches are deferred until the records
        #: have been ingested (a fetch answered mid-rebuild would hand the
        #: recovering rank a truncated history)
        self._rebuilding: set[int] = set()
        self._deferred_fetches: list[tuple] = []
        #: creator -> clock-ordered stored determinants
        self.store: dict[int, list[Determinant]] = {r: [] for r in range(nprocs)}
        #: creator -> highest contiguous stored clock (sparse: only creators
        #: that have logged something carry an entry)
        self.stable_clock = BoundVector()
        #: append-only journal of every (creator, clock) stable advance, in
        #: advance order.  Acks from a journal-valid logger ship as
        #: :class:`ElAck` carrying (journal, position): a receiver that has
        #: folded this logger's acks exclusively knows its stable view
        #: equals the journal prefix it has consumed, so the next ack only
        #: has to fold the slice since its position — the moved entries —
        #: instead of rescanning the whole vector (see
        #: ``VcausalProtocol.on_el_ack``).  One tuple per stored
        #: determinant, i.e. no larger than ``store`` itself.
        self._ack_log: list[tuple[int, int]] = []
        #: False when the ack vector can advance outside
        #: :meth:`_note_stable_advance` (sharded groups: peer-view absorbs,
        #: disk failover rebuilds) — the journal then no longer mirrors
        #: the vector and acks fall back to plain snapshots.
        # With the fused-dispatch knob off the receiver fast path never
        # consumes the journal, so maintaining it (and wrapping acks in
        # ElAck) would be pure host-side overhead the layered reference
        # stack should not pay; wire bytes are identical either way.
        self._ack_fast = bool(config.delivery_fastpath)
        self._busy_until = 0.0
        self._queued = 0
        # The select loop completes services in strictly increasing
        # _busy_until order, so one SerialDrain timer carries the whole
        # service queue on a coalescing engine: heap occupancy stays O(1)
        # per logger even when the EL saturates and the queue grows
        # (None = reference path, one heap entry per queued service).
        self._serve_drain: Optional[SerialDrain] = (
            SerialDrain(sim) if sim.coalesced else None
        )

    def ack_vector_bytes(self, vector: BoundVector) -> int:
        """Wire size of a stable-vector payload (without the fixed header).

        Dense compatibility mode ships one 4-byte clock per rank; sparse
        mode ships (rank, clock) pairs for the nonzero entries only — the
        piece of the EL ack that otherwise grows with cluster size.
        """
        cfg = self.config
        if cfg.pb_cost_model == "dense":
            return 4 * self.nprocs
        return cfg.el_ack_entry_bytes * len(vector)

    # ------------------------------------------------------------------ #
    # logging path (called at network delivery of a log message)

    def receive_log(
        self,
        src_rank: int,
        dets: tuple[Determinant, ...],
        ack_to: Callable[[list[int]], None],
        ack_host: str,
    ) -> None:
        """Handle one asynchronous log message from ``src_rank``.

        ``ack_to`` is invoked at the source daemon when the ack message is
        delivered; it receives the stable vector snapshot taken at ack time.
        """
        if not self.alive:
            self.probes.el_posts_dropped += 1
            return  # no ack: the client's retry timer covers the loss
        cfg = self.config
        self._queued += 1
        if self._queued > self.probes.el_peak_queue:
            self.probes.el_peak_queue = self._queued
        service = cfg.el_service_time_s * max(1, len(dets))
        start = max(self.sim.now, self._busy_until)
        done = start + service
        self._busy_until = done
        self.probes.el_busy_time_s += service
        drain = self._serve_drain
        if drain is not None:
            drain.enqueue(done, self._serve_log, src_rank, dets, ack_to, ack_host)
        else:
            self.sim.post(done, self._serve_log, src_rank, dets, ack_to, ack_host)

    def _ack_vector(self) -> BoundVector:
        """Stable-vector snapshot an ack carries (shards merge peer views)."""
        return self.stable_clock.copy()

    def _serve_log(
        self,
        src_rank: int,
        dets: tuple[Determinant, ...],
        ack_to: Callable[[list[int]], None],
        ack_host: str,
    ) -> None:
        self._queued -= 1
        if not self.alive:
            return  # crashed after accepting: the queued service dies too
        for det in dets:
            self._store(det)
        self.probes.el_determinants_stored += len(dets)
        # ack with the full stable vector, after a small batching delay
        vector = self._ack_vector()
        ack_bytes = self.config.el_ack_wire_bytes + self.ack_vector_bytes(vector)
        if self._ack_fast:
            # same snapshot + the journal handle; wire bytes are unchanged
            # (the journal is receiver-side bookkeeping, not wire payload)
            vector = ElAck(vector, self, self._ack_log, len(self._ack_log))
        self.network.transfer(
            self.host,
            ack_host,
            ack_bytes,
            ack_to,
            extra_latency=self.config.el_ack_delay_s,
            args=(vector,),
        )

    def _store(self, det: Determinant) -> None:
        lst = self.store[det.creator]
        if lst and det.clock <= lst[-1].clock:
            return  # duplicate from a replayed re-execution
        lst.append(det)
        stable = self.stable_clock.data
        if det.clock == stable.get(det.creator, 0) + 1:
            # advance over any contiguous run already buffered
            stable[det.creator] = det.clock
            if self._ack_fast:
                self._ack_log.append((det.creator, det.clock))
            self._note_stable_advance(det.creator, det.clock)
        elif det.clock > stable.get(det.creator, 0) + 1:
            # hole (lost in-flight log before a crash): keep, but stability
            # stays at the contiguous prefix
            pass

    def _note_stable_advance(self, creator: int, clock: int) -> None:
        """Hook: a creator's stable clock advanced (shards keep their
        incrementally maintained merged view in sync here)."""

    # ------------------------------------------------------------------ #
    # recovery path

    def fetch_events(
        self,
        creator: int,
        clock_after: int,
        reply_to: Callable[[list[Determinant]], None],
        reply_host: str,
    ) -> None:
        """Bulk query used at restart: all stored determinants of
        ``creator`` with clock > ``clock_after`` in one response.

        Unlike the logging path (one select-loop iteration per incoming
        determinant), a bulk fetch is a single scan-and-stream of the
        creator's log: fixed setup plus a small per-event streaming cost.
        """
        if not self.alive:
            self.probes.el_posts_dropped += 1
            return  # no reply: the recovering rank's retry covers it
        if creator in self._rebuilding:
            # absorbed range still streaming off the dead shard's disk:
            # answer once the rebuild lands (deferred, not dropped)
            self._deferred_fetches.append((creator, clock_after, reply_to, reply_host))
            return
        cfg = self.config
        dets = [d for d in self.store[creator] if d.clock > clock_after]
        service = 50e-6 + 1.5e-6 * len(dets)
        start = max(self.sim.now, self._busy_until)
        done = start + service
        self._busy_until = done
        self.probes.el_busy_time_s += service
        nbytes = cfg.el_ack_wire_bytes + len(dets) * cfg.event_record_bytes
        drain = self._serve_drain
        if drain is not None:
            drain.enqueue(done, self._serve_fetch, dets, nbytes, reply_to, reply_host)
        else:
            self.sim.post(done, self._serve_fetch, dets, nbytes, reply_to, reply_host)

    def _serve_fetch(
        self,
        dets: list[Determinant],
        nbytes: int,
        reply_to: Callable[[list[Determinant]], None],
        reply_host: str,
    ) -> None:
        self.network.transfer(self.host, reply_host, nbytes, reply_to, args=(dets,))

    # ------------------------------------------------------------------ #
    # failover support

    def ingest_records(self, records: dict[int, list[Determinant]]) -> int:
        """Bulk-load determinants streamed off a dead peer's disk.

        Charged like one bulk fetch per batch (a single scan-and-append
        pass); returns the number of records ingested.  Creators are
        processed in rank order and each creator's records arrive
        clock-ordered, so the contiguous-stability bookkeeping of
        :meth:`_store` applies unchanged.
        """
        n = 0
        for creator in sorted(records):
            for det in records[creator]:
                self._store(det)
                n += 1
        service = 50e-6 + 1.5e-6 * n
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + service
        self.probes.el_busy_time_s += service
        return n

    def finish_rebuild(self, creators: Iterable[int]) -> None:
        """The absorbed range is loaded: flush any deferred fetches."""
        self._rebuilding.difference_update(creators)
        pending, self._deferred_fetches = self._deferred_fetches, []
        for creator, clock_after, reply_to, reply_host in pending:
            self.fetch_events(creator, clock_after, reply_to, reply_host)

    def stored_count(self) -> int:
        return sum(len(v) for v in self.store.values())
