"""Typed seam contracts between the engine, the daemon and the transport.

The reproduction is layered — ``simulator`` (engine, network), ``core``
(protocols, determinant structures), ``runtime`` (daemon, cluster) — and
the layers talk through a handful of narrow seams.  This module states
those seams as :class:`typing.Protocol` types so that

* ``mypy --strict`` checks each layer against the *contract*, not against
  a concrete class from another layer (the compiled-core roadmap item
  wants ``core``/``simulator`` compilable without importing ``runtime``);
* the contracts themselves are documented in one place instead of being
  implicit in call sites.

All protocols here are structural: ``Simulator``, ``Network`` and
``Vdaemon`` satisfy them without inheriting from them.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol


class SchedulerLike(Protocol):
    """Engine seam: what event-producing code needs from the simulator.

    Satisfied by :class:`repro.simulator.engine.Simulator` and
    :class:`repro.simulator.engine.ReferenceSimulator`.
    """

    now: float
    coalesced: bool

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Any:
        """Run ``fn(*args)`` after ``delay`` simulated seconds."""
        ...

    def at(self, time: float, fn: Callable[..., None], *args: Any) -> Any:
        """Run ``fn(*args)`` at absolute simulated ``time``."""
        ...

    def post(self, time: float, fn: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`at` (no cancellation handle)."""
        ...


class TransportLike(Protocol):
    """Network seam: deliver ``nbytes`` between named NICs, then call back.

    Satisfied by :class:`repro.simulator.network.Network`.  ``deliver``
    receives ``*args`` (no closures on the per-message path).
    """

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: int,
        deliver: Callable[..., None],
        extra_latency: float = 0.0,
        args: tuple = (),
        _chunk: bool = False,
    ) -> float:
        """Move ``nbytes``; returns the scheduled delivery time."""
        ...


class DaemonHost(Protocol):
    """Daemon seam: what a :class:`~repro.core.protocol_base.VProtocol`
    may assume about the daemon hosting it.

    Satisfied by :class:`repro.runtime.daemon.Vdaemon`.  Protocols store
    the handle at :meth:`~repro.core.protocol_base.VProtocol.bind` time;
    the attributes below are the whole contract — anything further a
    protocol wants from its daemon must be added here first.
    """

    rank: int
    alive: bool
    clock: int


__all__ = ["DaemonHost", "SchedulerLike", "TransportLike"]
