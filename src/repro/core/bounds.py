"""Sparse per-creator clock bounds — the 256+ rank scale representation.

Every causal protocol keeps *per-peer* vectors of per-creator clock bounds
(Vcausal's channel bounds, Manetho/LogOn's knowledge vectors) and the Event
Logger keeps per-creator stable clocks.  Stored densely (``[0] * nprocs``)
these make every send/accept O(nprocs) in both memory and — through
``cost_pb_send_per_rank_s * nprocs`` — simulated time, which caps credible
scenarios at a few dozen ranks.

In real runs the vectors are overwhelmingly sparse: a rank only ever holds
bounds for the creators it has actually heard from, and NAS communication
graphs touch O(log P) peers per rank.  :class:`BoundVector` stores only the
nonzero entries, so per-message work scales with *touched entries*, not
cluster size.

Hot loops read/write :attr:`BoundVector.data` (the backing dict) directly
— same contract as :meth:`StableVector.view`: mutations through the dict
must only ever *raise* bounds, which is what every protocol does.

The cost model side lives in :class:`~repro.runtime.config.ClusterConfig`
(``pb_cost_model``): the dense ``× nprocs`` formulas are kept as the
default compatibility mode so recorded benchmark checksums stay
comparable, while ``"sparse"`` charges the new per-entry constants.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Union

BoundState = Union["BoundVector", Mapping[int, int], Iterable[int]]


class BoundVector:
    """Sparse map of creator rank -> clock bound, zero by default.

    Semantically equivalent to an unbounded ``[0] * nprocs`` list; only
    nonzero entries are stored.  ``len()`` is the number of nonzero
    entries — the "touched entries" quantity the sparse cost model and the
    sparse ack wire format charge for.
    """

    __slots__ = ("data",)

    def __init__(self, entries: BoundState | None = None) -> None:
        data: dict[int, int] = {}
        if entries is not None:
            items = (
                entries.data.items()
                if isinstance(entries, BoundVector)
                else entries.items()
                if isinstance(entries, Mapping)
                else enumerate(entries)
            )
            for creator, clock in items:
                if clock > 0:
                    data[int(creator)] = clock
        self.data = data

    # -- reads ---------------------------------------------------------- #

    def __getitem__(self, creator: int) -> int:
        return self.data.get(creator, 0)

    def get(self, creator: int, default: int = 0) -> int:
        return self.data.get(creator, default)

    def __len__(self) -> int:
        """Number of nonzero entries (the sparse-cost "touched" count)."""
        return len(self.data)

    def __iter__(self) -> Iterator[int]:
        return iter(self.data)

    def items(self) -> Iterable[tuple[int, int]]:
        return self.data.items()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BoundVector):
            return self.data == other.data
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BoundVector({dict(sorted(self.data.items()))!r})"

    def as_list(self, nprocs: int) -> list[int]:
        """Dense ``[0] * nprocs`` view (reporting / legacy comparisons)."""
        out = [0] * nprocs
        for creator, clock in self.data.items():
            if creator < nprocs:
                out[creator] = clock
        return out

    # -- writes --------------------------------------------------------- #

    def __setitem__(self, creator: int, clock: int) -> None:
        if clock > 0:
            self.data[creator] = clock
        else:
            self.data.pop(creator, None)

    def raise_to(self, creator: int, clock: int) -> bool:
        """Monotone write; returns True if the bound moved."""
        if clock > self.data.get(creator, 0):
            self.data[creator] = clock
            return True
        return False

    def update_max(self, other: BoundState) -> bool:
        """Absorb the elementwise max of ``other``; True if any entry moved."""
        data = self.data
        moved = False
        for creator, clock in _iter_entries(other):
            if clock > data.get(creator, 0):
                data[creator] = clock
                moved = True
        return moved

    def max_with(self, other: BoundState) -> "BoundVector":
        """New vector holding the elementwise max of ``self`` and ``other``."""
        merged = self.copy()
        merged.update_max(other)
        return merged

    def copy(self) -> "BoundVector":
        fresh = BoundVector.__new__(BoundVector)
        fresh.data = dict(self.data)
        return fresh

    # -- checkpoint round-trip ------------------------------------------ #

    def export_state(self) -> dict[int, int]:
        return dict(self.data)

    @classmethod
    def from_state(cls, state: BoundState) -> "BoundVector":
        """Rebuild from :meth:`export_state` output (dense lists from old
        checkpoint images are accepted too)."""
        return cls(state)


def _iter_entries(vector: BoundState) -> Iterable[tuple[int, int]]:
    """(creator, clock) pairs of any bound representation (sparse or dense)."""
    if isinstance(vector, BoundVector):
        return vector.data.items()
    if isinstance(vector, Mapping):
        return vector.items()
    return enumerate(vector)
