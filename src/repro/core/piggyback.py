"""Piggyback wire formats and exact byte accounting (paper §III-C).

Two encodings exist in the paper:

* **Factored** (Vcausal, Manetho): events are grouped by creator rank
  ("factored by peer rank"); the wire format is a list of
  ``{rid, nb, sequence-of-events}`` so the creator rank is paid once per
  group (8-byte header) and each event costs 12 bytes.

* **Flat** (LogOn): the piggyback must respect a partial order across all
  creators, so factoring is impossible; every event carries its creator
  rank and costs 16 bytes.  "For the same number of events to piggyback,
  the actual size in bytes of data added to the message is higher for
  LogOn."  A run table over the maximal same-creator stretches of the
  partial order still rides along as :attr:`Piggyback.runs` (implicit in
  the flat stream, zero wire bytes) so the accept path merges
  run-at-a-time.

Byte sizes are configurable through :class:`~repro.runtime.config.ClusterConfig`;
the defaults match 4-byte rank/clock/ssn fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import groupby
from operator import attrgetter
from typing import Sequence

from repro.core.events import Determinant
from repro.runtime.config import ClusterConfig

#: shared grouping key: a creator "run" is a maximal stretch of consecutive
#: events with the same creator rank (both the byte accounting and the
#: wire-format grouping are defined over these runs)
_creator_key = attrgetter("creator")


def count_creator_runs(events: Sequence[Determinant]) -> int:
    """Number of creator runs in ``events`` (shared with :func:`group_by_creator`)."""
    return sum(1 for _ in groupby(events, key=_creator_key))


def creator_runs(
    events: Sequence[Determinant],
) -> list[tuple[int, int, int]]:
    """Creator runs of ``events`` as ``(creator, start, stop)`` index triples."""
    runs = []
    i = 0
    for creator, group in groupby(events, key=_creator_key):
        n = sum(1 for _ in group)
        runs.append((creator, i, i + n))
        i += n
    return runs


@dataclass(frozen=True)
class Piggyback:
    """Causality information attached to one application message."""

    events: tuple[Determinant, ...] = ()
    nbytes: int = 0
    #: simulated seconds spent building this piggyback (serialization +
    #: graph traversal, charged to the sender before the wire)
    build_cost_s: float = 0.0
    #: creator-run boundaries of ``events`` as ``(creator, start, stop)``
    #: index triples.  For the factored formats this is the wire format's
    #: group table, recorded for free by builders that assemble events
    #: creator-by-creator; for the flat LogOn format it is the run table
    #: over the linear extension (boundaries are implicit in the flat
    #: stream — every event carries its creator — so it adds no wire
    #: bytes).  Either way the accept path consumes whole clock-ascending
    #: runs instead of re-scanning per event; empty means "not
    #: precomputed" (accept falls back to :func:`creator_runs`).
    runs: tuple[tuple[int, int, int], ...] = ()

    @property
    def n_events(self) -> int:
        return len(self.events)


def factored_bytes(events: Sequence[Determinant], config: ClusterConfig) -> int:
    """Wire size of a factored (Vcausal/Manetho) piggyback."""
    return factored_bytes_from_counts(len(events), count_creator_runs(events), config)


def factored_bytes_from_counts(
    n_events: int, n_groups: int, config: ClusterConfig
) -> int:
    """:func:`factored_bytes` from pre-counted totals.

    The protocol build loops already visit events one creator group at a
    time, so they count groups incrementally and skip the O(n) re-scan of
    the assembled piggyback.  ``n_groups`` must equal
    ``count_creator_runs(events)`` for the same event list.
    """
    return (
        config.pb_length_header_bytes
        + n_groups * config.pb_group_header_bytes
        + n_events * config.pb_event_factored_bytes
    )


def flat_bytes(events: Sequence[Determinant], config: ClusterConfig) -> int:
    """Wire size of a flat (LogOn) piggyback."""
    return config.pb_length_header_bytes + len(events) * config.pb_event_flat_bytes


def group_by_creator(
    events: Sequence[Determinant],
) -> list[tuple[int, list[Determinant]]]:
    """Group a creator-sorted event list into (creator, events) runs."""
    return [(c, list(g)) for c, g in groupby(events, key=_creator_key)]
