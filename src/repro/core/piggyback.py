"""Piggyback wire formats and exact byte accounting (paper §III-C).

Two encodings exist in the paper:

* **Factored** (Vcausal, Manetho): events are grouped by creator rank
  ("factored by peer rank"); the wire format is a list of
  ``{rid, nb, sequence-of-events}`` so the creator rank is paid once per
  group (8-byte header) and each event costs 12 bytes.

* **Flat** (LogOn): the piggyback must respect a partial order across all
  creators, so factoring is impossible; every event carries its creator
  rank and costs 16 bytes.  "For the same number of events to piggyback,
  the actual size in bytes of data added to the message is higher for
  LogOn."

Byte sizes are configurable through :class:`~repro.runtime.config.ClusterConfig`;
the defaults match 4-byte rank/clock/ssn fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import groupby
from typing import Sequence

from repro.core.events import Determinant
from repro.runtime.config import ClusterConfig


@dataclass(frozen=True)
class Piggyback:
    """Causality information attached to one application message."""

    events: tuple[Determinant, ...] = ()
    nbytes: int = 0
    #: simulated seconds spent building this piggyback (serialization +
    #: graph traversal, charged to the sender before the wire)
    build_cost_s: float = 0.0

    @property
    def n_events(self) -> int:
        return len(self.events)


def factored_bytes(events: Sequence[Determinant], config: ClusterConfig) -> int:
    """Wire size of a factored (Vcausal/Manetho) piggyback."""
    if not events:
        return config.pb_length_header_bytes
    groups = 0
    last = None
    for det in events:
        if det.creator != last:
            groups += 1
            last = det.creator
    return (
        config.pb_length_header_bytes
        + groups * config.pb_group_header_bytes
        + len(events) * config.pb_event_factored_bytes
    )


def flat_bytes(events: Sequence[Determinant], config: ClusterConfig) -> int:
    """Wire size of a flat (LogOn) piggyback."""
    return config.pb_length_header_bytes + len(events) * config.pb_event_flat_bytes


def group_by_creator(
    events: Sequence[Determinant],
) -> list[tuple[int, list[Determinant]]]:
    """Group a creator-sorted event list into (creator, events) runs."""
    return [(c, list(g)) for c, g in groupby(events, key=lambda d: d.creator)]
