"""Sender-based payload logging (paper §III).

Every considered protocol is *sender-based*: when a process sends a
message, the payload is copied into the sender's volatile memory.  On
recovery, the restarting process asks its peers to re-send the payloads it
needs, in determinant order.

The log is indexed by (destination, ssn).  Garbage collection happens when
the destination reports a checkpoint: payloads of messages the destination
received before its checkpoint can never be requested again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional


@dataclass(frozen=True)
class LoggedSend:
    """One payload kept in the sender's volatile log."""

    dst: int
    ssn: int
    tag: int
    nbytes: int
    payload: Any


class SenderLog:
    """Volatile, per-destination payload log with checkpoint-driven GC."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        # dst -> {ssn: LoggedSend}; ssn contiguous per dst
        self._by_dst: dict[int, dict[int, LoggedSend]] = {}
        self.bytes_held = 0
        self.messages_held = 0

    def record(self, dst: int, ssn: int, tag: int, nbytes: int, payload: Any) -> None:
        log = self._by_dst.setdefault(dst, {})
        if ssn in log:
            # replayed re-execution regenerates identical sends; keep first
            return
        log[ssn] = LoggedSend(dst, ssn, tag, nbytes, payload)
        self.bytes_held += nbytes
        self.messages_held += 1

    def get(self, dst: int, ssn: int) -> Optional[LoggedSend]:
        return self._by_dst.get(dst, {}).get(ssn)

    def sends_to(self, dst: int, ssn_after: int = 0) -> list[LoggedSend]:
        """All logged sends to ``dst`` with ssn > ``ssn_after``, ssn-ordered."""
        log = self._by_dst.get(dst, {})
        return [log[s] for s in sorted(log) if s > ssn_after]

    def gc_destination(self, dst: int, ssn_upto: int) -> int:
        """Drop payloads to ``dst`` with ssn ≤ ``ssn_upto`` (dst checkpointed).

        Returns bytes freed.
        """
        log = self._by_dst.get(dst)
        if not log:
            return 0
        freed = 0
        for ssn in [s for s in log if s <= ssn_upto]:
            entry = log.pop(ssn)
            freed += entry.nbytes
            self.messages_held -= 1
        self.bytes_held -= freed
        return freed

    def __iter__(self) -> Iterator[LoggedSend]:
        for log in self._by_dst.values():
            yield from log.values()

    def export_state(self) -> dict[str, Any]:
        """Snapshot for a checkpoint image (payloads ride along)."""
        return {
            "by_dst": {d: dict(log) for d, log in self._by_dst.items()},
            "bytes_held": self.bytes_held,
            "messages_held": self.messages_held,
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self._by_dst = {d: dict(log) for d, log in state["by_dst"].items()}
        self.bytes_held = state["bytes_held"]
        self.messages_held = state["messages_held"]
