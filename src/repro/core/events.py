"""Determinants, event identifiers and per-creator event sequences.

Message-logging terminology (Alvisi/Marzullo):

* Every *reception* is a non-deterministic event.  Its **determinant**
  records everything needed to replay it: which message (sender, send
  sequence number) was delivered as the receiver's ``clock``-th reception.
* We extend the determinant with ``dep``: the sender's reception clock at
  emission time.  This is the cross edge of the antecedence graph used by
  Manetho and LogOn (paper Fig. 3) and is carried by every message anyway
  (one integer).

An event is identified by ``(creator, clock)``; clocks are contiguous
per creator, which lets protocols exchange *ranges* of events and lets the
Event Logger acknowledge with a single per-creator stable clock.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, NamedTuple, Optional


class Determinant(NamedTuple):
    """Determinant #e of one reception event.

    Attributes
    ----------
    creator: rank that performed the reception.
    clock:   the creator's reception sequence number (rsn), 1-based.
    sender:  rank that sent the delivered message.
    ssn:     sender's send sequence number on the (sender → creator) channel.
    dep:     sender's reception clock at emission (antecedence cross edge).
    """

    creator: int
    clock: int
    sender: int
    ssn: int
    dep: int

    @property
    def event_id(self) -> tuple[int, int]:
        return (self.creator, self.clock)


class EventSequence:
    """Ordered, prunable sequence of one creator's determinants.

    Supports the three operations the protocols need, all O(log n) or
    amortized O(1):

    * :meth:`append` / :meth:`merge` — add determinants (clock-ordered),
    * :meth:`tail_after` — all determinants with ``clock > bound`` (the
      piggyback selection primitive),
    * :meth:`prune_upto` — drop determinants made stable by an EL ack.

    Pruning is lazy (an offset into the backing lists) with periodic
    compaction, so no operation is O(n) per call in steady state.
    """

    __slots__ = ("creator", "_clocks", "_dets", "_offset", "pruned_upto")

    def __init__(self, creator: int):
        self.creator = creator
        self._clocks: list[int] = []
        self._dets: list[Determinant] = []
        self._offset = 0
        #: events at or below this clock were pruned (stable) — gone forever
        self.pruned_upto = 0

    # -- inspection ----------------------------------------------------- #

    def __len__(self) -> int:
        return len(self._clocks) - self._offset

    @property
    def max_clock(self) -> int:
        """Highest clock ever seen (0 when empty and never filled)."""
        return self._clocks[-1] if self._clocks else 0

    @property
    def min_clock(self) -> Optional[int]:
        return self._clocks[self._offset] if self._offset < len(self._clocks) else None

    def __iter__(self):
        return iter(self._dets[self._offset :])

    def get(self, clock: int) -> Optional[Determinant]:
        i = bisect_right(self._clocks, clock, lo=self._offset) - 1
        if i >= self._offset and self._clocks[i] == clock:
            return self._dets[i]
        return None

    # -- mutation ------------------------------------------------------- #

    def append(self, det: Determinant) -> None:
        """Append a determinant with a clock greater than any held."""
        if det.creator != self.creator:
            raise ValueError(f"creator mismatch: {det.creator} != {self.creator}")
        if self._clocks and det.clock <= self._clocks[-1]:
            raise ValueError(
                f"non-monotonic append: clock {det.clock} <= {self._clocks[-1]}"
            )
        self._clocks.append(det.clock)
        self._dets.append(det)

    def merge(self, dets: Iterable[Determinant]) -> int:
        """Insert determinants (any order); returns how many were new.

        Events at or below :attr:`pruned_upto` are stable and stay gone —
        a late duplicate from an unacknowledged peer must not resurrect
        them.
        """
        added = 0
        pending: list[Determinant] = []
        for det in dets:
            if det.creator != self.creator:
                raise ValueError("creator mismatch in merge")
            if det.clock <= self.pruned_upto:
                continue
            if self._clocks and det.clock <= self._clocks[-1]:
                if self.get(det.clock) is None:
                    pending.append(det)
                continue
            self._clocks.append(det.clock)
            self._dets.append(det)
            added += 1
        if pending:
            # rare path: filling holes below the current max (out-of-order
            # ranges from different senders); do a sorted rebuild
            merged = {d.clock: d for d in self._dets[self._offset :]}
            for det in pending:
                if det.clock not in merged:
                    merged[det.clock] = det
                    added += 1
            items = sorted(merged.items())
            self._clocks = [c for c, _ in items]
            self._dets = [d for _, d in items]
            self._offset = 0
        return added

    def tail_after(self, bound: int) -> list[Determinant]:
        """All determinants with ``clock > bound``, clock-ordered."""
        i = bisect_right(self._clocks, bound, lo=self._offset)
        return self._dets[i:]

    def prune_upto(self, clock: int) -> int:
        """Drop determinants with ``clock <= clock``; returns count dropped."""
        if clock > self.pruned_upto:
            self.pruned_upto = clock
        i = bisect_right(self._clocks, clock, lo=self._offset)
        dropped = i - self._offset
        self._offset = i
        if self._offset > 64 and self._offset * 2 > len(self._clocks):
            self._clocks = self._clocks[self._offset :]
            self._dets = self._dets[self._offset :]
            self._offset = 0
        return dropped


class StableVector:
    """Per-creator stable clocks acknowledged by the Event Logger.

    ``stable[c] == k`` means every event of creator ``c`` with clock ≤ k is
    safely stored at the EL and never needs to be piggybacked again.
    Monotone by construction.
    """

    __slots__ = ("_v",)

    def __init__(self, nprocs: int):
        self._v = [0] * nprocs

    def __getitem__(self, creator: int) -> int:
        return self._v[creator]

    def advance(self, creator: int, clock: int) -> bool:
        """Raise the stable clock; returns True if it moved."""
        if clock > self._v[creator]:
            self._v[creator] = clock
            return True
        return False

    def update(self, vector: Iterable[int]) -> bool:
        """Merge a full stable vector (from an EL ack); True if any moved."""
        moved = False
        for c, k in enumerate(vector):
            if k > self._v[c]:
                self._v[c] = k
                moved = True
        return moved

    def as_list(self) -> list[int]:
        return list(self._v)

    def __len__(self) -> int:
        return len(self._v)
