"""Determinants, event identifiers and per-creator event sequences.

Message-logging terminology (Alvisi/Marzullo):

* Every *reception* is a non-deterministic event.  Its **determinant**
  records everything needed to replay it: which message (sender, send
  sequence number) was delivered as the receiver's ``clock``-th reception.
* We extend the determinant with ``dep``: the sender's reception clock at
  emission time.  This is the cross edge of the antecedence graph used by
  Manetho and LogOn (paper Fig. 3) and is carried by every message anyway
  (one integer).

An event is identified by ``(creator, clock)``; clocks are contiguous
per creator, which lets protocols exchange *ranges* of events and lets the
Event Logger acknowledge with a single per-creator stable clock.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import (
    Any,
    Iterable,
    Iterator,
    NamedTuple,
    Optional,
    Protocol,
    Sequence,
    Union,
)


class SupportsStableItems(Protocol):
    """Sparse stable-clock view: anything with ``items() -> (creator, clock)``
    pairs (``BoundVector``, plain dicts)."""

    def items(self) -> Iterable[tuple[int, int]]: ...


#: what EL acks ship: the dense list form or any sparse nonzero mapping
StableState = Union[Sequence[int], SupportsStableItems]


class Determinant(NamedTuple):
    """Determinant #e of one reception event.

    Attributes
    ----------
    creator: rank that performed the reception.
    clock:   the creator's reception sequence number (rsn), 1-based.
    sender:  rank that sent the delivered message.
    ssn:     sender's send sequence number on the (sender → creator) channel.
    dep:     sender's reception clock at emission (antecedence cross edge).
    """

    creator: int
    clock: int
    sender: int
    ssn: int
    dep: int

    @property
    def event_id(self) -> tuple[int, int]:
        return (self.creator, self.clock)


class EventSequence:
    """Ordered, prunable sequence of one creator's determinants.

    Supports the three operations the protocols need, all O(log n) or
    amortized O(1):

    * :meth:`append` / :meth:`merge` — add determinants (clock-ordered),
    * :meth:`tail_after` — all determinants with ``clock > bound`` (the
      piggyback selection primitive),
    * :meth:`prune_upto` — drop determinants made stable by an EL ack.

    Pruning is lazy (an offset into the backing lists) with periodic
    compaction, so no operation is O(n) per call in steady state.
    """

    __slots__ = (
        "creator",
        "_clocks",
        "_dets",
        "_offset",
        "pruned_upto",
        "_contiguous",
        "max_clock",
    )

    def __init__(self, creator: int) -> None:
        self.creator = creator
        self._clocks: list[int] = []
        self._dets: list[Determinant] = []
        self._offset = 0
        #: events at or below this clock were pruned (stable) — gone forever
        self.pruned_upto = 0
        #: True while the backing clocks are hole-free (the common case:
        #: receptions arrive in clock order).  Lets :meth:`holds` answer
        #: with two comparisons instead of a bisect; conservatively False
        #: is always safe.
        self._contiguous = True
        #: highest clock in the backing lists (0 when empty); maintained on
        #: every mutation because it is read on the per-event hot path
        self.max_clock = 0

    # -- inspection ----------------------------------------------------- #

    def __len__(self) -> int:
        return len(self._clocks) - self._offset

    @property
    def min_clock(self) -> Optional[int]:
        return self._clocks[self._offset] if self._offset < len(self._clocks) else None

    def __iter__(self) -> Iterator[Determinant]:
        return iter(self._dets[self._offset :])

    def get(self, clock: int) -> Optional[Determinant]:
        i = bisect_right(self._clocks, clock, lo=self._offset) - 1
        if i >= self._offset and self._clocks[i] == clock:
            return self._dets[i]
        return None

    def holds(self, clock: int) -> bool:
        """Membership test; O(1) on hole-free sequences."""
        clocks = self._clocks
        off = self._offset
        if off >= len(clocks):
            return False
        if self._contiguous:
            return clocks[off] <= clock <= clocks[-1]
        return self.get(clock) is not None

    def holds_range(self, first: int, last: int) -> bool:
        """True when every clock in ``[first, last]`` is held.

        O(1), and only answers True on hole-free sequences — the
        duplicate-run fast path of the piggyback accept loops.  A False
        answer is always safe (callers fall back to per-event checks).
        """
        clocks = self._clocks
        off = self._offset
        if off >= len(clocks) or not self._contiguous:
            return False
        return clocks[off] <= first and last <= clocks[-1]

    def new_run_offset(self, first: int, last: int, count: int) -> Optional[int]:
        """Classify a clock-ascending run ``[first, last]`` of ``count``
        events against this sequence, in O(1).

        Returns the offset of the first event of the run not yet held:
        ``0`` (whole run new), ``count`` (whole run already held), or an
        interior split when a hole-free run overlaps the hole-free held
        prefix (everything up to :attr:`max_clock` is a duplicate).
        ``None`` means the run cannot be classified O(1) — holes on one
        side or the other — and the caller must merge per event.

        Events at or below :attr:`pruned_upto` count as already held:
        they are stable and must never be re-admitted, even when the
        backing lists were compacted away (``max_clock == 0``) or the
        sequence was just restored from a checkpoint image.

        This is the single home of the accept-path split arithmetic; the
        sequence and graph protocols both merge runs through it.
        """
        base = 0
        floor = self.pruned_upto
        if first <= floor:
            if last <= floor:
                return count  # entire run already stable
            if last - first + 1 != count:
                return None  # holes in the run: per-event fallback
            # hole-free run straddling the prune floor: the prefix at or
            # below the floor is a duplicate, classify the remainder
            base = floor - first + 1
            first = floor + 1
        maxc = self.max_clock
        if first > maxc:
            return base
        if last - first + 1 == count - base and self.holds_range(
            first, min(last, maxc)
        ):
            return count if last <= maxc else base + (maxc - first + 1)
        return None

    # -- mutation ------------------------------------------------------- #

    def append(self, det: Determinant) -> None:
        """Append a determinant with a clock greater than any held."""
        if det.creator != self.creator:
            raise ValueError(f"creator mismatch: {det.creator} != {self.creator}")
        clocks = self._clocks
        if clocks:
            last = clocks[-1]
            if det.clock <= last:
                raise ValueError(
                    f"non-monotonic append: clock {det.clock} <= {last}"
                )
            if det.clock != last + 1:
                self._contiguous = False
        clocks.append(det.clock)
        self._dets.append(det)
        self.max_clock = det.clock

    def extend_monotonic(self, dets: Sequence[Determinant]) -> int:
        """Bulk :meth:`append` of a clock-ascending run; returns its length.

        Callers guarantee ``dets`` is strictly clock-ascending with this
        sequence's creator (piggyback runs are tails of peer sequences, so
        this holds by construction); the first clock is validated against
        :attr:`max_clock` as in :meth:`append`.
        """
        if not dets:
            return 0
        clocks = self._clocks
        run = [d.clock for d in dets]
        first = run[0]
        if clocks:
            last = clocks[-1]
            if first <= last:
                raise ValueError(f"non-monotonic append: clock {first} <= {last}")
            if first != last + 1:
                self._contiguous = False
        if run[-1] - first + 1 != len(run):
            self._contiguous = False
        clocks += run
        self._dets += dets
        self.max_clock = run[-1]
        return len(run)

    def merge(self, dets: Iterable[Determinant]) -> int:
        """Insert determinants (any order); returns how many were new.

        Events at or below :attr:`pruned_upto` are stable and stay gone —
        a late duplicate from an unacknowledged peer must not resurrect
        them.
        """
        added = 0
        pending: list[Determinant] = []
        for det in dets:
            if det.creator != self.creator:
                raise ValueError("creator mismatch in merge")
            if det.clock <= self.pruned_upto:
                continue
            clocks = self._clocks
            if clocks:
                last = clocks[-1]
                if det.clock <= last:
                    if self.get(det.clock) is None:
                        pending.append(det)
                    continue
                if det.clock != last + 1:
                    self._contiguous = False
            clocks.append(det.clock)
            self._dets.append(det)
            self.max_clock = det.clock
            added += 1
        if pending:
            # rare path: filling holes below the current max (out-of-order
            # ranges from different senders); do a sorted rebuild
            merged = {d.clock: d for d in self._dets[self._offset :]}
            for det in pending:
                if det.clock not in merged:
                    merged[det.clock] = det
                    added += 1
            items = sorted(merged.items())
            self._clocks = [c for c, _ in items]
            self._dets = [d for _, d in items]
            self._offset = 0
            self._contiguous = items[-1][0] - items[0][0] + 1 == len(items)
            self.max_clock = items[-1][0]
        return added

    def tail_after(self, bound: int) -> list[Determinant]:
        """All determinants with ``clock > bound``, clock-ordered."""
        i = bisect_right(self._clocks, bound, lo=self._offset)
        return self._dets[i:]

    def index_window(
        self, bound: int, upto: int
    ) -> tuple[list[Determinant], int, int]:
        """``(dets, lo, hi)`` such that ``dets[lo:hi]`` are exactly the
        determinants with ``bound < clock <= upto``, clock-ordered.

        Returns the backing list plus indices instead of a slice so that
        callers can walk the window (in either direction) without copying
        it — the knowledge traversal of the antecedence graph does this on
        Manetho's send path, where a ``tail_after`` copy per visited chain
        segment used to be the last per-send allocation.  The backing list
        is **read-only by contract** (same rule as :meth:`StableVector.view`).
        """
        clocks = self._clocks
        lo = bisect_right(clocks, bound, lo=self._offset)
        hi = bisect_right(clocks, upto, lo=lo)
        return self._dets, lo, hi

    def extend_tail_into(self, out: list, bound: int) -> int:
        """Append the ``clock > bound`` tail to ``out``; returns its length.

        The piggyback build loops use this instead of :meth:`tail_after`
        so that per-creator tails land directly in the outgoing event list
        without materializing one intermediate list per creator.  When the
        tail is non-empty its last clock is :attr:`max_clock` (tails always
        run to the end of the sequence).
        """
        clocks = self._clocks
        total = len(clocks)
        i = self._offset
        if i >= total or clocks[-1] <= bound:
            return 0  # empty tail (bound caught up) — skip the bisect
        if clocks[i] <= bound:
            # clocks[-1] > bound >= clocks[i] puts at least two live
            # entries in range, so total - 2 is a valid probe: when the
            # next-to-last clock is covered too, only the last event is
            # new (steady-state channels stay one event behind) and both
            # the bisect and the slice can be skipped
            if clocks[total - 2] <= bound:
                out.append(self._dets[-1])
                return 1
            i = bisect_right(clocks, bound, lo=i)
        n = total - i
        out += self._dets[i:] if i else self._dets
        return n

    def clocks_upto(self, bound: int) -> list[int]:
        """Live clocks ``<= bound``, ascending.

        Copies only the matching prefix (the antecedence graph walks this
        right before pruning it, so the work is proportional to the events
        dropped, not to the events held).
        """
        hi = bisect_right(self._clocks, bound, lo=self._offset)
        return self._clocks[self._offset : hi]

    def prune_upto(self, clock: int) -> int:
        """Drop determinants with ``clock <= clock``; returns count dropped.

        This runs once per advanced creator per EL ack — the hottest
        non-message path of the whole repository — so the common shapes
        are O(1): nothing held, nothing stable yet, everything stable
        (in-place clear), and the hole-free sequence (index arithmetic
        instead of a bisect).  Only sequences with holes pay the bisect.
        """
        if clock > self.pruned_upto:
            self.pruned_upto = clock
        clocks = self._clocks
        off = self._offset
        n = len(clocks)
        if off >= n or clock < clocks[off]:
            return 0
        if clock >= clocks[-1]:
            # the whole live window became stable (steady EL ack streams
            # keep sequences fully pruned): drop everything, keeping the
            # "highest clock reads 0 once fully compacted" definition
            dropped = n - off
            clocks.clear()
            self._dets.clear()
            self._offset = 0
            self._contiguous = True
            self.max_clock = 0
            return dropped
        if self._contiguous:
            i = off + (clock - clocks[off] + 1)
        else:
            i = bisect_right(clocks, clock, lo=off)
        dropped = i - off
        self._offset = i
        if i > 64 and i * 2 > n:
            self._clocks = clocks[i:]
            self._dets = self._dets[i:]
            self._offset = 0
        return dropped

    # -- checkpoint round-trip ------------------------------------------ #

    def export_state(self) -> dict[str, Any]:
        """Checkpointable state: the live determinants plus the prune floor.

        ``pruned_upto`` must survive the round-trip: :meth:`merge` relies on
        it to refuse resurrecting stable determinants, so a restore that
        only replays the live determinants silently re-admits duplicates of
        pruned events on the next accept.
        """
        return {"dets": list(self), "pruned_upto": self.pruned_upto}

    @classmethod
    def from_state(cls, creator: int, state: Any) -> "EventSequence":
        """Rebuild from :meth:`export_state` output (bare determinant lists
        from pre-``pruned_upto`` checkpoint images are accepted too)."""
        seq = cls(creator)
        if isinstance(state, dict):
            seq.pruned_upto = state["pruned_upto"]
            dets = state["dets"]
        else:
            dets = state
        for det in dets:
            seq.append(det)
        return seq


class GrowthLog:
    """Recency-ordered creator growth log backing the dirty-creator
    worklists (consumed by ``VProtocol._build_candidates``).

    ``order`` maps creator -> monotone tick of its last growth; growing a
    creator pops and re-appends it, so the creators grown after any saved
    cursor are exactly the suffix of entries with a larger tick.
    ``seq_order`` records sequence-creation order, the iteration order a
    full scan would use — worklists re-sort into it so reduced scans stay
    byte-identical to scan-everything builds.
    """

    __slots__ = ("order", "counter", "seq_order", "by_index")

    def __init__(self) -> None:
        self.order: dict[int, int] = {}
        self.counter = 0
        self.seq_order: dict[int, int] = {}
        #: creation index -> creator (inverse of seq_order; lets worklists
        #: sort plain ints instead of sorting creators by a key function)
        self.by_index: list[int] = []

    def register(self, creator: int) -> None:
        """Record a newly created sequence's position in the scan order."""
        self.seq_order[creator] = len(self.seq_order)
        self.by_index.append(creator)

    def mark_grown(self, creator: int) -> None:
        """Move ``creator`` to the end of the log (O(1))."""
        order = self.order
        order.pop(creator, None)
        self.counter += 1
        order[creator] = self.counter

    def repopulate(self, creators: Iterable[int]) -> None:
        """Reset and mark every creator freshly grown (checkpoint restore:
        an empty log after a restore would mark everything clean and the
        next build would ship a stale, under-full piggyback)."""
        self.order = {}
        self.counter = 0
        self.seq_order = {}
        self.by_index = []
        for creator in creators:
            self.register(creator)
            self.mark_grown(creator)


class StableVector:
    """Per-creator stable clocks acknowledged by the Event Logger.

    ``stable[c] == k`` means every event of creator ``c`` with clock ≤ k is
    safely stored at the EL and never needs to be piggybacked again.
    Monotone by construction.
    """

    __slots__ = ("_v",)

    def __init__(self, nprocs: int) -> None:
        self._v = [0] * nprocs

    def __getitem__(self, creator: int) -> int:
        return self._v[creator]

    def advance(self, creator: int, clock: int) -> bool:
        """Raise the stable clock; returns True if it moved."""
        if clock > self._v[creator]:
            self._v[creator] = clock
            return True
        return False

    def update(self, vector: "StableState") -> bool:
        """Merge a stable vector (from an EL ack); True if any moved.

        Accepts the dense list form or any sparse mapping of nonzero
        entries (``BoundVector``/dict) — EL acks ship the sparse form.
        (Vcausal does not route its acks through here: its fused
        ``on_el_ack`` merges and prunes in one pass over the vector.)
        """
        v = self._v
        moved = False
        items = vector.items() if hasattr(vector, "items") else enumerate(vector)
        for c, k in items:
            if k > v[c]:
                v[c] = k
                moved = True
        return moved

    def as_list(self) -> list[int]:
        return list(self._v)

    def view(self) -> list[int]:
        """The internal per-creator clock list, **read-only by contract**.

        Hot loops index this directly instead of paying one
        ``__getitem__`` descriptor call per event; mutations must still go
        through :meth:`advance`/:meth:`update` to preserve monotonicity.
        """
        return self._v

    def __len__(self) -> int:
        return len(self._v)
