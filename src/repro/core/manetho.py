"""Manetho piggyback reduction (Elnozahy & Zwaenepoel, 1992; paper §III-B.2).

Each process maintains an antecedence graph.  When a process sends a
message to a peer Pr, Manetho **first searches for the last events Pr
knows**: the graph is crossed from the last known reception of Pr, and
every event that happened after this bound has to be sent.  The traversal
is therefore paid on the *send* path.

On *reception*, the new piggybacked events must first be added to the
graph **before generating the new edges** — a second pass over the merged
events — which is why Manetho spends more time during receive than LogOn
(paper §V-D.2).

Events are factored by creator rank on the wire (cheap format, paper
§III-C).
"""

from __future__ import annotations

from typing import Any

from math import log2

from repro.core.antecedence import AntecedenceGraph
from repro.core.bounds import BoundVector
from repro.core.events import Determinant, StableState
from repro.core.piggyback import (
    Piggyback,
    creator_runs,
    factored_bytes_from_counts,
)
from repro.core.protocol_base import VProtocol
from repro.metrics.probes import ProcessProbes
from repro.runtime.config import ClusterConfig


class ManethoProtocol(VProtocol):
    """Antecedence-graph causal logging, Manetho traversal strategy."""

    __slots__ = ("graph", "known", "peer_clock_seen")

    uses_event_logger = True
    name = "manetho"

    def __init__(
        self,
        rank: int,
        nprocs: int,
        config: ClusterConfig,
        probes: ProcessProbes,
    ) -> None:
        super().__init__(rank, nprocs, config, probes)
        self.graph = AntecedenceGraph(nprocs)
        #: peer -> sparse per-creator clock bounds the peer is known to hold
        self.known: dict[int, BoundVector] = {}
        #: peer -> highest reception clock of that peer observed (via dep
        #: fields); the graph itself may know an even later event of the peer
        self.peer_clock_seen: dict[int, int] = {}

    def _known(self, peer: int) -> BoundVector:
        k = self.known.get(peer)
        if k is None:
            k = self.known[peer] = BoundVector()
        return k

    # ------------------------------------------------------------------ #

    def build_piggyback(self, dst: int) -> Piggyback:
        known = self._known(dst)
        cfg = self.config
        visits = 0
        # Manetho pays the knowledge discovery on the send path: cross the
        # graph from the last known reception of the receiver.  The
        # receiver's latest event may be known through a third party
        # (paper Fig. 3: P3 infers what P2 knows without ever having
        # communicated with it).
        dst_seq = self.graph.seqs.get(dst)
        start = max(
            self.peer_clock_seen.get(dst, 0),
            dst_seq.max_clock if dst_seq is not None else 0,
        )
        if start > known[dst]:
            visits += self.graph.raise_knowledge((dst, start), known, self.stable)
        # select_unknown raises known in place: everything piggybacked is
        # now known by dst.  The dirty-creator worklist restricts the scan
        # to chains grown since the last build for dst; clean chains are
        # already covered by the knowledge bound and contribute nothing.
        graph = self.graph
        candidates = self._build_candidates(dst, graph.growth, len(graph.seqs))
        events, scan, runs = graph.select_unknown(known, self.stable, candidates)
        visits += scan
        n = len(events)
        # sparse mode charges the held chains, not nprocs; the charge is
        # worklist-independent (simulated results must not change)
        cost = (
            cfg.cost_piggyback_fixed_s
            + self._pb_send_scan_cost(len(self.graph.seqs))
            + visits * cfg.cost_graph_visit_s
            + n * cfg.cost_serialize_event_s
            + cfg.cost_graph_pressure_s * log2(1 + len(self.graph))
        )
        self.probes.pb_send_ops += visits + n
        self.probes.pb_send_time_s += cost
        return Piggyback(
            events=tuple(events),
            nbytes=factored_bytes_from_counts(n, len(runs), cfg),
            build_cost_s=cost,
            runs=tuple(runs),
        )

    def on_local_event(self, det: Determinant) -> None:
        self.graph.add(det)
        self.probes.note_events_held(len(self.graph))

    def accept_piggyback(self, src: int, pb: Piggyback, dep: int) -> float:
        cfg = self.config
        known = self._known(src).data
        kget = known.get
        graph = self.graph
        events = pb.events
        total = len(events)
        new = 0
        runs = pb.runs or creator_runs(events)
        # the factored wire format groups events into clock-ascending
        # creator runs; merge run-at-a-time (see AntecedenceGraph.add_run)
        r0, d0 = graph.run_merges, graph.det_merges
        for creator, i, j in runs:
            new += graph.add_run(events[i:j])
            last = events[j - 1].clock
            if last > kget(creator, 0):
                known[creator] = last
        self.probes.pb_accept_runs += graph.run_merges - r0
        self.probes.pb_accept_fallback_dets += graph.det_merges - d0
        dup = total - new
        if dep > kget(src, 0):
            known[src] = dep
        # knowledge closure of (src, dep) is discovered lazily at next send
        if dep > self.peer_clock_seen.get(src, 0):
            self.peer_clock_seen[src] = dep
        # Manetho must re-cross the merged region to generate the new edges
        # (second pass over every piggybacked event)
        relink = new + dup
        # sparse mode: one knowledge entry touched per run plus src's own
        cost = (
            self._pb_recv_scan_cost(len(runs) + 1)
            + new * cfg.cost_graph_insert_s
            + relink * cfg.cost_graph_insert_s
            + len(pb.events) * cfg.cost_deserialize_event_s
        )
        self.probes.pb_recv_ops += new + relink
        self.probes.pb_recv_time_s += cost
        self.probes.note_events_held(len(self.graph))
        return cost

    def on_el_ack(self, stable_vector: StableState) -> None:
        # unconditional full prune, exactly the pre-worklist behavior: a
        # chain's prune floor is only raised when its window is visited
        # with stable coverage, so stale determinants re-admitted below an
        # already-stable clock must be dropped by the *next* ack even when
        # no stable entry moved — a moved-creators worklist cannot
        # reproduce that transient (vcausal can, because its fused loop
        # keeps every floor glued to the stable vector)
        super().on_el_ack(stable_vector)
        self.graph.prune(self.stable)

    # ------------------------------------------------------------------ #

    def events_created_by(self, creator: int) -> list[Determinant]:
        return self.graph.events_created_by(creator)

    def events_held(self) -> int:
        return len(self.graph)

    def scan_events_held(self) -> int:
        return self.graph.scan_size()

    def export_state(self) -> dict[str, Any]:
        return {
            "graph": self.graph.export_state(),
            "known": {p: v.export_state() for p, v in self.known.items()},
            "peer_clock_seen": dict(self.peer_clock_seen),
            "stable": self.stable.as_list(),
        }

    def restore_state(self, state: dict[str, Any]) -> None:
        self.graph = AntecedenceGraph(self.nprocs)
        self.graph.restore_state(state["graph"])
        self.known = {
            p: BoundVector.from_state(v) for p, v in state["known"].items()
        }
        self.peer_clock_seen = dict(state["peer_clock_seen"])
        self.stable.update(state["stable"])
        # the fresh graph re-marked every restored chain dirty; the channel
        # cursors must restart with it, or an in-place restore would leave
        # stale cursors above the new growth ticks and mark everything
        # clean — the under-full-piggyback bug the worklist must not have
        self._chan_synced = {}
