"""Distributed Event Logger (the paper's §VI future work, implemented).

"Using only one Event Logger for consistency purpose will lead to a
bottleneck as the number of processes grows.  It is thus necessary to
investigate how to distribute the logging of events among several Event
Loggers. ... Assigning a subset of the nodes to one Event Logger seems the
obvious way to gain scalability.  But in order to keep the good
performance introduced by the Event Logger in the system, each node has to
receive the most up to date array of logical clocks already logged."

This module implements exactly that design space:

* ``count`` Event Logger shards; node ``r`` logs to shard ``r % count``
  (a static subset assignment);
* every shard is authoritative for the stable clocks of its assigned
  creators and keeps a (possibly stale) *global view* of the others;
* acknowledgments carry the shard's merged global view, so nodes can prune
  events of **all** creators, not just their shard's;
* two of the paper's proposed synchronization strategies:

  - ``"multicast"`` — each shard periodically multicasts its local slice
    of logical clocks to the other shards (nodes see fresher vectors on
    their next ack);
  - ``"broadcast"`` — shards additionally broadcast the merged vector to
    every compute node directly (fresher pruning, more traffic).

With ``count=1`` this degenerates to the single EL of the paper's body.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.bounds import BoundVector
from repro.core.event_logger import EventLogger
from repro.core.events import Determinant
from repro.metrics.probes import ClusterProbes
from repro.runtime.config import ClusterConfig
from repro.simulator.engine import Simulator
from repro.simulator.network import Network

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

SYNC_STRATEGIES = ("multicast", "broadcast")


def shard_host(index: int) -> str:
    return f"el{index}"


class EventLoggerShard(EventLogger):
    """One shard: a full EL plus a merged global view of its peers."""

    def __init__(self, sim, network, config, probes, nprocs, index: int):
        super().__init__(sim, network, config, probes, nprocs)
        self.index = index
        self.host = shard_host(index)
        #: freshest clocks known for creators owned by *other* shards
        self.global_view = BoundVector()

    def merged_view(self) -> BoundVector:
        """Authoritative local clocks merged with the peer view."""
        return self.stable_clock.max_with(self.global_view)

    def absorb_peer_vector(self, vector) -> None:
        """Merge a peer shard's vector (sparse or dense form)."""
        self.global_view.update_max(vector)

    # override: acks carry the merged global view, and leave from our host
    def _serve_log(self, src_rank, dets, ack_to, ack_host):
        self._queued -= 1
        for det in dets:
            self._store(det)
        self.probes.el_determinants_stored += len(dets)
        vector = self.merged_view()
        ack_bytes = self.config.el_ack_wire_bytes + self.ack_vector_bytes(vector)
        self.network.transfer(
            self.host,
            ack_host,
            ack_bytes,
            lambda: ack_to(vector),
            extra_latency=self.config.el_ack_delay_s,
        )

    # override: recovery replies leave from our host
    def fetch_events(self, creator, clock_after, reply_to, reply_host):
        cfg = self.config
        dets = [d for d in self.store[creator] if d.clock > clock_after]
        service = 50e-6 + 1.5e-6 * len(dets)
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + service
        self.probes.el_busy_time_s += service
        nbytes = cfg.el_ack_wire_bytes + len(dets) * cfg.event_record_bytes

        def _send_reply():
            self.network.transfer(self.host, reply_host, nbytes, lambda: reply_to(dets))

        self.sim.at(start + service, _send_reply)


class EventLoggerGroup:
    """A set of EL shards plus the synchronization machinery."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: ClusterConfig,
        probes: ClusterProbes,
        nprocs: int,
        count: int = 1,
        sync_strategy: str = "multicast",
        sync_interval_s: float = 2e-3,
        node_hosts: Optional[list[str]] = None,
    ):
        if count < 1:
            raise ValueError("need at least one Event Logger shard")
        if sync_strategy not in SYNC_STRATEGIES:
            raise ValueError(f"unknown EL sync strategy {sync_strategy!r}")
        self.sim = sim
        self.network = network
        self.config = config
        self.nprocs = nprocs
        self.count = count
        self.sync_strategy = sync_strategy
        self.sync_interval_s = sync_interval_s
        self.node_hosts = node_hosts or []
        self.shards = [
            EventLoggerShard(sim, network, config, probes, nprocs, k)
            for k in range(count)
        ]
        #: vectors pushed to nodes under the broadcast strategy
        self.node_vector_sinks: dict[str, Callable[[list[int]], None]] = {}
        self.sync_rounds = 0
        self.sync_bytes = 0
        #: liveness check set by the cluster: the periodic sync stops when
        #: the run completes, letting the event heap drain
        self.active_check: Callable[[], bool] = lambda: True
        if count > 1:
            sim.schedule(sync_interval_s, self._sync_tick)

    # ------------------------------------------------------------------ #

    def shard_index_for(self, rank: int) -> int:
        return rank % self.count

    def shard_for(self, rank: int) -> EventLoggerShard:
        return self.shards[self.shard_index_for(rank)]

    def host_for(self, rank: int) -> str:
        return shard_host(self.shard_index_for(rank))

    def register_node_sink(
        self, host: str, sink: Callable[[list[int]], None]
    ) -> None:
        """Register a daemon callback for broadcast-strategy vectors."""
        self.node_vector_sinks[host] = sink

    # ------------------------------------------------------------------ #
    # synchronization

    def _sync_tick(self) -> None:
        if not self.active_check():
            return
        self.sync_rounds += 1
        for shard in self.shards:
            local = shard.merged_view()
            vec_bytes = self.config.el_ack_wire_bytes + shard.ack_vector_bytes(local)
            # multicast the local array of logical clocks to the other ELs
            for peer in self.shards:
                if peer is shard:
                    continue
                self.sync_bytes += vec_bytes
                self.network.transfer(
                    shard.host,
                    peer.host,
                    vec_bytes,
                    lambda p=peer, v=local.copy(): p.absorb_peer_vector(v),
                )
            if self.sync_strategy == "broadcast":
                # and broadcast it to every compute node directly
                for host, sink in self.node_vector_sinks.items():
                    self.sync_bytes += vec_bytes
                    self.network.transfer(
                        shard.host,
                        host,
                        vec_bytes,
                        lambda s=sink, v=local.copy(): s(v),
                    )
        self.sim.schedule(self.sync_interval_s, self._sync_tick)

    # ------------------------------------------------------------------ #
    # aggregate introspection

    def stored_count(self) -> int:
        return sum(s.stored_count() for s in self.shards)

    def merged_stable(self) -> list[int]:
        out = BoundVector()
        for shard in self.shards:
            out.update_max(shard.merged_view())
        return out.as_list(self.nprocs)
