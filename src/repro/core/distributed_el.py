"""Distributed Event Logger (the paper's §VI future work, implemented).

"Using only one Event Logger for consistency purpose will lead to a
bottleneck as the number of processes grows.  It is thus necessary to
investigate how to distribute the logging of events among several Event
Loggers. ... Assigning a subset of the nodes to one Event Logger seems the
obvious way to gain scalability.  But in order to keep the good
performance introduced by the Event Logger in the system, each node has to
receive the most up to date array of logical clocks already logged."

This module implements exactly that design space:

* ``count`` Event Logger shards; node ``r`` logs to shard ``r % count``
  (a static subset assignment);
* every shard is authoritative for the stable clocks of its assigned
  creators and keeps a (possibly stale) *global view* of the others;
* acknowledgments carry the shard's merged global view, so nodes can prune
  events of **all** creators, not just their shard's;
* four shard-to-shard synchronization strategies:

  - ``"multicast"`` — each shard periodically multicasts its local slice
    of logical clocks to the other shards (nodes see fresher vectors on
    their next ack).  O(shards²) messages per round: the all-to-all
    exchange the paper sketches, and the scalability wall ROADMAP flags
    for ``el_count > 8``;
  - ``"broadcast"`` — shards additionally broadcast the merged vector to
    every compute node directly (fresher pruning, more traffic);
  - ``"tree"`` — k-ary reduce-then-broadcast over the shards (the
    MPICH-style collective pattern): views flow leaf→root along a
    ``tree_fanout``-ary tree rooted at shard 0, the root's merged global
    view flows back root→leaf.  2·(shards−1) messages per round over
    O(log_k shards) network hops — the standard scalable-stabilization
    fix (cf. Manetho's antecedence propagation, PAPERS.md);
  - ``"gossip"`` — each shard pushes its merged view to ``gossip_fanout``
    rotating peers per round (deterministic cyclic rotation).  shards ×
    fanout messages per round; because the rotation enumerates every
    peer offset, any shard's update reaches any other shard *directly*
    within ``ceil((shards−1)/fanout)`` rounds — the staleness bound
    surfaced as :attr:`EventLoggerGroup.staleness_bound_rounds` and in
    ``ClusterProbes.el_sync_staleness_bound_rounds``.

All four converge every shard's merged view to the same fixed point on a
quiesced system (tested); they differ in message count and in how stale a
shard's view of remote creators may be in between.

Shard failover (``ClusterConfig.el_failover``): shards themselves run on
volatile grid nodes.  Each shard writes determinants to stable storage
before acknowledging them (a write-ahead store), so when a shard dies the
group reassigns its key range to the next surviving shard
(:meth:`EventLoggerGroup.kill_shard` → failover after the detection
delay): the dead shard's disk is streamed to the new owner, and the
creators of the absorbed range re-log whatever the disk did not hold —
which is exactly the set of determinants the dead shard had never acked,
hence still held (unpruned) at their creators.  Clients re-resolve
``shard_for`` per attempt (see :mod:`repro.runtime.retry`), so retries
land on the new owner.

With ``count=1`` this degenerates to the single EL of the paper's body.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.bounds import BoundVector
from repro.core.event_logger import EventLogger
from repro.core.events import Determinant
from repro.metrics.probes import ClusterProbes
from repro.runtime.config import ClusterConfig
from repro.simulator.engine import Simulator
from repro.simulator.network import Network

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

SYNC_STRATEGIES = ("multicast", "broadcast", "tree", "gossip")


def shard_host(index: int) -> str:
    return f"el{index}"


def shard_partition(index: int, nprocs: int, partitions: int) -> int:
    """Simulation partition an EL shard is pinned to (partitioned runs).

    Shard ``k`` serves creators ``{r : r % count == k}``; pinning it with
    its lowest assigned creator keeps the shard's heaviest channel inside
    one partition.  Placement only shapes cross-partition exchange
    traffic — the global ``(time, seq)`` merge keeps results identical
    for any pinning (see :mod:`repro.simulator.partition`).
    """
    from repro.simulator.partition import partition_of_rank

    return partition_of_rank(min(index, nprocs - 1), nprocs, partitions)


class EventLoggerShard(EventLogger):
    """One shard: a full EL plus a merged global view of its peers."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: ClusterConfig,
        probes: ClusterProbes,
        nprocs: int,
        index: int,
    ) -> None:
        super().__init__(sim, network, config, probes, nprocs)
        self.index = index
        self.host = shard_host(index)
        #: freshest clocks known for creators owned by *other* shards
        self.global_view = BoundVector()
        # the merged view (local stable ∪ peer view) is maintained
        # incrementally on every store/absorb instead of being recomputed
        # — a full copy + elementwise max — on every single ack
        self._merged = BoundVector()
        #: log of merged-view raises, the delta stream behind
        #: :meth:`absorb_peer_delta`; positions are absolute — the group
        #: periodically drops prefixes every peer has applied
        #: (:meth:`EventLoggerGroup._truncate_sync_logs`) and ``None``
        #: disables logging entirely for topologies that ship full
        #: vectors (tree) or never sync (a single shard)
        self._merged_log: Optional[list[tuple[int, int]]] = []
        #: absolute position of ``_merged_log[0]``
        self._log_base = 0
        #: sender shard index -> absolute position already applied
        self._sync_pos: dict[int, int] = {}

    def merged_view(self) -> BoundVector:
        """Authoritative local clocks merged with the peer view."""
        return self._merged.copy()

    def absorb_peer_vector(self, vector: BoundVector) -> None:
        """Merge a peer shard's vector (sparse or dense form)."""
        gv = self.global_view.data
        merged = self._merged.data
        log = self._merged_log
        for creator, clock in (
            vector.items() if hasattr(vector, "items") else enumerate(vector)
        ):
            if clock > gv.get(creator, 0):
                gv[creator] = clock
                if clock > merged.get(creator, 0):
                    merged[creator] = clock
                    if log is not None:
                        log.append((creator, clock))

    def absorb_peer_delta(self, sender: "EventLoggerShard", upto: int) -> None:
        """Apply the suffix of ``sender``'s merged-raise log we have not
        seen yet — equivalent to absorbing the full vector the sender's
        merged view held at log position ``upto`` (sync channels are FIFO,
        so positions only grow), at O(changes) instead of O(entries)."""
        pos = self._sync_pos.get(sender.index, 0)
        if upto <= pos:
            return
        self._sync_pos[sender.index] = upto
        log = sender._merged_log
        base = sender._log_base
        gv = self.global_view.data
        merged = self._merged.data
        mylog = self._merged_log
        for i in range(pos - base, upto - base):
            creator, clock = log[i]
            if clock > gv.get(creator, 0):
                gv[creator] = clock
                if clock > merged.get(creator, 0):
                    merged[creator] = clock
                    mylog.append((creator, clock))

    def _note_stable_advance(self, creator: int, clock: int) -> None:
        merged = self._merged.data
        if clock > merged.get(creator, 0):
            merged[creator] = clock
            log = self._merged_log
            if log is not None:
                log.append((creator, clock))

    # override: acks carry the merged global view (service scheduling and
    # the reply host are inherited — the base logger serves from self.host)
    def _ack_vector(self) -> BoundVector:
        return self._merged.copy()


class EventLoggerGroup:
    """A set of EL shards plus the synchronization machinery."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: ClusterConfig,
        probes: ClusterProbes,
        nprocs: int,
        count: int = 1,
        sync_strategy: str = "multicast",
        sync_interval_s: float = 2e-3,
        node_hosts: Optional[list[str]] = None,
        tree_fanout: int = 2,
        gossip_fanout: int = 2,
    ) -> None:
        if count < 1:
            raise ValueError("need at least one Event Logger shard")
        if sync_strategy not in SYNC_STRATEGIES:
            raise ValueError(f"unknown EL sync strategy {sync_strategy!r}")
        if tree_fanout < 1:
            raise ValueError("tree_fanout must be >= 1")
        if gossip_fanout < 1:
            raise ValueError("gossip_fanout must be >= 1")
        self.sim = sim
        self.network = network
        self.config = config
        self.probes = probes
        self.nprocs = nprocs
        self.count = count
        self.sync_strategy = sync_strategy
        self.sync_interval_s = sync_interval_s
        self.tree_fanout = tree_fanout
        self.gossip_fanout = gossip_fanout
        self.node_hosts = node_hosts or []
        self.shards = [
            EventLoggerShard(sim, network, config, probes, nprocs, k)
            for k in range(count)
        ]
        #: key-range ownership: slot ``rank % count`` -> shard index.  The
        #: identity map reproduces the static assignment; failover points
        #: a dead shard's slots at the surviving shard that absorbed them.
        self.owner: list[int] = list(range(count))
        self.shard_kills = 0
        #: vectors pushed to nodes under the broadcast strategy
        self.node_vector_sinks: dict[str, Callable[[list[int]], None]] = {}
        #: per-node re-log request sinks (daemon.on_el_relog_request)
        self.relog_sinks: dict[str, Callable[[int], None]] = {}
        # merged-raise logs back the delta sync of the strategies whose
        # shards ship their *own* view (multicast/broadcast/gossip); the
        # tree forwards the root's view as full vectors and a single
        # shard never syncs, so their logs are disabled outright
        if count == 1 or sync_strategy == "tree":
            for shard in self.shards:
                shard._merged_log = None
        # journal-backed acks require the ack vector to advance only
        # through _note_stable_advance; sharded groups also advance it by
        # absorbing peer views and disk rebuilds, so their acks stay plain
        # snapshots (receivers fall back to the full-vector fold)
        if count > 1:
            for shard in self.shards:
                shard._ack_fast = False
        self.sync_rounds = 0
        self.sync_bytes = 0
        #: shard-to-shard sync messages (excludes broadcast-to-node pushes,
        #: counted separately so topologies compare on the same quantity)
        self.sync_messages = 0
        self.node_push_messages = 0
        probes.el_sync_staleness_bound_rounds = self.staleness_bound_rounds
        #: liveness check set by the cluster: the periodic sync stops when
        #: the run completes, letting the event heap drain
        self.active_check: Callable[[], bool] = lambda: True
        if count > 1:
            sim.schedule(sync_interval_s, self._sync_tick)

    # ------------------------------------------------------------------ #

    def shard_index_for(self, rank: int) -> int:
        return self.owner[rank % self.count]

    def shard_for(self, rank: int) -> EventLoggerShard:
        return self.shards[self.shard_index_for(rank)]

    def host_for(self, rank: int) -> str:
        return shard_host(self.shard_index_for(rank))

    def register_node_sink(
        self, host: str, sink: Callable[[list[int]], None]
    ) -> None:
        """Register a daemon callback for broadcast-strategy vectors."""
        self.node_vector_sinks[host] = sink

    def register_relog_sink(self, host: str, sink: Callable[[int], None]) -> None:
        """Register a daemon callback for failover re-log requests."""
        self.relog_sinks[host] = sink

    # ------------------------------------------------------------------ #
    # shard failure + failover

    def kill_shard(self, index: int) -> None:
        """Crash one shard.  With ``ClusterConfig.el_failover`` enabled,
        a surviving shard absorbs the dead shard's key range after the
        usual detection delay; without it the range simply goes dark
        (clients that retry keep retrying into the dead host)."""
        shard = self.shards[index]
        if not shard.alive:
            return
        shard.alive = False
        self.shard_kills += 1
        if not self.config.el_failover:
            return
        if not any(s.alive for s in self.shards):
            return
        self.sim.schedule(
            self.config.fault_detection_delay_s, self._failover, index
        )

    def _failover(self, index: int) -> None:
        """Reassign the dead shard's key range to the next alive shard.

        The shard's write-ahead store — every determinant was written to
        stable storage *before* being acknowledged — is streamed off its
        disk to the new owner; determinants the dead shard had received
        but not yet serviced were never acked, so their creators still
        hold them and are asked to re-log everything above the disk's
        stable clock.  Ownership flips immediately: clients that re-probe
        (``shard_for``) land on the new owner, whose merged global view
        already carries the dead range's last synced clocks.
        """
        dead = self.shards[index]
        new_owner = None
        for i in range(1, self.count + 1):
            cand = self.shards[(index + i) % self.count]
            if cand.alive:
                new_owner = cand
                break
        if new_owner is None:
            return  # pragma: no cover - kill_shard guards this
        dead_slots = {
            slot for slot in range(self.count) if self.owner[slot] == index
        }
        for slot in sorted(dead_slots):
            self.owner[slot] = new_owner.index
        creators = [
            c for c in range(self.nprocs) if (c % self.count) in dead_slots
        ]
        self.probes.el_failovers += 1
        records = {c: list(dead.store[c]) for c in creators if dead.store[c]}
        n = sum(len(v) for v in records.values())
        self.probes.el_disk_records_recovered += n
        new_owner._rebuilding.update(creators)
        nbytes = self.config.el_ack_wire_bytes + n * self.config.event_record_bytes
        self.network.transfer(
            dead.host,
            new_owner.host,
            nbytes,
            self._disk_loaded,
            args=(new_owner, records, creators),
        )

    def _disk_loaded(
        self,
        owner: EventLoggerShard,
        records: dict[int, list[Determinant]],
        creators: list[int],
    ) -> None:
        owner.ingest_records(records)
        owner.finish_rebuild(creators)
        # ask every creator of the absorbed range to re-log what the disk
        # did not hold (received-but-unacked determinants died with the
        # shard's process; unacked means the creator still holds them)
        for creator in creators:
            host = (
                self.node_hosts[creator]
                if creator < len(self.node_hosts)
                else None
            )
            sink = self.relog_sinks.get(host) if host is not None else None
            if sink is None:
                continue
            disk_clock = owner.stable_clock.data.get(creator, 0)
            self.probes.el_relog_requests += 1
            self.network.transfer(
                owner.host,
                host,
                self.config.recovery_request_bytes,
                sink,
                args=(disk_clock,),
            )

    # ------------------------------------------------------------------ #
    # synchronization

    @property
    def staleness_bound_rounds(self) -> int:
        """Worst-case rounds before any shard's update reaches every peer
        *directly* (transitive paths are usually faster).

        multicast/broadcast/tree exchange (directly or through the root)
        every round; gossip's cyclic rotation covers all ``count - 1`` peer
        offsets once every ``ceil((count - 1) / fanout)`` rounds.
        """
        if self.count <= 1:
            return 0
        if self.sync_strategy != "gossip":
            return 1
        fanout = min(self.gossip_fanout, self.count - 1)
        return -(-(self.count - 1) // fanout)  # ceil division

    def _vector_wire_bytes(self, shard: EventLoggerShard, vector: BoundVector) -> int:
        return self.config.el_ack_wire_bytes + shard.ack_vector_bytes(vector)

    def _sync_tick(self) -> None:
        if not self.active_check():
            return
        self.sync_rounds += 1
        if self.sync_strategy == "tree":
            if any(not s.alive for s in self.shards):
                # a dead shard breaks the reduce tree: fall back to a
                # full-vector all-to-all among the survivors this round
                self._degraded_round()
            else:
                self._tree_round()
        elif self.sync_strategy == "gossip":
            self._gossip_round()
        else:
            self._multicast_round()
        self._truncate_sync_logs()
        self.sim.schedule(self.sync_interval_s, self._sync_tick)

    def _truncate_sync_logs(self, min_drop: int = 4096) -> None:
        """Drop merged-log prefixes every peer has already applied.

        Receiver positions (`_sync_pos`) are monotone and FIFO channels
        deliver deltas in send order, so entries below the minimum applied
        position of all peers can never be read again; dropping them keeps
        each shard's log bounded by the sync backlog instead of the whole
        run's raise count.
        """
        shards = self.shards
        for shard in shards:
            log = shard._merged_log
            if log is None or not shard.alive:
                continue
            # dead peers never read again, so they do not hold the floor
            floor = min(
                (
                    p._sync_pos.get(shard.index, 0)
                    for p in shards
                    if p is not shard and p.alive
                ),
                default=0,
            )
            drop = floor - shard._log_base
            if drop >= min_drop:
                del log[:drop]
                shard._log_base = floor

    def _multicast_round(self) -> None:
        """All-to-all exchange (``"multicast"``/``"broadcast"``): the
        original strategy, kept bit-identical — O(count²) messages."""
        for shard in self.shards:
            if not shard.alive:
                continue
            # wire size is that of the full merged snapshot, but peers
            # absorb the sender's own view as a log delta (bit-identical:
            # the log suffix reconstructs exactly this snapshot)
            vec_bytes = self._vector_wire_bytes(shard, shard._merged)
            upto = shard._log_base + len(shard._merged_log)  # absolute
            for peer in self.shards:
                if peer is shard or not peer.alive:
                    continue
                self.sync_messages += 1
                self.sync_bytes += vec_bytes
                self.network.transfer(
                    shard.host,
                    peer.host,
                    vec_bytes,
                    peer.absorb_peer_delta,
                    args=(shard, upto),
                )
            if self.sync_strategy == "broadcast":
                # and broadcast the full snapshot to every compute node
                # directly (daemons consume plain stable vectors)
                local = shard.merged_view()
                for host, sink in self.node_vector_sinks.items():
                    self.node_push_messages += 1
                    self.sync_bytes += vec_bytes
                    self.network.transfer(
                        shard.host,
                        host,
                        vec_bytes,
                        sink,
                        args=(local,),
                    )

    def _degraded_round(self) -> None:
        """Full-vector all-to-all among the alive shards — the fallback
        sync round for topologies whose structure a dead shard breaks
        (tree).  Costs more per round than the tree but keeps the
        survivors converging while the membership is degraded."""
        alive = [s for s in self.shards if s.alive]
        for shard in alive:
            vector = shard.merged_view()
            vec_bytes = self._vector_wire_bytes(shard, vector)
            for peer in alive:
                if peer is shard:
                    continue
                self.sync_messages += 1
                self.sync_bytes += vec_bytes
                self.network.transfer(
                    shard.host,
                    peer.host,
                    vec_bytes,
                    peer.absorb_peer_vector,
                    args=(vector,),
                )

    # -- tree: k-ary reduce-then-broadcast over the shards --------------- #

    def _tree_children(self, index: int) -> range:
        first = self.tree_fanout * index + 1
        return range(first, min(first + self.tree_fanout, self.count))

    def _tree_parent(self, index: int) -> int:
        return (index - 1) // self.tree_fanout

    def _tree_round(self) -> None:
        """Reduce merged views leaf→root, broadcast the root's merged
        global view root→leaf: 2·(count−1) messages per round."""
        pending = [len(self._tree_children(k)) for k in range(self.count)]
        for k in range(self.count):
            if pending[k] == 0:
                self._tree_send_up(k, pending)

    def _tree_send_up(self, index: int, pending: list[int]) -> None:
        shard = self.shards[index]
        vector = shard.merged_view()
        if index == 0:
            # root holds the fully reduced global view: broadcast it down
            self._tree_send_down(0, vector)
            return
        parent = self.shards[self._tree_parent(index)]
        vec_bytes = self._vector_wire_bytes(shard, vector)
        self.sync_messages += 1
        self.sync_bytes += vec_bytes

        def _absorb_up(p: EventLoggerShard = parent, v: BoundVector = vector) -> None:  # v is a frozen snapshot
            p.absorb_peer_vector(v)
            pending[p.index] -= 1
            if pending[p.index] == 0:
                self._tree_send_up(p.index, pending)

        self.network.transfer(shard.host, parent.host, vec_bytes, _absorb_up)

    def _tree_send_down(self, index: int, vector: BoundVector) -> None:
        shard = self.shards[index]
        for child_index in self._tree_children(index):
            child = self.shards[child_index]
            vec_bytes = self._vector_wire_bytes(shard, vector)
            self.sync_messages += 1
            self.sync_bytes += vec_bytes

            def _absorb_down(c: EventLoggerShard = child, v: BoundVector = vector) -> None:  # v is a frozen snapshot
                c.absorb_peer_vector(v)
                self._tree_send_down(c.index, v)

            self.network.transfer(shard.host, child.host, vec_bytes, _absorb_down)

    # -- gossip: push to rotating peers ---------------------------------- #

    def _gossip_round(self) -> None:
        """Each shard pushes its merged view to ``gossip_fanout`` peers
        chosen by a deterministic cyclic rotation: count × fanout messages
        per round, staleness bounded by :attr:`staleness_bound_rounds`."""
        count = self.count
        fanout = min(self.gossip_fanout, count - 1)
        # sync_rounds was already incremented for this round: rotate from 0
        base = (self.sync_rounds - 1) * fanout
        for k, shard in enumerate(self.shards):
            if not shard.alive:
                continue
            # sizing from the merged snapshot; peers absorb the sender's
            # own log delta (same equivalence as the multicast round)
            vec_bytes = self._vector_wire_bytes(shard, shard._merged)
            upto = shard._log_base + len(shard._merged_log)  # absolute
            for j in range(fanout):
                offset = 1 + (base + j) % (count - 1)
                peer = self.shards[(k + offset) % count]
                if not peer.alive:
                    continue
                self.sync_messages += 1
                self.sync_bytes += vec_bytes
                self.network.transfer(
                    shard.host,
                    peer.host,
                    vec_bytes,
                    peer.absorb_peer_delta,
                    args=(shard, upto),
                )

    # ------------------------------------------------------------------ #
    # aggregate introspection

    def stored_count(self) -> int:
        """Determinants held by the *alive* shards (a dead shard's store
        is its unread disk; counting it would double-count records already
        absorbed by its failover owner)."""
        return sum(s.stored_count() for s in self.shards if s.alive)

    def merged_stable(self) -> list[int]:
        out = BoundVector()
        for shard in self.shards:
            if shard.alive:
                out.update_max(shard.merged_view())
        return out.as_list(self.nprocs)
