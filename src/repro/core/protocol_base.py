"""The V-protocol hook API (paper §IV, Fig. 4).

MPICH-V designs fault-tolerance protocols as "a set of hooks called in
relevant routines of the generic subsystem".  :class:`VProtocol` is that
hook API; the Vdaemon calls it on every send, every delivery, every EL ack
and during recovery.  :class:`NoFaultTolerance` is the trivial
implementation (Vdummy) used to measure the raw framework overhead.

Contract
--------

Fault-free path (called by :class:`repro.runtime.daemon.Vdaemon`):

* :meth:`build_piggyback` — on the send path, before the wire.  Returns a
  :class:`~repro.core.piggyback.Piggyback` whose ``build_cost_s`` is charged
  to the simulated clock and whose ``nbytes`` ride on the message.
* :meth:`on_local_event` — a new reception determinant was created locally
  (the daemon assigned the rsn).
* :meth:`accept_piggyback` — piggybacked events arrived with a message;
  returns the simulated cost of merging them.
* :meth:`on_el_ack` — a stable vector arrived from the Event Logger.

Recovery path:

* :meth:`events_created_by` — determinants of ``creator`` this process
  still holds (peers answer this during no-EL recovery).
* :meth:`export_state` / :meth:`restore_state` — protocol part of a
  checkpoint image.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.events import Determinant, GrowthLog, StableState, StableVector
from repro.core.interfaces import DaemonHost
from repro.core.piggyback import Piggyback
from repro.metrics.probes import ProcessProbes
from repro.runtime.config import ClusterConfig


class VProtocol:
    """Base class: no-op hooks, shared bookkeeping."""

    __slots__ = (
        "rank", "nprocs", "config", "probes", "daemon", "stable",
        "_send_scan_dense", "_recv_scan_dense", "_worklist_enabled",
        "_chan_synced",
    )

    #: whether this protocol ships determinants to the Event Logger
    uses_event_logger = False
    #: whether sends must block on event stability (pessimistic logging)
    blocking_on_stability = False
    #: human-readable protocol name
    name = "base"

    def __init__(self, rank: int, nprocs: int, config: ClusterConfig, probes: ProcessProbes) -> None:
        self.rank = rank
        self.nprocs = nprocs
        self.config = config
        self.probes = probes
        self.daemon: Optional[DaemonHost] = None
        self.stable = StableVector(nprocs)
        #: bound-vector scan cost model (see ClusterConfig.pb_cost_model).
        #: Dense compatibility mode charges these precomputed ``× nprocs``
        #: constants on every build/merge; None selects the sparse model,
        #: where the hooks charge ``cost_pb_*_per_entry_s × touched
        #: entries`` instead.  Precomputed so the per-message hot paths pay
        #: an attribute load, not a string compare.
        if config.pb_cost_model == "dense":
            self._send_scan_dense: Optional[float] = (
                config.cost_pb_send_per_rank_s * nprocs
            )
            self._recv_scan_dense: Optional[float] = (
                config.cost_pb_recv_per_rank_s * nprocs
            )
        else:
            self._send_scan_dense = None
            self._recv_scan_dense = None
        #: dirty-creator worklist (see ClusterConfig.pb_build_worklist):
        #: per-peer cursor into the protocol's growth log.  A creator is
        #: "dirty" for a channel when its sequence grew after the last
        #: build on that channel; clean creators cannot contribute events
        #: (their channel/knowledge bound already covers their max clock),
        #: so the build loop skips them without touching their sequences.
        self._worklist_enabled = config.pb_build_worklist
        self._chan_synced: dict[int, int] = {}

    def bind(self, daemon: DaemonHost) -> None:
        self.daemon = daemon

    def _pb_send_scan_cost(self, touched: int) -> float:
        """Cost of scanning per-peer bound structures on a build."""
        flat = self._send_scan_dense
        if flat is not None:
            return flat
        return self.config.cost_pb_send_per_entry_s * touched

    def _pb_recv_scan_cost(self, touched: int) -> float:
        """Cost of updating per-peer bound structures on an accept."""
        flat = self._recv_scan_dense
        if flat is not None:
            return flat
        return self.config.cost_pb_recv_per_entry_s * touched

    def _build_candidates(
        self, dst: int, growth: GrowthLog, held: int
    ) -> Optional[list[int]]:
        """Creators whose sequences the build loop for ``dst`` must scan.

        Returns ``None`` on the full-scan reference path
        (``pb_build_worklist=False``); otherwise the creators grown since
        the last build on this channel, sorted into sequence-creation
        order — the full scan's iteration order restricted to dirty
        creators, which is what keeps piggybacks byte-identical between
        the two paths (clean creators contribute nothing to a full scan).

        ``growth`` is the protocol's :class:`~repro.core.events.GrowthLog`:
        growing a creator moves it to the end with a fresh monotone tick,
        so the dirty set is exactly the suffix of entries with a tick
        above this channel's cursor (collected by one reverse walk).
        Marking growth is O(1) and collection is O(dirty), independent of
        both the cluster size and the number of held sequences.

        ``held`` is the full scan's sequence count; the
        ``pb_build_seqs_scanned`` probe is charged here for whichever
        path is taken.
        """
        if not self._worklist_enabled:
            self.probes.pb_build_seqs_scanned += held
            return None
        cursor = self._chan_synced.get(dst, 0)
        self._chan_synced[dst] = growth.counter
        seq_order = growth.seq_order
        dirty: list[int] = []
        for creator, tick in reversed(growth.order.items()):
            if tick <= cursor:
                break
            dirty.append(seq_order[creator])
        self.probes.pb_build_seqs_scanned += len(dirty)
        if len(dirty) > 1:
            # creation indices sort as bare ints (no key function), then
            # map back to creators — the full scan's iteration order
            dirty.sort()
        by_index = growth.by_index
        return [by_index[ix] for ix in dirty]

    # ------------------------------------------------------------------ #
    # fault-free hooks

    def build_piggyback(self, dst: int) -> Piggyback:
        return Piggyback()

    def on_local_event(self, det: Determinant) -> None:
        """A new local reception event was created (rsn assigned)."""

    def accept_piggyback(self, src: int, pb: Piggyback, dep: int) -> float:
        """Merge piggybacked causality; returns simulated merge cost (s).

        ``dep`` is the sender's reception clock at emission time (the
        antecedence cross edge), available to every protocol.
        """
        return 0.0

    def on_el_ack(self, stable_vector: StableState) -> None:
        self.stable.update(stable_vector)

    # ------------------------------------------------------------------ #
    # introspection / recovery

    def events_created_by(self, creator: int) -> list[Determinant]:
        """Determinants of ``creator`` held in volatile memory here."""
        return []

    def events_held(self) -> int:
        """Number of determinants currently held (memory footprint).

        On the per-message cost path: implementations must be O(1)
        (incrementally maintained), with :meth:`scan_events_held` as the
        full recount the tests check it against.
        """
        return 0

    def scan_events_held(self) -> int:
        """Recount :meth:`events_held` from the backing structures."""
        return self.events_held()

    def volatile_bytes(self) -> int:
        """Causal-information bytes that join a checkpoint image."""
        return self.events_held() * self.config.event_record_bytes

    def export_state(self) -> dict[str, Any]:
        """Deep-copyable protocol state for a checkpoint image."""
        return {}

    def restore_state(self, state: dict[str, Any]) -> None:
        """Restore from :meth:`export_state` output (already deep-copied)."""


class NoFaultTolerance(VProtocol):
    """Vdummy: the trivial hook implementation (no fault tolerance).

    Equivalent to the MPICH-P4 reference implementation; used to measure
    the raw performance of the generic communication layer.
    """

    __slots__ = ()

    name = "vdummy"


def make_protocol(
    protocol: str,
    rank: int,
    nprocs: int,
    config: ClusterConfig,
    probes: ProcessProbes,
) -> VProtocol:
    """Protocol factory keyed by :class:`~repro.runtime.config.StackSpec` name."""
    # local imports avoid a cycle (protocol modules import this base)
    from repro.core.coordinated import CoordinatedProtocol
    from repro.core.logon import LogOnProtocol
    from repro.core.manetho import ManethoProtocol
    from repro.core.pessimistic import PessimisticProtocol
    from repro.core.vcausal import VcausalProtocol

    classes = {
        "none": NoFaultTolerance,
        "vdummy": NoFaultTolerance,
        "vcausal": VcausalProtocol,
        "manetho": ManethoProtocol,
        "logon": LogOnProtocol,
        "pessimistic": PessimisticProtocol,
        "coordinated": CoordinatedProtocol,
    }
    if protocol not in classes:
        raise ValueError(f"unknown protocol {protocol!r}")
    return classes[protocol](rank, nprocs, config, probes)
