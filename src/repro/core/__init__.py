"""The paper's contribution: causal message logging protocols + Event Logger.

Modules
-------
* :mod:`~repro.core.events` — determinants, event identifiers, sequences.
* :mod:`~repro.core.piggyback` — exact wire formats and byte accounting.
* :mod:`~repro.core.protocol_base` — the V-protocol hook API and Vdummy.
* :mod:`~repro.core.sender_log` — sender-based payload logging.
* :mod:`~repro.core.vcausal` — Vcausal piggyback reduction.
* :mod:`~repro.core.antecedence` — antecedence graph shared by the two
  graph protocols.
* :mod:`~repro.core.manetho` — Manetho piggyback reduction.
* :mod:`~repro.core.logon` — LogOn piggyback reduction (SRDS'98).
* :mod:`~repro.core.event_logger` — the Event Logger stable server.
* :mod:`~repro.core.pessimistic` — pessimistic logging baseline (MPICH-V2).
* :mod:`~repro.core.coordinated` — Chandy-Lamport coordinated checkpointing.
"""

from repro.core.events import Determinant, EventSequence, StableVector
from repro.core.protocol_base import VProtocol, NoFaultTolerance, make_protocol
from repro.core.vcausal import VcausalProtocol
from repro.core.manetho import ManethoProtocol
from repro.core.logon import LogOnProtocol
from repro.core.pessimistic import PessimisticProtocol
from repro.core.coordinated import CoordinatedProtocol

__all__ = [
    "Determinant",
    "EventSequence",
    "StableVector",
    "VProtocol",
    "NoFaultTolerance",
    "make_protocol",
    "VcausalProtocol",
    "ManethoProtocol",
    "LogOnProtocol",
    "PessimisticProtocol",
    "CoordinatedProtocol",
]
