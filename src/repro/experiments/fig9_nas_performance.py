"""Fig. 9 — NAS benchmark performance (aggregate Megaflop/s).

Eight panels: CG A, CG B, MG A, BT A, BT B, SP A, LU A, FT A, each across
process counts, for MPICH-P4, MPICH-Vdummy and the three causal protocols
with and without Event Logger.

Shapes to reproduce (paper §V-D.3):

* Vdummy ≥ P4 on some benchmarks (full-duplex exploitation);
* with the EL the three causal protocols are nearly equal, except on the
  highest communication/computation ratios;
* the EL improves every protocol on every benchmark, and the improvement
  exceeds the spread between the two antecedence-graph protocols;
* without the EL, LU/16 punishes LogOn hardest (piggyback explosion).
"""

from __future__ import annotations

from repro.experiments.common import run_nas
from repro.metrics.reporting import format_table
from repro.runtime.config import FIGURE_STACKS

#: the eight panels of Fig. 9: (bench, class) -> process counts
PANELS: dict[tuple[str, str], tuple[int, ...]] = {
    ("cg", "A"): (2, 4, 8, 16),
    ("cg", "B"): (2, 4, 8, 16),
    ("mg", "A"): (2, 4, 8, 16),
    ("bt", "A"): (4, 9, 16),
    ("bt", "B"): (4, 9, 16),
    ("sp", "A"): (4, 9, 16),
    ("lu", "A"): (2, 4, 8, 16),
    ("ft", "A"): (2, 4, 8, 16),
}

#: fast mode runs a representative subset of the panels
FAST_PANELS: dict[tuple[str, str], tuple[int, ...]] = {
    ("cg", "A"): (4, 16),
    ("bt", "A"): (4, 16),
    ("lu", "A"): (4, 16),
    ("ft", "A"): (4, 16),
}


def run(fast: bool = True) -> dict:
    panels = FAST_PANELS if fast else PANELS
    mflops: dict[tuple[str, str, int], dict[str, float]] = {}
    for (bench, klass), counts in panels.items():
        for nprocs in counts:
            cell = {}
            for stack in FIGURE_STACKS:
                result, _info = run_nas(bench, klass, nprocs, stack, fast=fast)
                cell[stack] = result.mflops
            mflops[(bench, klass, nprocs)] = cell
    return {"mflops": mflops}


def format_report(results: dict) -> str:
    rows = []
    for (bench, klass, nprocs), cell in results["mflops"].items():
        rows.append(
            [f"{bench.upper()} {klass}", nprocs]
            + [f"{cell[s]:.0f}" for s in FIGURE_STACKS]
        )
    return format_table(
        ["bench", "P"] + list(FIGURE_STACKS),
        rows,
        title="Fig. 9 — NAS performance (aggregate Mflop/s; shapes, not absolutes)",
    )


def shape_checks(results: dict) -> list[str]:
    """Assertable shape properties; returns a list of violations."""
    violations = []
    for key, cell in results["mflops"].items():
        for proto in ("vcausal", "manetho", "logon"):
            if cell[proto] < cell[f"{proto}-noel"] * 0.98:
                violations.append(f"{key}: EL did not improve {proto}")
        if not cell["vdummy"] >= cell["vcausal"] * 0.98:
            violations.append(f"{key}: vcausal outperformed vdummy")
    return violations


def main(fast: bool = True) -> dict:
    results = run(fast=fast)
    print(format_report(results))
    bad = shape_checks(results)
    if bad:
        print("\nshape violations:")
        for b in bad:
            print("  -", b)
    else:
        print("\nall Fig. 9 shape checks passed")
    return results


if __name__ == "__main__":
    main()
