"""Ablation — checkpoint scheduler policies (paper §IV-B.3).

"The checkpoint scheduler is a specific component that is not necessary to
insure the fault tolerance, but is intended to enhance performance. ...
When a checkpoint of a process is finished, the sender-based messages
payload of all receptions preceding the checkpoint can be deleted.  Thus,
to increase the overall performance, it is important that checkpoint
scheduling maximizes this garbage collecting.  The checkpoint scheduler
implements different policies such as coordinated checkpoint, random or
round-robin."

This ablation quantifies the policies' effect on the two quantities the
paper calls out: the peak sender-based log footprint (garbage-collection
effectiveness) and the fault-free overhead of checkpointing itself.
"""

from __future__ import annotations

from repro import Cluster
from repro.metrics.reporting import format_table
from repro.workloads.nas import make_app

POLICIES = ("none", "round-robin", "random", "coordinated")


def run_bt(policy: str, iterations: int):
    app, _ = make_app("bt", "A", 9, iterations=iterations)
    kwargs = {}
    if policy != "none":
        kwargs = dict(checkpoint_policy=policy, checkpoint_interval_s=0.08)
    cluster = Cluster(nprocs=9, app_factory=app, stack="vcausal", **kwargs)
    result = cluster.run()
    assert result.finished
    return result


def run(fast: bool = True) -> dict:
    iterations = 20 if fast else 60
    cells = {}
    for policy in POLICIES:
        result = run_bt(policy, iterations)
        peak_log = max(
            d.sender_log.bytes_held for d in result.cluster.daemons.values()
        )
        cells[policy] = {
            "sim_time_s": result.sim_time,
            "checkpoints": result.probes.checkpoints_stored,
            "checkpoint_bytes": result.probes.checkpoint_bytes,
            "peak_sender_log_bytes": peak_log,
            "mflops": result.mflops,
        }
    return {"cells": cells, "iterations": iterations}


def format_report(results: dict) -> str:
    base = results["cells"]["none"]["sim_time_s"]
    rows = []
    for policy, cell in results["cells"].items():
        rows.append(
            [
                policy,
                cell["checkpoints"],
                f"{cell['checkpoint_bytes'] / 1e6:.1f} MB",
                f"{cell['peak_sender_log_bytes'] / 1024:.0f} KiB",
                f"{100 * (cell['sim_time_s'] / base - 1):+.1f}%",
                f"{cell['mflops']:.0f}",
            ]
        )
    return format_table(
        ["policy", "ckpts", "shipped", "peak sender log", "overhead", "Mflop/s"],
        rows,
        title=(
            "Ablation — checkpoint scheduling policies on NAS BT A, "
            "9 processes, Vcausal (paper §IV-B.3)"
        ),
    )


def main(fast: bool = True) -> dict:
    results = run(fast=fast)
    print(format_report(results))
    return results


if __name__ == "__main__":
    main()
