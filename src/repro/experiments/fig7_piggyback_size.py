"""Fig. 7 — piggybacked data in percent of total exchanged data.

Runs BT, CG and LU class A with the three piggyback reduction techniques,
with and without Event Logger, and reports the total piggybacked bytes as
a percentage of the application payload bytes exchanged.
"""

from __future__ import annotations

from repro.experiments.common import run_nas
from repro.metrics.reporting import format_table

#: paper Fig. 7 values (percent of total exchanged data)
PAPER_PB_PERCENT = {
    ("bt", 4): {"vcausal": 0.014, "manetho": 0.014, "logon": 0.013,
                "vcausal-noel": 0.249, "manetho-noel": 0.172, "logon-noel": 0.286},
    ("bt", 9): {"vcausal": 0.034, "manetho": 0.030, "logon": 0.029,
                "vcausal-noel": 2.27, "manetho-noel": 1.08, "logon-noel": 2.09},
    ("bt", 16): {"vcausal": 0.141, "manetho": 0.138, "logon": 0.154,
                 "vcausal-noel": 7.04, "manetho-noel": 3.01, "logon-noel": 5.9},
    ("cg", 2): {"vcausal": 0.012, "manetho": 0.014, "logon": 0.010,
                "vcausal-noel": 0.226, "manetho-noel": 0.225, "logon-noel": 0.225},
    ("cg", 4): {"vcausal": 0.032, "manetho": 0.026, "logon": 0.028,
                "vcausal-noel": 0.761, "manetho-noel": 0.313, "logon-noel": 0.434},
    ("cg", 8): {"vcausal": 0.348, "manetho": 0.39, "logon": 0.368,
                "vcausal-noel": 4.87, "manetho-noel": 2.64, "logon-noel": 4.42},
    ("cg", 16): {"vcausal": 0.492, "manetho": 0.433, "logon": 0.482,
                 "vcausal-noel": 11.8, "manetho-noel": 3.95, "logon-noel": 4.97},
    ("lu", 2): {"vcausal": 0.034, "manetho": 0.033, "logon": 0.3,
                "vcausal-noel": 0.444, "manetho-noel": 0.444, "logon-noel": 0.538},
    ("lu", 4): {"vcausal": 0.098, "manetho": 0.091, "logon": 0.081,
                "vcausal-noel": 4.05, "manetho-noel": 2.6, "logon-noel": 5.13},
    ("lu", 8): {"vcausal": 0.197, "manetho": 0.166, "logon": 0.151,
                "vcausal-noel": 16.5, "manetho-noel": 6.39, "logon-noel": 13.6},
    ("lu", 16): {"vcausal": 13.6, "manetho": 7.19, "logon": 13.8,
                 "vcausal-noel": 50.3, "manetho-noel": 13.1, "logon-noel": 39.8},
}

STACKS = ("vcausal", "manetho", "logon", "vcausal-noel", "manetho-noel", "logon-noel")

PROC_COUNTS = {"bt": (4, 9, 16), "cg": (2, 4, 8, 16), "lu": (2, 4, 8, 16)}


def run(fast: bool = True) -> dict:
    out: dict[tuple[str, int], dict[str, float]] = {}
    for bench, counts in PROC_COUNTS.items():
        for nprocs in counts:
            cell = {}
            for stack in STACKS:
                result, _info = run_nas(bench, "A", nprocs, stack, fast=fast)
                cell[stack] = result.probes.piggyback_fraction
            out[(bench, nprocs)] = cell
    return {"pb_percent": out}


def format_report(results: dict) -> str:
    headers = ["bench", "P"] + [f"{s}" for s in STACKS]
    rows = []
    for (bench, nprocs), cell in results["pb_percent"].items():
        paper = PAPER_PB_PERCENT.get((bench, nprocs), {})
        rows.append(
            [bench.upper(), nprocs]
            + [f"{cell[s]:.3f} ({paper.get(s, float('nan')):.3f})" for s in STACKS]
        )
    return format_table(
        headers,
        rows,
        title=(
            "Fig. 7 — piggybacked data in % of total exchanged data, "
            "NAS class A  [model (paper)]"
        ),
    )


def main(fast: bool = True) -> dict:
    results = run(fast=fast)
    print(format_report(results))
    return results


if __name__ == "__main__":
    main()
