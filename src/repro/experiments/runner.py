"""CLI entry point: regenerate every paper figure/table.

Usage::

    python -m repro.experiments.runner --all            # fast mode
    python -m repro.experiments.runner --all --full     # full sweeps
    python -m repro.experiments.runner -e fig7 -e fig10
"""

from __future__ import annotations

import argparse
import sys
import time


def main(argv=None) -> int:
    from repro.experiments import ALL_EXPERIMENTS

    parser = argparse.ArgumentParser(
        description="Reproduce the figures/tables of the IPPS 2005 Event Logger paper"
    )
    parser.add_argument(
        "-e",
        "--experiment",
        action="append",
        choices=sorted(ALL_EXPERIMENTS),
        help="experiment(s) to run (repeatable)",
    )
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--full",
        action="store_true",
        help="full parameter sweeps (slow); default is a fast representative subset",
    )
    args = parser.parse_args(argv)

    names = sorted(ALL_EXPERIMENTS) if args.all or not args.experiment else args.experiment
    fast = not args.full
    for name in names:
        module = ALL_EXPERIMENTS[name]
        print("=" * 78)
        print(f"== {name}: {module.__doc__.strip().splitlines()[0]}")
        print("=" * 78)
        t0 = time.time()  # simlint: ignore[wall-clock] - host-side progress timer, never feeds simulated state
        module.main(fast=fast)
        print(f"\n[{name} done in {time.time() - t0:.1f}s]\n")  # simlint: ignore[wall-clock] - same host-side timer
    return 0


if __name__ == "__main__":
    sys.exit(main())
