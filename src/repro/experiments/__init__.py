"""Experiment modules: one per paper figure/table.

Each module exposes ``run(fast=...)`` returning a results structure and
``format_report(results)`` producing the same rows/series the paper
reports, with the paper's reference values printed side by side.

Run everything::

    python -m repro.experiments.runner --all
    python -m repro.experiments.runner --experiment fig7 --full
"""

from repro.experiments import (  # noqa: F401
    ablation_checkpoint_policies,
    ablation_distributed_el,
    fig1_fault_resilience,
    fig6_pingpong,
    fig7_piggyback_size,
    fig8_piggyback_time,
    fig9_nas_performance,
    fig10_recovery,
)

ALL_EXPERIMENTS = {
    "fig1": fig1_fault_resilience,
    "fig6": fig6_pingpong,
    "fig7": fig7_piggyback_size,
    "fig8": fig8_piggyback_time,
    "fig9": fig9_nas_performance,
    "fig10": fig10_recovery,
    "ablation-el": ablation_distributed_el,
    "ablation-ckpt": ablation_checkpoint_policies,
}

__all__ = ["ALL_EXPERIMENTS"]
