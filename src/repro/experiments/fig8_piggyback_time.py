"""Fig. 8 — time to manage piggyback information.

(8a) cumulative per-process time to prepare causality information when
sending (dashed in the paper) and to merge received causality when
receiving (plain), for BT, CG, LU and FT class A;

(8b) the same cost as a percentage of total execution time.
"""

from __future__ import annotations

from repro.experiments.common import pb_percent_of_exec, run_nas
from repro.metrics.reporting import format_table

#: paper Fig. 8(b): causality computation cost in % of execution time
PAPER_PCT = {
    ("bt", 4): {"vcausal": 0.0, "manetho": 0.0, "logon": 0.0,
                "vcausal-noel": 0.2, "manetho-noel": 0.7, "logon-noel": 0.2},
    ("bt", 9): {"vcausal": 0.2, "manetho": 0.3, "logon": 0.3,
                "vcausal-noel": 1.6, "manetho-noel": 3.0, "logon-noel": 2.6},
    ("bt", 16): {"vcausal": 0.7, "manetho": 1.3, "logon": 1.2,
                 "vcausal-noel": 7.8, "manetho-noel": 11.8, "logon-noel": 12.5},
    ("cg", 2): {"vcausal": 0.0, "manetho": 0.0, "logon": 0.1,
                "vcausal-noel": 0.2, "manetho-noel": 1.7, "logon-noel": 0.3},
    ("cg", 4): {"vcausal": 0.1, "manetho": 0.3, "logon": 0.3,
                "vcausal-noel": 1.0, "manetho-noel": 5.1, "logon-noel": 1.0},
    ("cg", 8): {"vcausal": 1.0, "manetho": 2.5, "logon": 1.6,
                "vcausal-noel": 6.8, "manetho-noel": 15.0, "logon-noel": 11.2},
    ("cg", 16): {"vcausal": 2.4, "manetho": 6.6, "logon": 4.0,
                 "vcausal-noel": 18.0, "manetho-noel": 26.1, "logon-noel": 25.6},
    ("lu", 2): {"vcausal": 0.0, "manetho": 0.0, "logon": 0.0,
                "vcausal-noel": 0.5, "manetho-noel": 0.7, "logon-noel": 0.5},
    ("lu", 4): {"vcausal": 0.2, "manetho": 0.4, "logon": 0.4,
                "vcausal-noel": 2.9, "manetho-noel": 3.8, "logon-noel": 3.8},
    ("lu", 8): {"vcausal": 0.9, "manetho": 1.6, "logon": 1.4,
                "vcausal-noel": 9.9, "manetho-noel": 12.2, "logon-noel": 15.0},
    ("lu", 16): {"vcausal": 10.6, "manetho": 19.1, "logon": 13.5,
                 "vcausal-noel": 26.0, "manetho-noel": 30.2, "logon-noel": 41.5},
    ("ft", 2): {"vcausal": 0.0, "manetho": 0.0, "logon": 0.0,
                "vcausal-noel": 0.0, "manetho-noel": 0.0, "logon-noel": 0.0},
    ("ft", 4): {"vcausal": 0.0, "manetho": 0.0, "logon": 0.0,
                "vcausal-noel": 0.0, "manetho-noel": 0.0, "logon-noel": 0.0},
    ("ft", 8): {"vcausal": 0.0, "manetho": 0.1, "logon": 0.0,
                "vcausal-noel": 0.1, "manetho-noel": 0.2, "logon-noel": 0.1},
    ("ft", 16): {"vcausal": 0.3, "manetho": 0.6, "logon": 0.4,
                 "vcausal-noel": 2.2, "manetho-noel": 5.2, "logon-noel": 1.8},
}

STACKS = ("vcausal", "manetho", "logon", "vcausal-noel", "manetho-noel", "logon-noel")

PROC_COUNTS = {"bt": (4, 9, 16), "cg": (2, 4, 8, 16), "lu": (2, 4, 8, 16), "ft": (2, 4, 8, 16)}


def run(fast: bool = True) -> dict:
    times: dict[tuple[str, int], dict[str, tuple[float, float]]] = {}
    pct: dict[tuple[str, int], dict[str, float]] = {}
    for bench, counts in PROC_COUNTS.items():
        for nprocs in counts:
            t_cell = {}
            p_cell = {}
            for stack in STACKS:
                result, _info = run_nas(bench, "A", nprocs, stack, fast=fast)
                probes = result.probes
                t_cell[stack] = (
                    probes.pb_send_time_s / nprocs,
                    probes.pb_recv_time_s / nprocs,
                )
                p_cell[stack] = pb_percent_of_exec(result)
            times[(bench, nprocs)] = t_cell
            pct[(bench, nprocs)] = p_cell
    return {"times_s": times, "pct": pct}


def format_report(results: dict) -> str:
    rows_a = []
    for (bench, nprocs), cell in results["times_s"].items():
        for stack in STACKS:
            send_s, recv_s = cell[stack]
            rows_a.append(
                [bench.upper(), nprocs, stack, f"{send_s:.4f}", f"{recv_s:.4f}"]
            )
    table_a = format_table(
        ["bench", "P", "stack", "send time (s)", "recv time (s)"],
        rows_a,
        title="Fig. 8(a) — per-process cumulative piggyback management time",
    )
    rows_b = []
    for (bench, nprocs), cell in results["pct"].items():
        paper = PAPER_PCT.get((bench, nprocs), {})
        rows_b.append(
            [bench.upper(), nprocs]
            + [f"{cell[s]:.1f} ({paper.get(s, float('nan')):.1f})" for s in STACKS]
        )
    table_b = format_table(
        ["bench", "P"] + list(STACKS),
        rows_b,
        title="Fig. 8(b) — piggyback cost in % of execution time  [model (paper)]",
    )
    return table_a + "\n\n" + table_b


def main(fast: bool = True) -> dict:
    results = run(fast=fast)
    print(format_report(results))
    return results


if __name__ == "__main__":
    main()
