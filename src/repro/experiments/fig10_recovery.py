"""Fig. 10 — time to recover the events to replay at restart.

"During the run of the benchmark, process of rank zero is killed at the
middle of its correct execution time and then restarted."  The reported
quantity is the *event collection* phase of recovery: with an Event Logger
one bulk request to one stable server; without, a request to every other
computing node and the union of their volatile causal information.

Shapes: EL collection is 10-20 % of the no-EL time and nearly flat in the
process count; no-EL grows steeply (more sources, more duplicated volume,
RX contention at the restarting node).
"""

from __future__ import annotations

from repro.experiments.common import FAST_ITERATIONS, run_nas
from repro.metrics.reporting import format_table
from repro.runtime.failure import OneShotFaults

#: paper Fig. 10 values (milliseconds)
PAPER_MS = {
    ("bt", "A"): {
        "procs": (4, 9, 16, 25),
        "with EL": (9.608, 16.592, 21.168, 32.364),
        "without EL": (32.475, 97.253, 183.531, 330.857),
    },
    ("cg", "B"): {
        "procs": (2, 4, 8, 16),
        "with EL": (78.681, 81.699, 93.266, 92.835),
        "without EL": (80.75, 118.579, 510.867, 832.226),
    },
    ("lu", "A"): {
        "procs": (2, 4, 8, 16),
        "with EL": (37.588, 76.813, 58.616, 42.59),
        "without EL": (42.537, 219.121, 360.208, 505.52),
    },
}

#: iteration counts used per benchmark (longer than the other figures so
#: that a realistic number of determinants has accumulated by the kill)
RECOVERY_ITERATIONS = {"bt": 80, "cg": 6, "lu": 8}
FAST_RECOVERY_ITERATIONS = {"bt": 24, "cg": 3, "lu": 4}


def _measure(bench: str, klass: str, nprocs: int, stack: str, iters: int) -> dict:
    # 1) fault-free run to find the correct execution time
    base, _ = run_nas(bench, klass, nprocs, stack, iterations=iters)
    # 2) kill rank 0 in the middle of it
    plan = OneShotFaults([(base.sim_time / 2.0, 0)])
    result, _ = run_nas(
        bench, klass, nprocs, stack, iterations=iters, fault_plan=plan
    )
    assert result.probes.recoveries, "no recovery episode recorded"
    rec = result.probes.recoveries[0]
    return {
        "collection_ms": rec.event_collection_s * 1e3,
        "events": rec.events_collected,
        "sources": rec.event_sources,
        "bytes": rec.collection_bytes,
        "faulty_time_s": result.sim_time,
        "fault_free_time_s": base.sim_time,
    }


def run(fast: bool = True) -> dict:
    iters_map = FAST_RECOVERY_ITERATIONS if fast else RECOVERY_ITERATIONS
    out: dict[tuple[str, str, int, str], dict] = {}
    for (bench, klass), spec in PAPER_MS.items():
        iters = iters_map[bench]
        for nprocs in spec["procs"]:
            if fast and nprocs > 16:
                continue
            for stack, label in (("vcausal", "with EL"), ("vcausal-noel", "without EL")):
                out[(bench, klass, nprocs, label)] = _measure(
                    bench, klass, nprocs, stack, iters
                )
    return {"recovery": out}


def format_report(results: dict) -> str:
    rows = []
    for (bench, klass, nprocs, label), cell in results["recovery"].items():
        spec = PAPER_MS[(bench, klass)]
        try:
            paper = spec[label][spec["procs"].index(nprocs)]
        except (ValueError, KeyError):
            paper = float("nan")
        rows.append(
            [
                f"{bench.upper()} {klass}",
                nprocs,
                label,
                f"{cell['collection_ms']:.3f}",
                f"{paper:.3f}",
                cell["events"],
                cell["sources"],
            ]
        )
    return format_table(
        ["bench", "P", "mode", "collect (ms, model)", "collect (ms, paper)",
         "events", "sources"],
        rows,
        title="Fig. 10 — time to recover the events to replay (rank 0 killed mid-run)",
    )


def main(fast: bool = True) -> dict:
    results = run(fast=fast)
    print(format_report(results))
    return results


if __name__ == "__main__":
    main()
