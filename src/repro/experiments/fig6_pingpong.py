"""Fig. 6 — NetPIPE ping-pong latency (6a) and bandwidth (6b).

Reproduces the latency comparison table over Ethernet 100 Mbit/s and the
bandwidth-vs-message-size curves for RAW TCP, MPICH-P4, MPICH-Vdummy and
the three causal protocols with and without Event Logger.
"""

from __future__ import annotations

from typing import Optional

from repro.metrics.reporting import format_series, format_table
from repro.runtime.config import FIGURE_STACKS
from repro.workloads.netpipe import (
    DEFAULT_SIZES,
    measure_bandwidth,
    measure_latency,
    raw_tcp_bandwidth,
)

#: paper Fig. 6(a): one-way latency in µs
PAPER_LATENCY_US = {
    "p4": 99.56,
    "vdummy": 134.84,
    "vcausal": 156.92,
    "manetho": 156.80,
    "logon": 155.83,
    "vcausal-noel": 165.17,
    "manetho-noel": 173.15,
    "logon-noel": 172.80,
}

#: bandwidth sweep sizes for fast mode (subset of the full NetPIPE sweep)
FAST_SIZES = (1, 64, 1 << 10, 8 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20)


def run(fast: bool = True) -> dict:
    reps = 120 if fast else 400
    latency_us = {}
    with_pb = {}
    for stack in FIGURE_STACKS:
        lat, result = measure_latency(stack, nbytes=1, reps=reps)
        latency_us[stack] = lat * 1e6
        probes = result.probes
        sent = probes.total("app_messages_sent")
        with_pb[stack] = probes.total("messages_with_piggyback") / max(sent, 1)

    sizes = FAST_SIZES if fast else DEFAULT_SIZES
    bw_reps = 4 if fast else 8
    bandwidth = {"raw-tcp": raw_tcp_bandwidth(sizes)}
    for stack in FIGURE_STACKS:
        bandwidth[stack] = measure_bandwidth(stack, sizes=sizes, reps=bw_reps)
    return {
        "latency_us": latency_us,
        "messages_with_piggyback_frac": with_pb,
        "bandwidth_mbit": bandwidth,
        "sizes": sizes,
    }


def format_report(results: dict) -> str:
    rows = []
    for stack, model in results["latency_us"].items():
        paper = PAPER_LATENCY_US.get(stack)
        rows.append(
            [
                stack,
                f"{model:.2f}",
                f"{paper:.2f}" if paper else "-",
                f"{100 * results['messages_with_piggyback_frac'][stack]:.0f}%",
            ]
        )
    table_a = format_table(
        ["stack", "latency (µs, model)", "latency (µs, paper)", "msgs w/ piggyback"],
        rows,
        title="Fig. 6(a) — ping-pong latency over Ethernet 100 Mbit/s",
    )
    sizes = results["sizes"]
    series = {
        name: [f"{results['bandwidth_mbit'][name][s]:.1f}" for s in sizes]
        for name in results["bandwidth_mbit"]
    }
    table_b = format_series(
        "bytes",
        list(sizes),
        series,
        title="Fig. 6(b) — ping-pong bandwidth (Mbit/s) vs message size",
    )
    return table_a + "\n\n" + table_b


def main(fast: bool = True) -> dict:
    results = run(fast=fast)
    print(format_report(results))
    return results


if __name__ == "__main__":
    main()
