"""Shared helpers for the experiment modules."""

from __future__ import annotations

from typing import Optional

from repro.runtime.cluster import Cluster, RunResult
from repro.runtime.config import ClusterConfig
from repro.runtime.failure import FaultPlan
from repro.workloads.nas import make_app
from repro.workloads.nas.common import NasInfo

#: truncated outer-iteration counts used in fast mode (rates/ratios are
#: stationary after a few iterations; see workloads.nas.common docstring)
FAST_ITERATIONS = {
    "bt": 5,
    "sp": 5,
    "cg": 3,
    "lu": 3,
    "mg": 3,
    "ft": 6,
}

#: larger counts for --full mode (still truncated for LU/SP; full elsewhere)
FULL_ITERATIONS = {
    "bt": 30,
    "sp": 30,
    "cg": 10,
    "lu": 10,
    "mg": 4,
    "ft": 6,
}


def run_nas(
    bench: str,
    klass: str,
    nprocs: int,
    stack: str,
    iterations: Optional[int] = None,
    fast: bool = True,
    config: Optional[ClusterConfig] = None,
    checkpoint_policy: str = "none",
    checkpoint_interval_s: Optional[float] = None,
    fault_plan: Optional[FaultPlan] = None,
    seed: int = 0,
    app_kwargs: Optional[dict] = None,
) -> tuple[RunResult, NasInfo]:
    """Run one NAS skeleton configuration to completion.

    ``app_kwargs`` is forwarded to the benchmark builder (e.g. CG's
    ``inner`` truncation).
    """
    if bench not in FAST_ITERATIONS:
        raise ValueError(f"unknown NAS benchmark {bench!r}")
    if iterations is None:
        iterations = (FAST_ITERATIONS if fast else FULL_ITERATIONS)[bench]
    app, info = make_app(
        bench, klass, nprocs, iterations=iterations, **(app_kwargs or {})
    )
    cluster = Cluster(
        nprocs=nprocs,
        app_factory=app,
        stack=stack,
        config=config,
        seed=seed,
        checkpoint_policy=checkpoint_policy,
        checkpoint_interval_s=checkpoint_interval_s,
        fault_plan=fault_plan,
    )
    result = cluster.run()
    if not result.finished:
        raise RuntimeError(
            f"{bench} {klass} P={nprocs} stack={stack} did not complete"
        )
    return result, info


def pb_percent_of_exec(result: RunResult) -> float:
    """Piggyback management time in percent of execution time (per process,
    the Fig. 8(b) metric)."""
    if result.sim_time <= 0:
        return 0.0
    per_proc = result.probes.pb_total_time_s / result.nprocs
    return 100.0 * per_proc / result.sim_time
