"""Ablation — distributed Event Logger (paper §VI, implemented).

The paper's conclusion proposes distributing the event log over several
Event Loggers and sketches the design space: static node-to-EL assignment,
with the loggers exchanging their arrays of logical clocks by multicast
(EL↔EL) or broadcast (EL→nodes).  This ablation quantifies that proposal
on the workload that saturates a single EL (NAS LU, 16 processes, Fig. 7):

* residual piggyback volume vs number of EL shards,
* application performance vs number of shards,
* multicast vs broadcast synchronization traffic and effect.
"""

from __future__ import annotations

from repro import Cluster, ClusterConfig
from repro.metrics.reporting import format_table
from repro.workloads.nas import make_app


def run_lu(count: int, strategy: str = "multicast", iterations: int = 2):
    config = ClusterConfig().with_overrides(
        el_count=count, el_sync_strategy=strategy
    )
    app, _ = make_app("lu", "A", 16, iterations=iterations)
    result = Cluster(
        nprocs=16, app_factory=app, stack="vcausal", config=config
    ).run()
    assert result.finished
    return result


def run(fast: bool = True) -> dict:
    iterations = 2 if fast else 6
    cells = {}
    for count in (1, 2, 4, 8):
        for strategy in ("multicast", "broadcast"):
            if count == 1 and strategy == "broadcast":
                continue  # no peers to sync with; identical to multicast
            result = run_lu(count, strategy, iterations)
            group = result.cluster.event_logger
            cells[(count, strategy)] = {
                "pb_percent": result.probes.piggyback_fraction,
                "mflops": result.mflops,
                "sync_bytes": group.sync_bytes,
                "peak_queue": result.probes.el_peak_queue,
            }
    return {"cells": cells, "iterations": iterations}


def format_report(results: dict) -> str:
    rows = []
    for (count, strategy), cell in sorted(results["cells"].items()):
        rows.append(
            [
                count,
                strategy,
                f"{cell['pb_percent']:.2f}",
                f"{cell['mflops']:.0f}",
                f"{cell['sync_bytes'] / 1024:.0f} KiB",
                cell["peak_queue"],
            ]
        )
    return format_table(
        ["EL shards", "sync", "piggyback %", "Mflop/s", "sync traffic", "peak queue"],
        rows,
        title=(
            "Ablation — distributed Event Logger on NAS LU A, 16 processes "
            "(paper §VI proposal)"
        ),
    )


def main(fast: bool = True) -> dict:
    results = run(fast=fast)
    print(format_report(results))
    return results


if __name__ == "__main__":
    main()
