"""Ablation — distributed Event Logger (paper §VI, implemented).

The paper's conclusion proposes distributing the event log over several
Event Loggers and sketches the design space: static node-to-EL assignment,
with the loggers exchanging their arrays of logical clocks by multicast
(EL↔EL) or broadcast (EL→nodes).  This ablation quantifies that proposal
on the workload that saturates a single EL (NAS LU, 16 processes, Fig. 7):

* residual piggyback volume vs number of EL shards,
* application performance vs number of shards,
* sync traffic and message counts across the four shard-sync topologies
  (``multicast``/``broadcast`` — the paper's proposals — plus ``tree``
  and ``gossip``, the scalable fixes; see
  :mod:`repro.core.distributed_el`), with gossip's staleness bound.
"""

from __future__ import annotations

from repro import Cluster, ClusterConfig
from repro.metrics.reporting import format_table
from repro.workloads.nas import make_app


def run_lu(count: int, strategy: str = "multicast", iterations: int = 2):
    config = ClusterConfig().with_overrides(
        el_count=count, el_sync_strategy=strategy
    )
    app, _ = make_app("lu", "A", 16, iterations=iterations)
    result = Cluster(
        nprocs=16, app_factory=app, stack="vcausal", config=config
    ).run()
    assert result.finished
    return result


#: strategies swept per shard count (broadcast adds the per-node pushes,
#: tree/gossip are the O(shards)-messages topologies)
STRATEGIES = ("multicast", "broadcast", "tree", "gossip")


def run(fast: bool = True) -> dict:
    iterations = 2 if fast else 6
    cells = {}
    for count in (1, 2, 4, 8):
        for strategy in STRATEGIES:
            if count == 1 and strategy != "multicast":
                continue  # no peers to sync with; all strategies identical
            result = run_lu(count, strategy, iterations)
            group = result.cluster.event_logger
            cells[(count, strategy)] = {
                "pb_percent": result.probes.piggyback_fraction,
                "mflops": result.mflops,
                "sync_bytes": group.sync_bytes,
                "sync_messages": group.sync_messages,
                "node_pushes": group.node_push_messages,
                "staleness_rounds": group.staleness_bound_rounds,
                "peak_queue": result.probes.el_peak_queue,
            }
    return {"cells": cells, "iterations": iterations}


def format_report(results: dict) -> str:
    rows = []
    for (count, strategy), cell in sorted(results["cells"].items()):
        rows.append(
            [
                count,
                strategy,
                f"{cell['pb_percent']:.2f}",
                f"{cell['mflops']:.0f}",
                cell["sync_messages"],
                cell["node_pushes"],
                f"{cell['sync_bytes'] / 1024:.0f} KiB",
                cell["staleness_rounds"],
                cell["peak_queue"],
            ]
        )
    # "sync traffic" covers shard-to-shard vectors plus (broadcast only)
    # the per-node pushes counted in the "node pushes" column
    return format_table(
        [
            "EL shards",
            "sync",
            "piggyback %",
            "Mflop/s",
            "sync msgs",
            "node pushes",
            "sync traffic",
            "staleness",
            "peak queue",
        ],
        rows,
        title=(
            "Ablation — distributed Event Logger on NAS LU A, 16 processes "
            "(paper §VI proposal + tree/gossip topologies)"
        ),
    )


def main(fast: bool = True) -> dict:
    results = run(fast=fast)
    print(format_report(results))
    return results


if __name__ == "__main__":
    main()
