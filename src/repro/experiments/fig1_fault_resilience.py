"""Fig. 1 — fault resilience: slowdown vs fault frequency on NAS BT, 25 nodes.

Compares coordinated checkpointing (Chandy-Lamport), pessimistic message
logging and causal message logging under increasing fault frequency.  The
y-axis is the execution time with faults relative to the fault-free
execution time (percent).  The paper's headline: coordinated checkpointing
hits a vertical slope (no progress) at high fault frequency because every
fault rolls **all** processes back to the last coordinated line, while
message logging restarts only the crashed process.

Time compression
----------------
The paper's runs last tens of minutes so that even 1/6 fault·min⁻¹ yields
several faults.  Simulating that literally is wasteful: what determines the
curve is the *dimensionless* ratio between the fault period, the checkpoint
interval, the per-fault recovery cost and the total runtime.  We therefore
compress time 6×: the skeleton runs ≈1 minute fault-free, and the paper's
frequency axis f (per minute) is mapped to 6·f faults per simulated
minute.  Reported frequencies use the paper's labels.
"""

from __future__ import annotations

from repro.experiments.common import run_nas
from repro.metrics.reporting import format_table
from repro.runtime.failure import PeriodicFaults

#: paper x-axis labels (faults per minute) → compressed frequency used
TIME_COMPRESSION = 6.0
FREQUENCIES = (0.0, 1 / 6, 1 / 3, 1 / 2, 2 / 3)
FAST_FREQUENCIES = (0.0, 1 / 3, 2 / 3)

#: coordinated waves are synchronized 25-image bursts through the stable
#: storage link, so they cannot run nearly as often as round-robin single
#: images — the asymmetry at the heart of Fig. 1.
PROTOCOLS = {
    "coordinated": dict(
        stack="coordinated", checkpoint_policy="coordinated", interval_s=30.0
    ),
    "pessimistic": dict(
        stack="pessimistic", checkpoint_policy="round-robin", interval_s=0.6
    ),
    "causal": dict(
        stack="vcausal", checkpoint_policy="round-robin", interval_s=0.6
    ),
}

NPROCS = 25
BT_ITERATIONS = 500        # ≈ 55 s fault-free
FAST_BT_ITERATIONS = 300


def run(fast: bool = True) -> dict:
    freqs = FAST_FREQUENCIES if fast else FREQUENCIES
    iters = FAST_BT_ITERATIONS if fast else BT_ITERATIONS
    out: dict[str, dict[float, float]] = {}
    base_times: dict[str, float] = {}
    faults_seen: dict[str, dict[float, int]] = {}
    for name, cfg in PROTOCOLS.items():
        base, _ = run_nas(
            "bt", "A", NPROCS, cfg["stack"],
            iterations=iters,
            checkpoint_policy=cfg["checkpoint_policy"],
            checkpoint_interval_s=cfg["interval_s"],
        )
        base_times[name] = base.sim_time
        series = {}
        nfaults = {}
        for freq in freqs:
            if freq == 0.0:
                series[freq] = 100.0
                nfaults[freq] = 0
                continue
            plan = PeriodicFaults(
                per_minute=freq * TIME_COMPRESSION,
                start_s=8.0,
                victim="round-robin",
            )
            result, _ = run_nas(
                "bt", "A", NPROCS, cfg["stack"],
                iterations=iters,
                checkpoint_policy=cfg["checkpoint_policy"],
                checkpoint_interval_s=cfg["interval_s"],
                fault_plan=plan,
            )
            series[freq] = 100.0 * result.sim_time / base.sim_time
            nfaults[freq] = result.cluster.dispatcher.faults_seen
        out[name] = series
        faults_seen[name] = nfaults
    return {
        "slowdown_pct": out,
        "fault_free_s": base_times,
        "frequencies": freqs,
        "faults_seen": faults_seen,
    }


def format_report(results: dict) -> str:
    freqs = results["frequencies"]
    rows = []
    for name, series in results["slowdown_pct"].items():
        rows.append(
            [name, f"{results['fault_free_s'][name]:.1f}s"]
            + [
                f"{series[f]:.0f}% ({results['faults_seen'][name][f]}f)"
                for f in freqs
            ]
        )
    return format_table(
        ["protocol", "fault-free"] + [f"{f:.3g}/min" for f in freqs],
        rows,
        title=(
            "Fig. 1 — execution time with faults in % of fault-free time "
            "(NAS BT A, 25 processes, 6× time compression; paper shape: "
            "coordinated ≫ pessimistic ≥ causal)"
        ),
    )


def shape_checks(results: dict) -> list[str]:
    """The defining orderings of Fig. 1 at the highest tested frequency."""
    freqs = results["frequencies"]
    top = max(freqs)
    s = results["slowdown_pct"]
    violations = []
    if not s["coordinated"][top] > s["causal"][top]:
        violations.append("coordinated did not degrade more than causal")
    if not s["coordinated"][top] > s["pessimistic"][top]:
        violations.append("coordinated did not degrade more than pessimistic")
    return violations


def main(fast: bool = True) -> dict:
    results = run(fast=fast)
    print(format_report(results))
    bad = shape_checks(results)
    if bad:
        print("\nshape violations:")
        for b in bad:
            print("  -", b)
    else:
        print("\nall Fig. 1 shape checks passed")
    return results


if __name__ == "__main__":
    main()
