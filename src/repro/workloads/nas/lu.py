"""LU skeleton: SSOR solver with pipelined wavefront sweeps.

Communication shape (NPB LU): the x-y plane is split on a 2D grid; every
SSOR iteration runs a *lower* sweep (each of the ``nz`` k-planes receives
thin border strips from north/west, computes, forwards to south/east) and
a mirrored *upper* sweep — a software pipeline generating "a very large
number of messages" (paper §V-D.2): 2 × nz × 2 messages per rank per
iteration, each only a few hundred bytes wide, with very little time
between a reception and the next emission.  This is the benchmark that
saturates the Event Logger at 16 processes (Fig. 7).
"""

from __future__ import annotations

from typing import Optional

from repro.mpi.api import MpiContext
from repro.workloads.nas.common import CLASS_TABLE, NasInfo, pow2_grid, register


def _fold(acc: int, value: int) -> int:
    return (acc * 37 + value) % 1000003


@register("lu")
def build_lu(klass: str, nprocs: int, iterations: Optional[int] = None):
    problem = CLASS_TABLE["lu"][klass]
    nprows, npcols = pow2_grid(nprocs)
    iters = iterations if iterations is not None else problem.iterations
    n = problem.n
    nz = n
    flops_rank_iter = problem.flops_per_outer / nprocs
    info = NasInfo(
        bench="lu",
        klass=klass,
        nprocs=nprocs,
        iterations_used=iters,
        iterations_full=problem.iterations,
        flops_per_rank_total=flops_rank_iter * iters,
        problem=problem,
    )
    ew_bytes = max(5 * 8 * (n // npcols), 64)   # east-west strip per k-plane
    ns_bytes = max(5 * 8 * (n // nprows), 64)   # north-south strip

    def app(ctx: MpiContext):
        s = ctx.state
        s.setdefault("it", 0)
        s.setdefault("acc", 0)
        ctx.state_nbytes = max(5 * 8 * n * n * nz // max(nprocs, 1), 4096)
        row, col = divmod(ctx.rank, npcols)
        north = ctx.rank - npcols if row > 0 else None
        south = ctx.rank + npcols if row < nprows - 1 else None
        west = ctx.rank - 1 if col > 0 else None
        east = ctx.rank + 1 if col < npcols - 1 else None
        flops_per_k = flops_rank_iter / (2 * nz)

        while s["it"] < iters:
            yield from ctx.checkpoint_poll()
            it = s["it"]
            # lower sweep: wavefront from the north-west corner
            for k in range(nz):
                if north is not None:
                    msg = yield from ctx.recv(north, tag=60)
                    s["acc"] = _fold(s["acc"], msg.payload)
                if west is not None:
                    msg = yield from ctx.recv(west, tag=61)
                    s["acc"] = _fold(s["acc"], msg.payload)
                yield from ctx.compute_flops(flops_per_k)
                pay = (ctx.rank * 7919 + it * 131 + k) % 999983
                if south is not None:
                    yield from ctx.send(south, ns_bytes, tag=60, payload=pay)
                if east is not None:
                    yield from ctx.send(east, ew_bytes, tag=61, payload=pay)
            # upper sweep: wavefront from the south-east corner
            for k in range(nz):
                if south is not None:
                    msg = yield from ctx.recv(south, tag=62)
                    s["acc"] = _fold(s["acc"], msg.payload)
                if east is not None:
                    msg = yield from ctx.recv(east, tag=63)
                    s["acc"] = _fold(s["acc"], msg.payload)
                yield from ctx.compute_flops(flops_per_k)
                pay = (ctx.rank * 104729 + it * 131 + k) % 999983
                if north is not None:
                    yield from ctx.send(north, ns_bytes, tag=62, payload=pay)
                if west is not None:
                    yield from ctx.send(west, ew_bytes, tag=63, payload=pay)
            # residual norm once per iteration
            v = yield from ctx.allreduce(8, s["acc"] % 997)
            s["acc"] = _fold(s["acc"], v)
            s["it"] += 1
        total = yield from ctx.allreduce(8, s["acc"])
        return total

    return app, info
