"""NAS Parallel Benchmark communication skeletons.

The paper evaluates on NPB 2 kernels/applications (BT, SP, LU, CG, MG,
FT), classes A and B, 2-25 processes.  These skeletons reproduce each
benchmark's *communication pattern* — who sends what to whom, how big, how
often, overlapped with how much computation — which is what every metric
of the paper depends on (piggyback volume/cost, bandwidth occupancy,
Megaflops).  The numerical kernels themselves are replaced by calibrated
``compute_flops`` charges using the published NPB operation counts; see
DESIGN.md §2 for the substitution argument.

Use :func:`make_app` / :func:`problem_info` as the entry points::

    from repro.workloads.nas import make_app
    app, info = make_app("cg", "A", nprocs=16, iterations=10)
    result = Cluster(nprocs=16, app_factory=app, stack="vcausal").run()
    mflops = info.scale_mflops(result)
"""

from repro.workloads.nas.common import (
    NAS_BENCHMARKS,
    NasInfo,
    allowed_procs,
    make_app,
    problem_info,
)

__all__ = [
    "NAS_BENCHMARKS",
    "NasInfo",
    "allowed_procs",
    "make_app",
    "problem_info",
]
