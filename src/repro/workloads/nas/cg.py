"""CG skeleton: conjugate gradient with irregular sparse matvec.

Communication shape (NPB CG): processes form an ``nprows × npcols``
power-of-two grid.  Every inner CG iteration performs the sparse
matrix-vector product's row-wise recursive-halving sum (vector segments
shrinking by half each step) followed by two scalar dot-product reductions
down the column — "heavy point-to-point latency driven communications"
(paper §V-A): many small/medium messages, little computation per message.
"""

from __future__ import annotations

from typing import Optional

from repro.mpi.api import MpiContext
from repro.workloads.nas.common import CLASS_TABLE, NasInfo, pow2_grid, register


def _fold(acc: int, value: int) -> int:
    return (acc * 33 + value) % 1000003


@register("cg")
def build_cg(
    klass: str,
    nprocs: int,
    iterations: Optional[int] = None,
    inner: Optional[int] = None,
):
    problem = CLASS_TABLE["cg"][klass]
    nprows, npcols = pow2_grid(nprocs)
    iters = iterations if iterations is not None else problem.iterations
    n = problem.n
    # the inner CG loop may be truncated too (rates are stationary after a
    # few inner iterations — same argument as the outer truncation); used
    # by the quick 256-rank benchmark scenario to stay in CI budget
    inner = inner if inner is not None else problem.inner
    # per-inner-iteration work is a property of the problem, not of any
    # truncation, so divide by the official inner count
    flops_rank_inner = problem.flops_per_outer / problem.inner / nprocs
    info = NasInfo(
        bench="cg",
        klass=klass,
        nprocs=nprocs,
        iterations_used=iters,
        iterations_full=problem.iterations,
        flops_per_rank_total=flops_rank_inner * inner * iters,
        problem=problem,
    )
    l2npcols = npcols.bit_length() - 1
    l2nprows = nprows.bit_length() - 1

    def app(ctx: MpiContext):
        s = ctx.state
        s.setdefault("it", 0)
        s.setdefault("acc", 0)
        ctx.state_nbytes = max(16 * n // max(nprocs, 1) * 8, 4096)
        row, col = divmod(ctx.rank, npcols)
        # the transpose partner (row/col swapped) receives the matvec
        # result w → q; it is a cross-grid shortcut only present on square
        # process grids (NPB uses an auxiliary scheme otherwise)
        transpose = col * npcols + row if nprows == npcols and nprocs > 1 else None
        while s["it"] < iters:
            yield from ctx.checkpoint_poll()
            it = s["it"]
            for j in range(inner):
                # matvec: recursive-halving sum across the row
                for step in range(l2npcols):
                    partner = row * npcols + (col ^ (1 << step))
                    size = max(8 * n // (nprows << step), 64)
                    msg = yield from ctx.sendrecv(
                        partner, size, partner, tag=30 + step,
                        payload=(ctx.rank * 7919 + it * 131 + j) % 999983,
                    )
                    s["acc"] = _fold(s["acc"], msg.payload)
                # exchange the result with the transpose partner
                if transpose is not None and transpose != ctx.rank:
                    msg = yield from ctx.sendrecv(
                        transpose, max(8 * n // nprows, 64), transpose, tag=40,
                        payload=(ctx.rank * 104729 + it * 131 + j) % 999983,
                    )
                    s["acc"] = _fold(s["acc"], msg.payload)
                # two dot products: scalar reduction down the column
                for _dot in range(2):
                    for step in range(l2nprows):
                        partner = (row ^ (1 << step)) * npcols + col
                        msg = yield from ctx.sendrecv(
                            partner, 8, partner, tag=50 + step,
                            payload=(ctx.rank + it + j + _dot) % 999983,
                        )
                        s["acc"] = _fold(s["acc"], msg.payload)
                yield from ctx.compute_flops(flops_rank_inner)
            s["it"] += 1
        total = yield from ctx.allreduce(8, s["acc"])
        return total

    return app, info
