"""MG skeleton: multigrid V-cycles.

Communication shape (NPB MG): every V-cycle walks the grid hierarchy down
to the coarsest level and back up; at each level the rank exchanges halo
strips with its 2D-grid neighbours, with message sizes shrinking 4× per
level on the way down — a mix of large halos (fine levels) and tiny,
latency-bound messages (coarse levels), plus one norm reduction per cycle.
"""

from __future__ import annotations

from typing import Optional

from repro.mpi.api import MpiContext
from repro.workloads.nas.common import CLASS_TABLE, NasInfo, pow2_grid, register


def _fold(acc: int, value: int) -> int:
    return (acc * 43 + value) % 1000003


@register("mg")
def build_mg(klass: str, nprocs: int, iterations: Optional[int] = None):
    problem = CLASS_TABLE["mg"][klass]
    nprows, npcols = pow2_grid(nprocs)
    iters = iterations if iterations is not None else problem.iterations
    n = problem.n
    levels = max(n.bit_length() - 3, 2)   # down to a 4³-ish coarse grid
    flops_rank_iter = problem.flops_per_outer / nprocs
    # compute is dominated by the finest level: weight level l by 8^-l
    weights = [8.0 ** (-l) for l in range(levels)]
    wsum = sum(weights) * 2  # down + up
    info = NasInfo(
        bench="mg",
        klass=klass,
        nprocs=nprocs,
        iterations_used=iters,
        iterations_full=problem.iterations,
        flops_per_rank_total=flops_rank_iter * iters,
        problem=problem,
    )

    def halo_bytes(level: int) -> int:
        nl = max(n >> level, 4)
        return max(8 * nl * nl // max(nprocs, 1), 32)

    def app(ctx: MpiContext):
        s = ctx.state
        s.setdefault("it", 0)
        s.setdefault("acc", 0)
        ctx.state_nbytes = max(8 * n**3 // max(nprocs, 1), 4096)
        row, col = divmod(ctx.rank, npcols)
        east = row * npcols + (col + 1) % npcols
        west = row * npcols + (col - 1) % npcols
        south = ((row + 1) % nprows) * npcols + col
        north = ((row - 1) % nprows) * npcols + col

        def exchange(level: int, it: int, phase: int):
            size = halo_bytes(level)
            pay = (ctx.rank * 7919 + it * 131 + level * 7 + phase) % 999983
            if nprocs > 1:
                msg = yield from ctx.sendrecv(east, size, west, tag=70 + phase, payload=pay)
                s["acc"] = _fold(s["acc"], msg.payload)
                msg = yield from ctx.sendrecv(south, size, north, tag=80 + phase, payload=pay)
                s["acc"] = _fold(s["acc"], msg.payload)

        while s["it"] < iters:
            yield from ctx.checkpoint_poll()
            it = s["it"]
            for level in range(levels):            # restriction path
                yield from ctx.compute_flops(flops_rank_iter * weights[level] / wsum)
                yield from exchange(level, it, 0)
            for level in reversed(range(levels)):  # prolongation path
                yield from exchange(level, it, 1)
                yield from ctx.compute_flops(flops_rank_iter * weights[level] / wsum)
            norm = yield from ctx.allreduce(8, s["acc"] % 997)
            s["acc"] = _fold(s["acc"], norm)
            s["it"] += 1
        total = yield from ctx.allreduce(8, s["acc"])
        return total

    return app, info
