"""BT skeleton: block-tridiagonal ADI solver.

Communication shape (NPB BT): a √P×√P logical grid; every iteration runs
three ADI sweeps (x, y, z) and each sweep exchanges block faces with the
two neighbours of its dimension, with the large face messages overlapped
by substantial computation — "large point-to-point messages, and
communications overlapped by computation" (paper §V-A).
"""

from __future__ import annotations

from typing import Optional

from repro.mpi.api import MpiContext
from repro.workloads.nas.common import (
    CLASS_TABLE,
    NasInfo,
    register,
    square_side,
)


def _fold(acc: int, value: int) -> int:
    return (acc * 31 + value) % 1000003


def _payload(rank: int, it: int, sweep: int) -> int:
    return (rank * 7919 + it * 131 + sweep * 17) % 999983


def _bt_like(bench: str, face_vars: int):
    def build(klass: str, nprocs: int, iterations: Optional[int] = None):
        problem = CLASS_TABLE[bench][klass]
        q = square_side(nprocs)
        iters = iterations if iterations is not None else problem.iterations
        n = problem.n
        face_bytes = max(face_vars * 8 * n * n // max(nprocs, 1), 256)
        flops_rank_iter = problem.flops_per_outer / nprocs
        info = NasInfo(
            bench=bench,
            klass=klass,
            nprocs=nprocs,
            iterations_used=iters,
            iterations_full=problem.iterations,
            flops_per_rank_total=flops_rank_iter * iters,
            problem=problem,
        )

        def app(ctx: MpiContext):
            s = ctx.state
            s.setdefault("it", 0)
            s.setdefault("acc", 0)
            ctx.state_nbytes = max(5 * 8 * n**3 // max(nprocs, 1), 4096)
            row, col = divmod(ctx.rank, q)
            # sweep partners: x → row ring, y → column ring, z → diagonal
            partners = [
                (row * q + (col + 1) % q, row * q + (col - 1) % q),
                (((row + 1) % q) * q + col, ((row - 1) % q) * q + col),
                (
                    ((row + 1) % q) * q + (col + 1) % q,
                    ((row - 1) % q) * q + (col - 1) % q,
                ),
            ]
            while s["it"] < iters:
                yield from ctx.checkpoint_poll()
                it = s["it"]
                for sweep, (fwd, bwd) in enumerate(partners):
                    yield from ctx.compute_flops(flops_rank_iter / 6.0)
                    if nprocs > 1:
                        msg = yield from ctx.sendrecv(
                            fwd, face_bytes, bwd, tag=10 + sweep,
                            payload=_payload(ctx.rank, it, sweep),
                        )
                        s["acc"] = _fold(s["acc"], msg.payload)
                        msg = yield from ctx.sendrecv(
                            bwd, face_bytes, fwd, tag=20 + sweep,
                            payload=_payload(ctx.rank, it, sweep + 3),
                        )
                        s["acc"] = _fold(s["acc"], msg.payload)
                    yield from ctx.compute_flops(flops_rank_iter / 6.0)
                s["it"] += 1
            total = yield from ctx.allreduce(8, s["acc"])
            return total

        return app, info

    return build


#: BT faces carry 5 solution variables per cell
register("bt")(_bt_like("bt", face_vars=5))
