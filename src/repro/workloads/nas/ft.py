"""FT skeleton: 3D FFT with global transposes.

Communication shape (NPB FT): each iteration computes local 1D FFTs, then
performs the distributed transpose — an **all-to-all** where every pair of
processes exchanges ``total_grid_bytes / P²`` — and finishes with a small
checksum reduction.  "FT benchmark presents all-to-all communication
pattern" (paper §V-A); this is the pattern on which Manetho's per-receive
graph re-linking hurts most (Fig. 8, FT panel).
"""

from __future__ import annotations

from typing import Optional

from repro.mpi.api import MpiContext
from repro.workloads.nas.common import CLASS_TABLE, NasInfo, register


def _fold(acc: int, value: int) -> int:
    return (acc * 41 + value) % 1000003


@register("ft")
def build_ft(klass: str, nprocs: int, iterations: Optional[int] = None):
    problem = CLASS_TABLE["ft"][klass]
    if nprocs & (nprocs - 1):
        raise ValueError("FT needs a power-of-two process count")
    iters = iterations if iterations is not None else problem.iterations
    n = problem.n
    # grid: n × n × n/2 complex points, 16 bytes each
    total_bytes = n * n * (n // 2) * 16
    pair_bytes = max(total_bytes // (nprocs * nprocs), 1024)
    flops_rank_iter = problem.flops_per_outer / nprocs
    info = NasInfo(
        bench="ft",
        klass=klass,
        nprocs=nprocs,
        iterations_used=iters,
        iterations_full=problem.iterations,
        flops_per_rank_total=flops_rank_iter * iters,
        problem=problem,
    )

    def app(ctx: MpiContext):
        s = ctx.state
        s.setdefault("it", 0)
        s.setdefault("acc", 0)
        ctx.state_nbytes = max(total_bytes // max(nprocs, 1), 4096)
        while s["it"] < iters:
            yield from ctx.checkpoint_poll()
            yield from ctx.compute_flops(flops_rank_iter / 2.0)
            if nprocs > 1:
                yield from ctx.alltoall(pair_bytes)
            yield from ctx.compute_flops(flops_rank_iter / 2.0)
            checksum = yield from ctx.allreduce(
                16, (ctx.rank * 7919 + s["it"]) % 999983
            )
            s["acc"] = _fold(s["acc"], checksum)
            s["it"] += 1
        total = yield from ctx.allreduce(8, s["acc"])
        return total

    return app, info
