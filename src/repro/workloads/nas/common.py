"""Shared NAS-skeleton machinery: class tables, grids, scaling.

Operation counts are the published NPB 2 totals (NAS-95-020 and the NPB
result tables); they set the ``compute_flops`` charges so that simulated
Megaflop/s land in the paper's range for the calibrated node speed.

Iteration scaling: full NPB iteration counts (e.g. LU: 250) would make a
single LU/16 run millions of simulated messages.  Because every reported
metric is either a *rate* (Mflop/s) or a *ratio* (piggyback %, overhead %)
that is stationary after the first few iterations, experiments run a
truncated iteration count and report rates from the truncated run.
:class:`NasInfo` carries the scaling bookkeeping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

from repro.mpi.api import MpiContext
from repro.runtime.cluster import RunResult


@dataclass(frozen=True)
class NasClass:
    """One (benchmark, class) problem definition."""

    n: int                 # problem size (per-dimension, or vector length)
    iterations: int        # official outer-iteration count
    total_flops: float     # official operation count for the full run
    inner: int = 1         # inner iterations per outer (CG: 25)

    @property
    def flops_per_outer(self) -> float:
        return self.total_flops / self.iterations


#: Official NPB2 problem classes used by the paper (A and B, plus S for tests).
CLASS_TABLE: dict[str, dict[str, NasClass]] = {
    "bt": {
        "S": NasClass(n=12, iterations=60, total_flops=0.28e9),
        "A": NasClass(n=64, iterations=200, total_flops=168.3e9),
        "B": NasClass(n=102, iterations=200, total_flops=721.5e9),
    },
    "sp": {
        "S": NasClass(n=12, iterations=100, total_flops=0.25e9),
        "A": NasClass(n=64, iterations=400, total_flops=102.0e9),
        "B": NasClass(n=102, iterations=400, total_flops=447.1e9),
    },
    "lu": {
        "S": NasClass(n=12, iterations=50, total_flops=0.19e9),
        "A": NasClass(n=64, iterations=250, total_flops=119.28e9),
        "B": NasClass(n=102, iterations=250, total_flops=554.9e9),
    },
    "cg": {
        "S": NasClass(n=1400, iterations=15, total_flops=0.066e9, inner=25),
        "A": NasClass(n=14000, iterations=15, total_flops=1.508e9, inner=25),
        "B": NasClass(n=75000, iterations=75, total_flops=54.89e9, inner=25),
    },
    "mg": {
        "S": NasClass(n=32, iterations=4, total_flops=0.01e9),
        "A": NasClass(n=256, iterations=4, total_flops=3.625e9),
        "B": NasClass(n=256, iterations=20, total_flops=18.16e9),
    },
    "ft": {
        "S": NasClass(n=64, iterations=6, total_flops=0.18e9),
        "A": NasClass(n=256, iterations=6, total_flops=7.16e9),
        "B": NasClass(n=512, iterations=20, total_flops=92.75e9),
    },
}


def allowed_procs(bench: str) -> tuple[int, ...]:
    """Process counts each benchmark supports (paper's x axes)."""
    if bench in ("bt", "sp"):
        return (1, 4, 9, 16, 25)      # square counts
    return (1, 2, 4, 8, 16, 32)       # powers of two


def square_side(nprocs: int) -> int:
    q = int(round(math.sqrt(nprocs)))
    if q * q != nprocs:
        raise ValueError(f"BT/SP need a square process count, got {nprocs}")
    return q


def pow2_grid(nprocs: int) -> tuple[int, int]:
    """NPB-style 2D factorization: cols = 2^ceil(k/2), rows = P/cols."""
    if nprocs & (nprocs - 1):
        raise ValueError(f"need a power-of-two process count, got {nprocs}")
    k = nprocs.bit_length() - 1
    cols = 1 << ((k + 1) // 2)
    rows = nprocs // cols
    return rows, cols


@dataclass
class NasInfo:
    """Metadata of one constructed skeleton run."""

    bench: str
    klass: str
    nprocs: int
    iterations_used: int
    iterations_full: int
    flops_per_rank_total: float   # flops charged in the truncated run, 1 rank
    problem: NasClass

    @property
    def truncation(self) -> float:
        """Fraction of the full run executed."""
        return self.iterations_used / self.iterations_full

    def scale_mflops(self, result: RunResult) -> float:
        """Aggregate Mflop/s of the (possibly truncated) run — a rate, so
        no extrapolation is needed beyond warm-up noise."""
        return result.mflops


AppBuilder = Callable[..., tuple[Callable[[MpiContext], object], NasInfo]]

#: filled by the per-benchmark modules at import time
NAS_BENCHMARKS: dict[str, AppBuilder] = {}


def register(name: str):
    def deco(fn: AppBuilder) -> AppBuilder:
        NAS_BENCHMARKS[name] = fn
        return fn

    return deco


def problem_info(bench: str, klass: str) -> NasClass:
    return CLASS_TABLE[bench][klass]


def make_app(
    bench: str,
    klass: str,
    nprocs: int,
    iterations: Optional[int] = None,
    **overrides,
):
    """Build (app_factory, NasInfo) for a benchmark skeleton.

    ``iterations`` truncates the official outer-iteration count (see module
    docstring); None runs the full count.  Extra keyword overrides are
    forwarded to the benchmark builder (e.g. CG's ``inner`` truncation used
    by the quick 256-rank benchmark scenario).
    """
    # import side registers the builders
    from repro.workloads.nas import bt, cg, ft, lu, mg, sp  # noqa: F401

    if bench not in NAS_BENCHMARKS:
        raise ValueError(f"unknown NAS benchmark {bench!r}")
    return NAS_BENCHMARKS[bench](
        klass=klass, nprocs=nprocs, iterations=iterations, **overrides
    )
