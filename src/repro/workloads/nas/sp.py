"""SP skeleton: scalar-pentadiagonal ADI solver.

Same √P×√P multipartition shape as BT but with thinner faces (scalar
systems instead of 5×5 blocks) and twice the iteration count — a higher
communication/computation ratio than BT at equal class.
"""

from __future__ import annotations

from repro.workloads.nas.bt import _bt_like
from repro.workloads.nas.common import register

#: SP faces carry ~3 scalar systems' worth of data per cell
register("sp")(_bt_like("sp", face_vars=3))
