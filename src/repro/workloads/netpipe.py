"""NetPIPE-style ping-pong: latency and bandwidth measurement (Fig. 6).

NetPIPE measures a ping-pong for several message sizes "and small
perturbations around these sizes".  The latency reported is half the
round-trip time of 1-byte messages; the bandwidth curve plots payload
throughput against message size.

The paper's Fig. 6 configuration: 4999 one-way messages for the latency
test, a size sweep from 1 byte to 8 MB for bandwidth.
"""

from __future__ import annotations

from typing import Optional

from repro.mpi.api import MpiContext
from repro.runtime.cluster import Cluster, RunResult
from repro.runtime.config import ClusterConfig

#: message sizes of the Fig. 6(b) sweep
DEFAULT_SIZES: tuple[int, ...] = (
    1, 4, 8, 16, 32, 64, 128, 256, 512,
    1 << 10, 2 << 10, 4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10,
    128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20,
)


def pingpong_app(nbytes: int, reps: int, warmup: int = 2):
    """Build a 2-rank ping-pong application.

    Rank 0 returns the measured one-way latency in seconds (elapsed time of
    the measured round trips divided by 2 × reps).
    """

    def app(ctx: MpiContext):
        s = ctx.state
        s.setdefault("it", 0)
        total = reps + warmup
        while s["it"] < total:
            yield from ctx.checkpoint_poll()
            if s["it"] == warmup and ctx.rank == 0:
                s["t0"] = ctx.sim.now
            if ctx.rank == 0:
                yield from ctx.send(1, nbytes, tag=1)
                yield from ctx.recv(1, tag=2)
            else:
                yield from ctx.recv(0, tag=1)
                yield from ctx.send(0, nbytes, tag=2)
            s["it"] += 1
        if ctx.rank == 0:
            elapsed = ctx.sim.now - s["t0"]
            return elapsed / (2.0 * reps)
        return None

    return app


def measure_latency(
    stack: str,
    nbytes: int = 1,
    reps: int = 200,
    config: Optional[ClusterConfig] = None,
) -> tuple[float, RunResult]:
    """One-way latency in seconds for ``stack`` (Fig. 6(a) cell)."""
    cluster = Cluster(
        nprocs=2,
        app_factory=pingpong_app(nbytes, reps),
        stack=stack,
        config=config,
    )
    result = cluster.run()
    return result.results[0], result


def measure_bandwidth(
    stack: str,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    reps: int = 6,
    config: Optional[ClusterConfig] = None,
    perturbations: int = 0,
) -> dict[int, float]:
    """Bandwidth in Mbit/s per message size (Fig. 6(b) series).

    Few repetitions suffice: the simulation is deterministic.  NetPIPE
    additionally measures "small perturbations around these sizes";
    passing ``perturbations=d`` averages over sizes {s-d, s, s+d} like the
    original tool (useful to smooth protocol-threshold edges).
    """
    out: dict[int, float] = {}
    for nbytes in sizes:
        probe_sizes = [nbytes]
        if perturbations > 0:
            probe_sizes = [max(1, nbytes - perturbations), nbytes, nbytes + perturbations]
        rates = []
        for n in probe_sizes:
            latency, _ = measure_latency(stack, nbytes=n, reps=reps, config=config)
            rates.append(n * 8.0 / latency / 1e6)
        out[nbytes] = sum(rates) / len(rates)
    return out


def raw_tcp_bandwidth(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    config: Optional[ClusterConfig] = None,
) -> dict[int, float]:
    """The RAW TCP reference series of Fig. 6(b): wire model only.

    One-way time = network latency + serialization at TCP goodput; no MPI
    stack, no daemon, no protocol.
    """
    cfg = config if config is not None else ClusterConfig()
    out: dict[int, float] = {}
    for nbytes in sizes:
        wire = (nbytes + cfg.per_message_overhead_bytes) * 8.0 / (
            cfg.bandwidth_bps * cfg.goodput_factor
        )
        t = cfg.network_latency_s + wire + 8e-6  # 8 µs socket syscall cost
        out[nbytes] = nbytes * 8.0 / t / 1e6
    return out
