"""Workloads: NetPIPE ping-pong, synthetic traffic, NAS skeletons."""

from repro.workloads.netpipe import (
    measure_latency,
    measure_bandwidth,
    pingpong_app,
)

__all__ = ["measure_latency", "measure_bandwidth", "pingpong_app"]
