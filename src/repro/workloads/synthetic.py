"""Synthetic traffic generators: stencil, ring, random, master-worker.

These are the micro-workloads used by the unit/property tests and the
examples — controllable communication patterns that exercise specific
protocol behaviours (fresh channels, wildcard receives, bursts) without
the NAS skeletons' weight.

All generators follow the restartable-style contract (durable state in
``ctx.state``, checkpoint poll per iteration) so every one of them works
under fault injection.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.mpi.api import ANY_SOURCE, MpiContext


def _fold(acc: int, value: int) -> int:
    return (acc * 31 + value) % 1000003


def stencil_2d(
    rows: int,
    cols: int,
    iterations: int = 10,
    halo_bytes: int = 2048,
    flops_per_iter: float = 1e6,
):
    """5-point stencil halo exchange on a periodic rows×cols grid."""

    def app(ctx: MpiContext):
        if ctx.size != rows * cols:
            raise ValueError("stencil grid does not match communicator size")
        s = ctx.state
        s.setdefault("it", 0)
        s.setdefault("acc", 0)
        row, col = divmod(ctx.rank, cols)
        east = row * cols + (col + 1) % cols
        west = row * cols + (col - 1) % cols
        south = ((row + 1) % rows) * cols + col
        north = ((row - 1) % rows) * cols + col
        while s["it"] < iterations:
            yield from ctx.checkpoint_poll()
            it = s["it"]
            for dst, src, tag in ((east, west, 1), (west, east, 2),
                                  (south, north, 3), (north, south, 4)):
                if dst == ctx.rank:
                    continue
                msg = yield from ctx.sendrecv(
                    dst, halo_bytes, src, tag=tag,
                    payload=(ctx.rank * 131 + it) % 999983,
                )
                s["acc"] = _fold(s["acc"], msg.payload)
            yield from ctx.compute_flops(flops_per_iter)
            s["it"] += 1
        total = yield from ctx.allreduce(8, s["acc"])
        return total

    return app


def ring(iterations: int = 10, nbytes: int = 1024, flops_per_iter: float = 1e6):
    """Unidirectional token ring (exercises one-way channels)."""

    def app(ctx: MpiContext):
        s = ctx.state
        s.setdefault("it", 0)
        s.setdefault("acc", 0)
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        while s["it"] < iterations:
            yield from ctx.checkpoint_poll()
            if ctx.size > 1:
                if ctx.rank == 0:
                    yield from ctx.send(right, nbytes, tag=1, payload=s["it"])
                    msg = yield from ctx.recv(left, tag=1)
                else:
                    msg = yield from ctx.recv(left, tag=1)
                    yield from ctx.send(
                        right, nbytes, tag=1, payload=msg.payload + ctx.rank
                    )
                s["acc"] = _fold(s["acc"], msg.payload)
            yield from ctx.compute_flops(flops_per_iter)
            s["it"] += 1
        total = yield from ctx.allreduce(8, s["acc"])
        return total

    return app


def random_pairs(
    iterations: int = 20,
    nbytes: int = 512,
    seed: int = 0,
    flops_per_iter: float = 5e5,
):
    """Random perfect matchings per iteration (fresh channel pairs).

    The matching schedule is drawn once from the seed, identically on
    every rank, so the pattern is deterministic and replay-safe.
    """

    def app(ctx: MpiContext):
        s = ctx.state
        s.setdefault("it", 0)
        s.setdefault("acc", 0)
        rng = np.random.default_rng(seed)
        schedules = []
        for _ in range(iterations):
            perm = rng.permutation(ctx.size)
            pairs = {}
            for i in range(0, ctx.size - 1, 2):
                a, b = int(perm[i]), int(perm[i + 1])
                pairs[a] = b
                pairs[b] = a
            schedules.append(pairs)
        while s["it"] < iterations:
            yield from ctx.checkpoint_poll()
            partner = schedules[s["it"]].get(ctx.rank)
            if partner is not None:
                msg = yield from ctx.sendrecv(
                    partner, nbytes, partner, tag=7,
                    payload=(ctx.rank + s["it"] * 17) % 999983,
                )
                s["acc"] = _fold(s["acc"], msg.payload)
            yield from ctx.compute_flops(flops_per_iter)
            s["it"] += 1
        total = yield from ctx.allreduce(8, s["acc"])
        return total

    return app


def master_worker(
    tasks: int = 24,
    task_bytes: int = 4096,
    result_bytes: int = 256,
    flops_per_task: float = 2e6,
):
    """Master-worker with wildcard receives (ANY_SOURCE nondeterminism).

    The master hands tasks to whichever worker asks first — reception
    order at the master is genuinely non-deterministic, which is exactly
    what message logging protocols must record and replay.

    Note on verification: receptions *after* a recovery are fresh
    non-deterministic events, so the task→worker assignment may legally
    differ from a fault-free run.  The verification value is therefore a
    commutative function of the task indices only: it is identical across
    runs if and only if every task was completed exactly once — the actual
    no-orphan/no-duplicate invariant.
    """

    def app(ctx: MpiContext):
        s = ctx.state
        s.setdefault("acc", 0)
        if ctx.size == 1:
            return 0
        if ctx.rank == 0:
            s.setdefault("issued", 0)
            s.setdefault("done", 0)
            # note: master state tracks progress for restartability
            while s["done"] < tasks:
                yield from ctx.checkpoint_poll()
                msg = yield from ctx.recv(ANY_SOURCE, tag=20)
                worker = msg.src
                if msg.payload is not None:
                    s["acc"] = (s["acc"] + msg.payload) % 1000003
                    s["done"] += 1
                if s["issued"] < tasks:
                    yield from ctx.send(
                        worker, task_bytes, tag=21, payload=s["issued"]
                    )
                    s["issued"] += 1
                else:
                    yield from ctx.send(worker, 16, tag=21, payload=None)
            total = yield from ctx.allreduce(8, s["acc"])
            return total
        # worker: request, compute, return result
        s.setdefault("working", True)
        if s["working"] and not s.get("announced"):
            s["announced"] = True  # survives checkpoints: announce only once
            yield from ctx.send(0, 16, tag=20, payload=None)  # ready
        while s["working"]:
            yield from ctx.checkpoint_poll()
            msg = yield from ctx.recv(0, tag=21)
            if msg.payload is None:
                s["working"] = False
                break
            yield from ctx.compute_flops(flops_per_task)
            # result depends only on the task, not on which worker ran it
            result = (msg.payload * 7919 + 13) % 999983
            yield from ctx.send(0, result_bytes, tag=20, payload=result)
        total = yield from ctx.allreduce(8, s["acc"])
        return total

    return app
