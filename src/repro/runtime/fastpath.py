"""Wiring-time compiled delivery fast paths.

At cluster wiring time, :func:`install_fastpath` compiles, for every
(protocol, channel endpoint) pair, the send and the receive pipeline into
one flat closure each and swaps them in at two seams:

* ``daemon.wire_sink`` — what peers' NIC transfers call on delivery.  The
  fused receive closure inlines the layered chain
  ``on_wire → _on_app_message → _create_determinant → _recv_base_delay``
  and its continuation ``_hand_to_app → MpiContext._on_delivery`` into
  two closures (pre-/post- the daemon service delay) that bind the hot
  state once instead of re-resolving 6 frames of attribute lookups per
  message.
* ``ctx.send`` / ``ctx.isend`` — instance attributes shadowing the class
  methods (``sendrecv`` and the collectives resolve ``self.send``, so
  they pick the fused path up transparently).  The fused send inlines
  ``MpiContext.send → Vdaemon.app_send`` with a per-``nbytes`` cache of
  the stage-1 software latency (pure in ``nbytes`` given the config).

The compiled closures are a *host-side* representation change only: they
issue exactly the same engine calls (``sim.post`` / drain enqueues /
``network.transfer``) with exactly the same timestamps, in exactly the
same order, as the layered reference path — the float additions that
build each delay are performed in the identical order, since ``a+b+c``
and ``a+(b+c)`` differ in IEEE-754.  Everything the reference path reads
per message (protocol object, clocks, ssn tables, liveness, epoch,
replay flags, trace sink) is read dynamically by the closures too, so a
``hard_reset`` mid-run needs no recompilation.  Anything off the hot
path — control messages, replay, tracing, a re-pointed
``deliver_to_app`` — falls back to the layered implementation, which
stays the reference for the differential suite
(``tests/test_dispatch_fastpath.py``) and A/B benchmarking.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.core.events import Determinant
from repro.mpi.api import ANY_SOURCE, ANY_TAG, ReceivedMessage
from repro.runtime.daemon import WireMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.api import MpiContext
    from repro.runtime.cluster import Cluster
    from repro.runtime.daemon import Vdaemon


def install_fastpath(cluster: "Cluster") -> None:
    """Compile and install fused delivery closures on every endpoint.

    Called once from ``Cluster.__init__`` after daemons and MPI contexts
    are wired (gated on ``config.delivery_fastpath``).
    """
    for rank, daemon in cluster.daemons.items():
        ctx = cluster.contexts[rank]
        daemon.wire_sink = _compile_recv_path(cluster, daemon, ctx)
        send = _compile_send_path(cluster, daemon)
        ctx.send = send
        ctx.isend = send


def _compile_recv_path(
    cluster: "Cluster", d: "Vdaemon", ctx: "MpiContext"
) -> Callable[[WireMessage], None]:
    """One flat closure replacing the per-message receive method chain."""
    sim = d.sim
    probes = d.probes
    rank = d.rank
    is_logging = d.is_logging
    drain = d._recv_drain
    delay_cache = d._recv_delay_cache
    layered_on_wire = d.on_wire
    layered_accept = d._on_app_message
    hand = _compile_hand_to_app(d, ctx)
    post_el = _compile_el_post(cluster, d) if d.spec.event_logger else None
    last_ssn = d.last_ssn
    last_ssn_get = last_ssn.get
    # the drain's in-order append (the overwhelmingly common case) is
    # inlined below; the deque identity is stable for the drain's lifetime
    drain_pending = drain.pending if drain is not None else None
    drain_enqueue = drain.enqueue if drain is not None else None

    # simlint: hot
    def fused_on_wire(msg: WireMessage) -> None:
        if msg.kind != "app":
            layered_on_wire(msg)  # ctl / replay traffic: off the hot path
            return
        if msg.epoch != cluster.epoch:
            return  # stale message from before a global restart
        if not d.alive:
            return  # dropped; covered by the sender-based log
        if d.in_replay or d.recovering:
            layered_accept(msg)  # buffers + pumps replay
            return
        src = msg.src
        ssn = msg.ssn
        if ssn <= last_ssn_get(src, 0):
            return  # duplicate of an already-delivered message
        # the single-threaded daemon processes receptions serially
        start = d._proc_busy_until
        now = sim.now
        if now > start:
            start = now
        # protocol mutations happen in arrival order (== delivery order)
        protocol = d.protocol
        pb_cost = protocol.accept_piggyback(src, msg.pb, msg.dep)
        last_ssn[src] = ssn
        det: Optional[Determinant] = None
        if is_logging:
            clock = d.clock + 1
            d.clock = clock
            probes.receptions = clock
            det = Determinant(
                creator=rank, clock=clock, sender=src, ssn=ssn, dep=msg.dep
            )
            protocol.on_local_event(det)
            if post_el is not None:
                post_el(det)
        delay = delay_cache.get(msg.nbytes)
        if delay is None:
            delay = d._recv_base_delay(msg)
        ready = start + (delay + pb_cost)
        d._proc_busy_until = ready
        if drain_pending is not None:
            # SerialDrain.enqueue's in-order branch, inlined: claim the
            # next engine seq and join the armed queue's tail
            if drain_pending and ready >= drain_pending[-1][0]:
                sim._seq = seq = sim._seq + 1
                entry = [ready, seq, hand, (msg, det)]
                claim_log = sim._claim_log
                if claim_log is not None:
                    claim_log.append(entry)
                drain_pending.append(entry)
            else:
                drain_enqueue(ready, hand, msg, det)
        else:
            sim.post(ready, hand, msg, det)

    return fused_on_wire


def _compile_hand_to_app(
    d: "Vdaemon", ctx: "MpiContext"
) -> Callable[[WireMessage, Optional[Determinant]], None]:
    """Fused ``_hand_to_app → MpiContext._on_delivery`` continuation."""
    layered_hand = d._hand_to_app
    # the one deliver_to_app instance MpiContext.__init__ installed; a
    # test (or future endpoint) re-pointing the seam demotes us to an
    # indirect call through whatever is installed now
    mpi_deliver = d.deliver_to_app

    # simlint: hot
    def fused_hand(msg: WireMessage, det: Optional[Determinant]) -> None:
        if d.trace_sink is not None or not d.alive:
            layered_hand(msg, det)  # timeline record / dead-rank swallow
            return
        if d.deliver_to_app is not mpi_deliver:
            layered_hand(msg, det)
            return
        m = ReceivedMessage(
            src=msg.src,
            tag=msg.tag,
            nbytes=msg.nbytes,
            payload=msg.payload,
            ssn=msg.ssn,
        )
        pending = ctx._pending
        if pending:
            src = m.src
            tag = m.tag
            for i, p in enumerate(pending):
                ps = p.source
                pt = p.tag
                if (ps == ANY_SOURCE or ps == src) and (
                    pt == ANY_TAG or pt == tag
                ):
                    del pending[i]
                    p.future.resolve(m)
                    return
        ctx._queue.append(m)

    return fused_hand


def _compile_el_post(
    cluster: "Cluster", d: "Vdaemon"
) -> Optional[Callable[[Determinant], None]]:
    """Fused single-determinant ``_post_to_el → _el_log_send`` (the
    fire-and-forget default; the retry layer keeps the layered path)."""
    group = cluster.event_logger
    if group is None:
        return None
    probes = d.probes
    if cluster.retry_policy.enabled:
        layered_send = d._el_log_send

        # simlint: hot
        def retry_post(det: Determinant) -> None:
            probes.el_events_logged += 1
            layered_send((det,))

        return retry_post
    network = d.network
    host = d.host
    nbytes = d.config.el_event_wire_bytes
    shard_for = group.shard_for
    el_ack = d._el_ack
    rank = d.rank

    # simlint: hot
    def fused_post(det: Determinant) -> None:
        probes.el_events_logged += 1
        shard = shard_for(rank)
        network.transfer(
            host,
            shard.host,
            nbytes,
            shard.receive_log,
            args=(rank, (det,), el_ack, host),
        )

    return fused_post


def _compile_send_path(cluster: "Cluster", d: "Vdaemon"):
    """Fused ``MpiContext.send → Vdaemon.app_send`` generator.

    Installed as an *instance* attribute on the context, shadowing both
    ``send`` and ``isend`` (identical semantics: sends complete at local
    injection), so ``sendrecv`` and the collectives — which resolve
    ``self.send`` — inherit it without changes.
    """
    cfg = d.config
    spec = d.spec
    network = d.network
    probes = d.probes
    rank = d.rank
    host = d.host
    daemons = cluster.daemons
    host_of = cluster.host_of
    plan_select = d._plan_send
    layered_send = d.app_send
    slog = spec.sender_based_logging
    is_logging = d.is_logging
    blocking = d.protocol.blocking_on_stability  # class attr: reset-stable
    ssn_next = d.ssn_next
    ssn_next_get = ssn_next.get
    #: nbytes -> stage-1 latency (pure in nbytes given config and spec;
    #: computed once by the exact reference float-addition order)
    pre_cache: dict[int, float] = {}
    #: dst -> (dst host, dst wire sink): daemons are never replaced, and
    #: the sink seam is installed before any traffic flows
    dst_cache: dict[int, tuple] = {}

    # simlint: hot
    def fused_send(dst: int, nbytes: int, tag: int = 0, payload=None):
        if d.trace_sink is not None or blocking:
            ssn = yield from layered_send(dst, nbytes, tag=tag, payload=payload)
            return ssn

        ssn = ssn_next_get(dst, 0) + 1
        ssn_next[dst] = ssn

        # -- stage 1: the MPI stack + the app→daemon pipe crossing ------
        pre = pre_cache.get(nbytes)
        if pre is None:
            pre = cfg.mpi_software_latency_s / 2.0
            if spec.daemon:
                pre += cfg.daemon_overhead_s / 2.0
                pre += nbytes * 8.0 / cfg.daemon_copy_bandwidth_bps
            if slog:
                pre += nbytes * 8.0 / cfg.sender_log_bandwidth_bps
            if is_logging:
                pre += cfg.logging_fixed_latency_s / 2.0
            pre_cache[nbytes] = pre
        if slog:
            sender_log = d.sender_log
            sender_log.record(dst, ssn, tag, nbytes, payload)
            probes.sender_log_bytes = sender_log.bytes_held
            probes.sender_log_messages = sender_log.messages_held
        yield pre

        # -- stage 2: the daemon builds the piggyback -------------------
        pb = d.protocol.build_piggyback(dst)
        plan = plan_select(nbytes)

        probes.app_messages_sent += 1
        probes.app_payload_bytes_sent += nbytes
        probes.piggyback_bytes_sent += pb.nbytes
        probes.piggyback_events_sent += pb.n_events
        probes.header_bytes_sent += plan.header_bytes
        if pb.n_events:
            probes.messages_with_piggyback += 1

        post = pb.build_cost_s + plan.handshake_latency_s
        if post > 0:
            yield post

        msg = WireMessage(
            kind="app",
            src=rank,
            dst=dst,
            ssn=ssn,
            tag=tag,
            nbytes=nbytes,
            payload=payload,
            pb=pb,
            dep=d.clock,
            epoch=cluster.epoch,
        )
        target = dst_cache.get(dst)
        if target is None:
            dst_daemon = daemons[dst]
            target = dst_cache[dst] = (host_of(dst), dst_daemon.wire_sink)
        network.transfer(
            host, target[0], nbytes + pb.nbytes + plan.header_bytes, target[1],
            args=(msg,),
        )
        return ssn

    return fused_send
