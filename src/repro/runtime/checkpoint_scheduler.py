"""Checkpoint scheduler policies (paper §IV-B.3).

The checkpoint scheduler "is not necessary to insure the fault tolerance,
but is intended to enhance performance": in message-logging protocols the
checkpoints are uncoordinated and a finished checkpoint lets senders
garbage-collect logged payloads, so the scheduling policy controls memory
pressure and restart cost.  Policies implemented, as in the paper:

* ``coordinated`` — all ranks checkpoint together in waves (also used by
  the coordinated-checkpoint protocol, where it is mandatory);
* ``round-robin`` — one rank at a time, cycling;
* ``random`` — one uniformly random rank per period;
* ``none`` — never checkpoint (the fault-free measurement configurations).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.simulator.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster


class CheckpointScheduler:
    """Periodically asks daemons to checkpoint at their next safe point."""

    POLICIES = ("none", "coordinated", "round-robin", "random")

    def __init__(
        self,
        sim: Simulator,
        cluster: "Cluster",
        policy: str = "none",
        interval_s: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ):
        if policy not in self.POLICIES:
            raise ValueError(f"unknown checkpoint policy {policy!r}")
        if policy != "none" and (interval_s is None or interval_s <= 0):
            raise ValueError("a positive interval is required for checkpointing")
        self.sim = sim
        self.cluster = cluster
        self.policy = policy
        self.interval_s = interval_s
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._next_rank = 0
        self._wave = 0
        self.requests_issued = 0
        #: periods skipped because the checkpoint server was down
        self.ticks_skipped = 0

    def start(self) -> None:
        if self.policy == "none":
            return
        self.sim.schedule(self.interval_s, self._tick)

    # ------------------------------------------------------------------ #

    def _tick(self) -> None:
        if self.cluster.finished:
            return
        if not self.cluster.checkpoint_server.alive:
            # server outage: skip the period (no wave is even started),
            # rearm — checkpointing resumes once the server is restored
            self.ticks_skipped += 1
            self.sim.schedule(self.interval_s, self._tick)
            return
        if self.policy == "coordinated":
            self._wave += 1
            for rank in range(self.cluster.nprocs):
                self._request(rank, wave=self._wave)
        elif self.policy == "round-robin":
            self._request(self._next_rank)
            self._next_rank = (self._next_rank + 1) % self.cluster.nprocs
        elif self.policy == "random":
            self._request(int(self.rng.integers(self.cluster.nprocs)))
        self.sim.schedule(self.interval_s, self._tick)

    def _request(self, rank: int, wave: Optional[int] = None) -> None:
        daemon = self.cluster.daemons.get(rank)
        if daemon is not None and daemon.alive:
            daemon.request_checkpoint(wave=wave)
            self.requests_issued += 1
