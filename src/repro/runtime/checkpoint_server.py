"""Checkpoint server: transactional remote storage of process images.

"All checkpoint operations (namely store, delete and retrieve of an image)
are transactions: in case of a failure before the termination of the
operation, the state of the checkpoint server and images is not modified."
(paper §IV-B.2)

In message-logging protocols the image of a process contains the MPI
process state, the payload of logged messages and the causal information
held in local memory — callers pass the composed byte size; the server
charges the transfer over its NIC and commits atomically at delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.metrics.probes import ClusterProbes
from repro.runtime.config import ClusterConfig
from repro.simulator.engine import Simulator
from repro.simulator.network import Network

#: host name of the checkpoint server's NIC
CKPT_HOST = "ckpt"


@dataclass
class CheckpointImage:
    """One committed process image."""

    rank: int
    version: int
    nbytes: int
    commit_time: float
    #: opaque snapshot payload (deep-copied state dicts)
    snapshot: Any = None


class CheckpointServer:
    """Stores the latest committed image per rank (older ones deleted)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: ClusterConfig,
        probes: ClusterProbes,
    ):
        self.sim = sim
        self.network = network
        self.config = config
        self.probes = probes
        self.images: dict[int, CheckpointImage] = {}
        self._versions: dict[int, int] = {}
        #: completed coordinated checkpoint waves: wave id -> set of ranks
        self.waves: dict[int, set[int]] = {}
        #: per-(rank, wave) images for coordinated restarts
        self.wave_images: dict[tuple[int, int], CheckpointImage] = {}

    # ------------------------------------------------------------------ #

    def store(
        self,
        rank: int,
        nbytes: int,
        snapshot: Any,
        src_host: str,
        on_commit: Optional[Callable[[CheckpointImage], None]] = None,
        wave: Optional[int] = None,
    ) -> None:
        """Begin a store transaction: transfer then atomic commit.

        If the source dies mid-transfer the delivery callback never fires
        for a dead sender's stream in a real system; here the transfer
        completes only if scheduled — a crash *before* calling store simply
        never starts the transaction, matching the transactional contract.
        """
        version = self._versions.get(rank, 0) + 1
        self._versions[rank] = version

        def _commit() -> None:
            image = CheckpointImage(
                rank=rank,
                version=version,
                nbytes=nbytes,
                commit_time=self.sim.now,
                snapshot=snapshot,
            )
            self.images[rank] = image
            self.probes.checkpoints_stored += 1
            self.probes.checkpoint_bytes += nbytes
            if wave is not None:
                self.waves.setdefault(wave, set()).add(rank)
                self.wave_images[(rank, wave)] = image
            if on_commit is not None:
                on_commit(image)

        self.network.transfer_chunked(src_host, CKPT_HOST, nbytes, _commit)

    def retrieve(
        self,
        rank: int,
        dst_host: str,
        on_delivered: Callable[[Optional[CheckpointImage]], None],
    ) -> None:
        """Send the latest committed image of ``rank`` back to ``dst_host``.

        Delivers ``None`` (after a round trip of the request) when no image
        exists — the caller restarts from the initial state.
        """
        image = self.images.get(rank)
        if image is None:
            self.network.transfer(
                CKPT_HOST, dst_host, self.config.recovery_request_bytes,
                lambda: on_delivered(None),
            )
            return
        self.network.transfer_chunked(
            CKPT_HOST, dst_host, image.nbytes, lambda: on_delivered(image)
        )

    def retrieve_wave(
        self,
        rank: int,
        wave: int,
        dst_host: str,
        on_delivered: Callable[[Optional[CheckpointImage]], None],
    ) -> None:
        """Send the image of ``rank`` from coordinated wave ``wave``."""
        image = self.wave_images.get((rank, wave))
        if image is None:
            self.network.transfer(
                CKPT_HOST, dst_host, self.config.recovery_request_bytes,
                lambda: on_delivered(None),
            )
            return
        self.network.transfer_chunked(
            CKPT_HOST, dst_host, image.nbytes, lambda: on_delivered(image)
        )

    def wave_complete(self, wave: int, nprocs: int) -> bool:
        """True when every rank committed an image for coordinated ``wave``."""
        return len(self.waves.get(wave, ())) == nprocs

    def latest_complete_wave(self, nprocs: int) -> Optional[int]:
        complete = [w for w, ranks in self.waves.items() if len(ranks) == nprocs]
        return max(complete) if complete else None
