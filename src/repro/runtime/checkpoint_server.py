"""Checkpoint server: transactional remote storage of process images.

"All checkpoint operations (namely store, delete and retrieve of an image)
are transactions: in case of a failure before the termination of the
operation, the state of the checkpoint server and images is not modified."
(paper §IV-B.2)

In message-logging protocols the image of a process contains the MPI
process state, the payload of logged messages and the causal information
held in local memory — callers pass the composed byte size; the server
charges the transfer over its NIC and commits atomically at delivery.

Outage semantics (``ClusterConfig.ckpt_server_failover``): the server
process can :meth:`~CheckpointServer.fail` and later
:meth:`~CheckpointServer.restore`.  Committed images and complete waves
live on disk and survive; everything in flight follows the transactional
contract — store transfers racing the crash abort at delivery (the
server generation changed), in-flight coordinated waves are dropped, and
restarts fall back to the newest wave that *had* completed.  While the
server is down, ``store``/``retrieve`` return ``False`` (connection
refused) so the retry layer (:mod:`repro.runtime.retry`) can back off
and re-attempt instead of losing the call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.metrics.probes import ClusterProbes
from repro.runtime.config import ClusterConfig
from repro.simulator.engine import Simulator
from repro.simulator.network import Network

#: host name of the checkpoint server's NIC
CKPT_HOST = "ckpt"


@dataclass
class CheckpointImage:
    """One committed process image."""

    rank: int
    version: int
    nbytes: int
    commit_time: float
    #: opaque snapshot payload (deep-copied state dicts)
    snapshot: Any = None


class CheckpointServer:
    """Stores the latest committed image per rank (older ones deleted)."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        config: ClusterConfig,
        probes: ClusterProbes,
        nprocs: int = 0,
    ):
        self.sim = sim
        self.network = network
        self.config = config
        self.probes = probes
        #: rank count served (0 = unknown; needed to tell an in-flight
        #: coordinated wave from a complete one during an outage)
        self.nprocs = nprocs
        self.alive = True
        #: bumped on every failure; a store commit racing the crash sees a
        #: newer generation at delivery and aborts (transactional contract)
        self.generation = 0
        self.images: dict[int, CheckpointImage] = {}
        self._versions: dict[int, int] = {}
        #: completed coordinated checkpoint waves: wave id -> set of ranks
        self.waves: dict[int, set[int]] = {}
        #: per-(rank, wave) images for coordinated restarts
        self.wave_images: dict[tuple[int, int], CheckpointImage] = {}
        #: waves dropped by an outage; late commits never resurrect them
        self._aborted_waves: set[int] = set()

    # ------------------------------------------------------------------ #
    # outage lifecycle

    def fail(self) -> None:
        """Crash the server process: in-flight transactions will abort at
        delivery; committed images and complete waves survive on disk."""
        if not self.alive:
            return
        self.alive = False
        self.generation += 1
        self.probes.ckpt_outages += 1
        nprocs = self.nprocs
        inflight = [
            w for w, ranks in self.waves.items() if nprocs and len(ranks) < nprocs
        ]
        for wave in inflight:
            ranks = self.waves.pop(wave)
            for r in ranks:
                self.wave_images.pop((r, wave), None)
            self._aborted_waves.add(wave)
            self.probes.ckpt_waves_aborted += 1

    def restore(self) -> None:
        """Bring the server back (state reloaded from disk)."""
        self.alive = True

    # ------------------------------------------------------------------ #

    def store(
        self,
        rank: int,
        nbytes: int,
        snapshot: Any,
        src_host: str,
        on_commit: Optional[Callable[[CheckpointImage], None]] = None,
        on_abort: Optional[Callable[[], None]] = None,
        wave: Optional[int] = None,
    ) -> bool:
        """Begin a store transaction: transfer then atomic commit.

        Returns ``False`` (connection refused, nothing sent) when the
        server is down.  A transfer accepted before a crash aborts at
        delivery — the generation check below — invoking ``on_abort`` so
        the retry layer can re-attempt; the server state is untouched,
        matching the paper's transactional contract.
        """
        if not self.alive:
            return False
        version = self._versions.get(rank, 0) + 1
        self._versions[rank] = version
        generation = self.generation

        def _commit() -> None:
            if not self.alive or generation != self.generation:
                self.probes.ckpt_stores_aborted += 1
                if on_abort is not None:
                    on_abort()
                return
            image = CheckpointImage(
                rank=rank,
                version=version,
                nbytes=nbytes,
                commit_time=self.sim.now,
                snapshot=snapshot,
            )
            self.images[rank] = image
            self.probes.checkpoints_stored += 1
            self.probes.checkpoint_bytes += nbytes
            if wave is not None and wave not in self._aborted_waves:
                self.waves.setdefault(wave, set()).add(rank)
                self.wave_images[(rank, wave)] = image
            if on_commit is not None:
                on_commit(image)

        self.network.transfer_chunked(src_host, CKPT_HOST, nbytes, _commit)
        return True

    def retrieve(
        self,
        rank: int,
        dst_host: str,
        on_delivered: Callable[[Optional[CheckpointImage]], None],
    ) -> bool:
        """Send the latest committed image of ``rank`` back to ``dst_host``.

        Delivers ``None`` (after a round trip of the request) when no image
        exists — the caller restarts from the initial state.  Returns
        ``False`` without sending anything when the server is down.
        """
        if not self.alive:
            return False
        image = self.images.get(rank)
        if image is None:
            self.network.transfer(
                CKPT_HOST, dst_host, self.config.recovery_request_bytes,
                lambda: on_delivered(None),
            )
            return True
        self.network.transfer_chunked(
            CKPT_HOST, dst_host, image.nbytes, lambda: on_delivered(image)
        )
        return True

    def retrieve_wave(
        self,
        rank: int,
        wave: Optional[int],
        dst_host: str,
        on_delivered: Callable[[Optional[CheckpointImage]], None],
    ) -> bool:
        """Send the image of ``rank`` from coordinated wave ``wave``."""
        if not self.alive:
            return False
        image = self.wave_images.get((rank, wave))
        if image is None:
            self.network.transfer(
                CKPT_HOST, dst_host, self.config.recovery_request_bytes,
                lambda: on_delivered(None),
            )
            return True
        self.network.transfer_chunked(
            CKPT_HOST, dst_host, image.nbytes, lambda: on_delivered(image)
        )
        return True

    def wave_complete(self, wave: int, nprocs: int) -> bool:
        """True when every rank committed an image for coordinated ``wave``."""
        return len(self.waves.get(wave, ())) == nprocs

    def latest_complete_wave(self, nprocs: int) -> Optional[int]:
        complete = [w for w, ranks in self.waves.items() if len(ranks) == nprocs]
        return max(complete) if complete else None
