"""Fault-injection plans.

Plans reproducing the paper's experiments:

* :class:`OneShotFaults` — kill specific ranks at specific times.  Fig. 10
  kills rank 0 "at the middle of its correct execution time".
* :class:`PeriodicFaults` — a fixed fault *frequency* (faults per minute),
  one process killed per period, as in the Fig. 1 resilience sweep.

Plans modelling the grid reality beyond independent single-rank deaths —
nodes share power supplies and switches, so failures correlate:

* :class:`FailureDomains` — ranks grouped into ``ClusterConfig.fault_domains``
  contiguous balanced blocks (one node / switch group each);
* :class:`CorrelatedFaults` — kill one whole domain at once, optionally
  *cascading*: each restart inside the domain re-triggers the underlying
  fault with a configurable probability (a flapping power feed);
* :class:`StormFaults` — a burst of domain kills inside a time window;
* :class:`InfraFaults` — infrastructure faults: Event Logger shard
  crashes and checkpoint-server outage windows;
* :class:`CompositeFaults` — several plans installed together.

Plans only decide *who dies when*; the dispatcher owns detection and
restart.  Every rank kill goes through the same eligibility check
(:func:`_killable`): a victim that is already dead, mid-restart, or
finished is skipped and counted in ``ClusterProbes.faults_skipped``
instead of double-killing an episode in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.simulator.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster


class FaultPlan:
    """Base: installs kill events on the simulator."""

    def install(self, sim: Simulator, cluster: "Cluster") -> None:
        raise NotImplementedError

    @property
    def description(self) -> str:
        return type(self).__name__


@dataclass
class OneShotFaults(FaultPlan):
    """Kill (time_s, rank) pairs exactly once each.

    A fault scheduled against a rank that is no longer a steady victim at
    fire time (dead, mid-restart, or finished) is dropped and counted in
    ``ClusterProbes.faults_skipped`` — the same eligibility rule
    :class:`PeriodicFaults` applies when probing for a victim.
    """

    faults: list[tuple[float, int]] = field(default_factory=list)

    def install(self, sim: Simulator, cluster: "Cluster") -> None:
        for time_s, rank in self.faults:
            sim.at(time_s, _fire_fault, cluster, rank)

    @property
    def description(self) -> str:
        return f"one-shot faults at {self.faults}"


def _fire_fault(cluster: "Cluster", rank: int) -> None:
    """Inject a fault if ``rank`` is a steady victim, else count the skip."""
    if cluster.finished:
        return
    if _killable(cluster, rank):
        cluster.inject_fault(rank)
    else:
        cluster.probes.faults_skipped += 1


def _killable(cluster: "Cluster", rank: int) -> bool:
    """True when ``rank`` is steady enough to be a fault victim.

    A rank that is dead, mid-recovery, or replaying is still being handled
    by the dispatcher from the *previous* fault: killing it again would
    double-kill an episode in flight (and a dead rank would silently eat
    the period's fault).  Ranks that already finished are not running
    application code, so the paper's "kill during execution" rule skips
    them too.
    """
    if rank in cluster.finished_ranks:
        return False
    daemon = cluster.daemons[rank]
    return daemon.alive and not daemon.recovering and not daemon.in_replay


@dataclass
class PeriodicFaults(FaultPlan):
    """One fault every ``1/per_minute`` minutes until the run completes.

    ``victim`` selects the policy: "round-robin" cycles ranks (the paper
    kills whichever node the dispatcher restarts next), "random" draws
    uniformly, or a fixed integer rank.  Whatever the policy, a rank that
    is dead or still mid-restart from the previous fault is skipped (the
    next eligible rank is probed cyclically); if no rank is eligible the
    period's fault is dropped and the plan rearms.
    """

    per_minute: float = 1.0
    start_s: float = 30.0
    victim: str | int = "round-robin"
    seed: int = 0
    #: stop after this many injected faults (None: until the run completes);
    #: bounds fault storms whose period is shorter than a recovery episode
    max_faults: Optional[int] = None

    def install(self, sim: Simulator, cluster: "Cluster") -> None:
        if self.per_minute <= 0:
            return
        period = 60.0 / self.per_minute
        rng = np.random.default_rng(self.seed)
        state = {"next": 0, "fired": 0}

        def pick() -> Optional[int]:
            n = cluster.nprocs
            if isinstance(self.victim, int):
                return self.victim if _killable(cluster, self.victim) else None
            if self.victim == "random":
                first = int(rng.integers(n))
            else:
                first = state["next"] % n
            for probe in range(n):
                rank = (first + probe) % n
                if _killable(cluster, rank):
                    if self.victim != "random":
                        state["next"] = rank + 1
                    return rank
            return None

        def fire() -> None:
            if cluster.finished:
                return
            if self.max_faults is not None and state["fired"] >= self.max_faults:
                return
            rank = pick()
            if rank is not None:
                cluster.inject_fault(rank)
                state["fired"] += 1
            else:
                cluster.probes.faults_skipped += 1
            sim.schedule(period, fire)

        sim.schedule(self.start_s, fire)

    @property
    def description(self) -> str:
        return f"{self.per_minute}/min faults ({self.victim})"


class FailureDomains:
    """Ranks grouped into contiguous, balanced failure domains.

    A domain models the ranks sharing one physical node or switch group:
    when the hardware underneath fails, the whole domain dies together.
    ``count <= 0`` degenerates to one domain per rank (every fault stays
    independent, the historical behaviour); ``count > nprocs`` is clamped.
    With ``nprocs = q*count + r`` the first ``r`` domains hold ``q + 1``
    ranks and the rest hold ``q`` — contiguous blocks, matching the
    block-wise way real schedulers place ranks on nodes.
    """

    def __init__(self, nprocs: int, count: int = 0):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if count <= 0 or count > nprocs:
            count = nprocs
        self.nprocs = nprocs
        self.count = count
        base, extra = divmod(nprocs, count)
        self._bounds: list[int] = [0]
        for d in range(count):
            self._bounds.append(self._bounds[-1] + base + (1 if d < extra else 0))
        self._domain_of = [0] * nprocs
        for d in range(count):
            for r in range(self._bounds[d], self._bounds[d + 1]):
                self._domain_of[r] = d

    @classmethod
    def from_cluster(cls, cluster: "Cluster") -> "FailureDomains":
        return cls(cluster.nprocs, cluster.config.fault_domains)

    @property
    def ndomains(self) -> int:
        return self.count

    def domain_of(self, rank: int) -> int:
        return self._domain_of[rank]

    def members(self, domain: int) -> list[int]:
        return list(range(self._bounds[domain], self._bounds[domain + 1]))


def _kill_domain(cluster: "Cluster", ranks: Iterable[int]) -> None:
    for rank in ranks:
        _fire_fault(cluster, rank)


def _install_cascade(
    sim: Simulator,
    cluster: "Cluster",
    members: set,
    rng: np.random.Generator,
    cascade_p: float,
    cascade_delay_s: float,
    max_cascades: int,
) -> None:
    """Restart-triggered re-kills: each restart of a domain member draws
    against ``cascade_p`` and, bounded by ``max_cascades``, re-kills the
    restarted rank after ``cascade_delay_s`` (the underlying hardware
    fault is still live when the dispatcher brings the rank back)."""
    if cascade_p <= 0:
        return
    state = {"cascades": 0}

    def on_restart(rank: int) -> None:
        if rank not in members or state["cascades"] >= max_cascades:
            return
        if float(rng.random()) >= cascade_p:
            return
        state["cascades"] += 1
        sim.schedule(cascade_delay_s, _fire_fault, cluster, rank)

    cluster.add_restart_listener(on_restart)


@dataclass
class CorrelatedFaults(FaultPlan):
    """Kill one whole failure domain at ``at_s``, optionally cascading.

    The domain layout comes from ``ClusterConfig.fault_domains`` (via
    :class:`FailureDomains`); with the default of one domain per rank
    this degenerates to a one-shot single-rank fault.
    """

    at_s: float = 1.0
    domain: int = 0
    cascade_p: float = 0.0
    cascade_delay_s: float = 0.25
    max_cascades: int = 2
    seed: int = 0

    def install(self, sim: Simulator, cluster: "Cluster") -> None:
        domains = FailureDomains.from_cluster(cluster)
        members = domains.members(self.domain % domains.ndomains)
        sim.at(self.at_s, _kill_domain, cluster, members)
        _install_cascade(
            sim,
            cluster,
            set(members),
            np.random.default_rng(self.seed),
            self.cascade_p,
            self.cascade_delay_s,
            self.max_cascades,
        )

    @property
    def description(self) -> str:
        return f"correlated kill of domain {self.domain} at {self.at_s}s"


@dataclass
class StormFaults(FaultPlan):
    """A burst of domain kills inside ``[start_s, start_s + window_s]``.

    ``kills`` distinct domains (seeded draw, clamped to the domain count)
    die at seeded times inside the window; cascades, when enabled, apply
    to every rank of every struck domain.
    """

    start_s: float = 1.0
    window_s: float = 0.5
    kills: int = 2
    cascade_p: float = 0.0
    cascade_delay_s: float = 0.25
    max_cascades: int = 2
    seed: int = 0

    def install(self, sim: Simulator, cluster: "Cluster") -> None:
        domains = FailureDomains.from_cluster(cluster)
        rng = np.random.default_rng(self.seed)
        kills = min(self.kills, domains.ndomains)
        victims = rng.choice(domains.ndomains, size=kills, replace=False)
        times = sorted(
            self.start_s + self.window_s * float(rng.random()) for _ in range(kills)
        )
        struck: set = set()
        for time_s, domain in zip(times, victims):
            members = domains.members(int(domain))
            struck.update(members)
            sim.at(time_s, _kill_domain, cluster, members)
        _install_cascade(
            sim,
            cluster,
            struck,
            rng,
            self.cascade_p,
            self.cascade_delay_s,
            self.max_cascades,
        )

    @property
    def description(self) -> str:
        return (
            f"storm: {self.kills} domain kills in "
            f"[{self.start_s}, {self.start_s + self.window_s}]s"
        )


@dataclass
class InfraFaults(FaultPlan):
    """Infrastructure faults: EL shard crashes and checkpoint outages.

    ``el_shard_kills`` holds ``(time_s, shard_index)`` pairs; failover —
    when ``ClusterConfig.el_failover`` is on — is handled by the
    :class:`~repro.core.distributed_el.EventLoggerGroup` itself.
    ``ckpt_outages`` holds ``(fail_s, restore_s)`` windows for the
    checkpoint server (``restore_s = None`` leaves it down for good).
    """

    el_shard_kills: list[tuple[float, int]] = field(default_factory=list)
    ckpt_outages: list[tuple[float, Optional[float]]] = field(default_factory=list)

    def install(self, sim: Simulator, cluster: "Cluster") -> None:
        for time_s, index in self.el_shard_kills:
            sim.at(time_s, cluster.kill_el_shard, index)
        for fail_s, restore_s in self.ckpt_outages:
            sim.at(fail_s, cluster.checkpoint_server.fail)
            if restore_s is not None:
                sim.at(restore_s, cluster.checkpoint_server.restore)

    @property
    def description(self) -> str:
        return (
            f"infra faults: {len(self.el_shard_kills)} EL shard kills, "
            f"{len(self.ckpt_outages)} checkpoint outages"
        )


@dataclass
class CompositeFaults(FaultPlan):
    """Install several plans together (e.g. an outage plus a rank kill)."""

    plans: list[FaultPlan] = field(default_factory=list)

    def install(self, sim: Simulator, cluster: "Cluster") -> None:
        for plan in self.plans:
            plan.install(sim, cluster)

    @property
    def description(self) -> str:
        return " + ".join(p.description for p in self.plans) or "no faults"
