"""Fault-injection plans.

Two kinds of plans reproduce the paper's experiments:

* :class:`OneShotFaults` — kill specific ranks at specific times.  Fig. 10
  kills rank 0 "at the middle of its correct execution time".
* :class:`PeriodicFaults` — a fixed fault *frequency* (faults per minute),
  one process killed per period, as in the Fig. 1 resilience sweep.

Plans only decide *who dies when*; the dispatcher owns detection and
restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.simulator.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster


class FaultPlan:
    """Base: installs kill events on the simulator."""

    def install(self, sim: Simulator, cluster: "Cluster") -> None:
        raise NotImplementedError

    @property
    def description(self) -> str:
        return type(self).__name__


@dataclass
class OneShotFaults(FaultPlan):
    """Kill (time_s, rank) pairs exactly once each."""

    faults: list[tuple[float, int]] = field(default_factory=list)

    def install(self, sim: Simulator, cluster: "Cluster") -> None:
        for time_s, rank in self.faults:
            sim.at(time_s, cluster.inject_fault, rank)

    @property
    def description(self) -> str:
        return f"one-shot faults at {self.faults}"


def _killable(cluster: "Cluster", rank: int) -> bool:
    """True when ``rank`` is steady enough to be a fault victim.

    A rank that is dead, mid-recovery, or replaying is still being handled
    by the dispatcher from the *previous* fault: killing it again would
    double-kill an episode in flight (and a dead rank would silently eat
    the period's fault).  Ranks that already finished are not running
    application code, so the paper's "kill during execution" rule skips
    them too.
    """
    if rank in cluster.finished_ranks:
        return False
    daemon = cluster.daemons[rank]
    return daemon.alive and not daemon.recovering and not daemon.in_replay


@dataclass
class PeriodicFaults(FaultPlan):
    """One fault every ``1/per_minute`` minutes until the run completes.

    ``victim`` selects the policy: "round-robin" cycles ranks (the paper
    kills whichever node the dispatcher restarts next), "random" draws
    uniformly, or a fixed integer rank.  Whatever the policy, a rank that
    is dead or still mid-restart from the previous fault is skipped (the
    next eligible rank is probed cyclically); if no rank is eligible the
    period's fault is dropped and the plan rearms.
    """

    per_minute: float = 1.0
    start_s: float = 30.0
    victim: str | int = "round-robin"
    seed: int = 0
    #: stop after this many injected faults (None: until the run completes);
    #: bounds fault storms whose period is shorter than a recovery episode
    max_faults: Optional[int] = None

    def install(self, sim: Simulator, cluster: "Cluster") -> None:
        if self.per_minute <= 0:
            return
        period = 60.0 / self.per_minute
        rng = np.random.default_rng(self.seed)
        state = {"next": 0, "fired": 0}

        def pick() -> Optional[int]:
            n = cluster.nprocs
            if isinstance(self.victim, int):
                return self.victim if _killable(cluster, self.victim) else None
            if self.victim == "random":
                first = int(rng.integers(n))
            else:
                first = state["next"] % n
            for probe in range(n):
                rank = (first + probe) % n
                if _killable(cluster, rank):
                    if self.victim != "random":
                        state["next"] = rank + 1
                    return rank
            return None

        def fire() -> None:
            if cluster.finished:
                return
            if self.max_faults is not None and state["fired"] >= self.max_faults:
                return
            rank = pick()
            if rank is not None:
                cluster.inject_fault(rank)
                state["fired"] += 1
            sim.schedule(period, fire)

        sim.schedule(self.start_s, fire)

    @property
    def description(self) -> str:
        return f"{self.per_minute}/min faults ({self.victim})"
