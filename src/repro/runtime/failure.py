"""Fault-injection plans.

Two kinds of plans reproduce the paper's experiments:

* :class:`OneShotFaults` — kill specific ranks at specific times.  Fig. 10
  kills rank 0 "at the middle of its correct execution time".
* :class:`PeriodicFaults` — a fixed fault *frequency* (faults per minute),
  one process killed per period, as in the Fig. 1 resilience sweep.

Plans only decide *who dies when*; the dispatcher owns detection and
restart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from repro.simulator.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster


class FaultPlan:
    """Base: installs kill events on the simulator."""

    def install(self, sim: Simulator, cluster: "Cluster") -> None:
        raise NotImplementedError

    @property
    def description(self) -> str:
        return type(self).__name__


@dataclass
class OneShotFaults(FaultPlan):
    """Kill (time_s, rank) pairs exactly once each."""

    faults: list[tuple[float, int]] = field(default_factory=list)

    def install(self, sim: Simulator, cluster: "Cluster") -> None:
        for time_s, rank in self.faults:
            sim.at(time_s, cluster.inject_fault, rank)

    @property
    def description(self) -> str:
        return f"one-shot faults at {self.faults}"


@dataclass
class PeriodicFaults(FaultPlan):
    """One fault every ``1/per_minute`` minutes until the run completes.

    ``victim`` selects the policy: "round-robin" cycles ranks (the paper
    kills whichever node the dispatcher restarts next), "random" draws
    uniformly, or a fixed integer rank.
    """

    per_minute: float = 1.0
    start_s: float = 30.0
    victim: str | int = "round-robin"
    seed: int = 0

    def install(self, sim: Simulator, cluster: "Cluster") -> None:
        if self.per_minute <= 0:
            return
        period = 60.0 / self.per_minute
        rng = np.random.default_rng(self.seed)
        state = {"next": 0}

        def fire() -> None:
            if cluster.finished:
                return
            if isinstance(self.victim, int):
                rank = self.victim
            elif self.victim == "random":
                rank = int(rng.integers(cluster.nprocs))
            else:
                rank = state["next"] % cluster.nprocs
                state["next"] += 1
            cluster.inject_fault(rank)
            sim.schedule(period, fire)

        sim.schedule(self.start_s, fire)

    @property
    def description(self) -> str:
        return f"{self.per_minute}/min faults ({self.victim})"
