"""Shared retry/timeout/backoff primitive for daemon→service traffic.

The paper's volatility assumption does not stop at compute nodes: the
Event Logger shards and the checkpoint servers live on the same grid.
When one of them is mid-failover, a client that fire-and-forgets its
request simply loses it — the recovering rank deadlocks waiting for a
determinant fetch that will never be answered.  This module gives every
daemon→EL and daemon→checkpoint-server interaction the same discipline a
real RPC stack would have:

* a **deterministic sim-time timer** per in-flight call
  (``rpc_timeout_s``); no wall clock, no randomness — retries land at
  reproducible simulated instants;
* **capped exponential backoff** between attempts:
  ``min(rpc_backoff_base_s * rpc_backoff_factor**(attempt-1),
  rpc_backoff_max_s)``;
* a bounded attempt budget (``rpc_max_attempts``) after which the call is
  abandoned and counted, never silently retried forever;
* **per-channel probes** (attempts / retries / timeouts / failures /
  abandoned) so scenarios can assert how hard the retry layer worked.

Calls complete either positively (:meth:`RetryCall.complete`, e.g. the EL
ack arrived) or with an explicit failure signal (:meth:`RetryCall.fail`,
e.g. the checkpoint server refused or aborted a store) — the failure path
skips the timeout and backs off immediately, modelling a connection
refused/reset against a dead service.

With ``rpc_timeout_s == 0`` (the default) the whole layer is disabled:
clients keep their direct send paths and no timer events enter the heap,
so every recorded benchmark checksum stays bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.runtime.config import ClusterConfig
from repro.simulator.engine import Simulator


@dataclass(frozen=True)
class RetryPolicy:
    """Immutable timeout/backoff parameters (derived from the config)."""

    timeout_s: float = 0.0
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    max_attempts: int = 8

    @classmethod
    def from_config(cls, config: ClusterConfig) -> "RetryPolicy":
        return cls(
            timeout_s=config.rpc_timeout_s,
            backoff_base_s=config.rpc_backoff_base_s,
            backoff_factor=config.rpc_backoff_factor,
            backoff_max_s=config.rpc_backoff_max_s,
            max_attempts=config.rpc_max_attempts,
        )

    @property
    def enabled(self) -> bool:
        return self.timeout_s > 0

    def backoff_s(self, attempt: int) -> float:
        """Delay before re-attempting after attempt number ``attempt``."""
        return min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )


@dataclass
class RetryStats:
    """Per-channel accounting (one instance per named service channel)."""

    attempts: int = 0       # sends issued, including re-sends
    completions: int = 0    # calls that completed positively
    retries: int = 0        # re-sends (attempts beyond each call's first)
    timeouts: int = 0       # attempts that hit the deadline
    failures: int = 0       # attempts failed explicitly (refused/aborted)
    abandoned: int = 0      # calls dropped after max_attempts

    def snapshot(self) -> dict[str, int]:
        return {
            "attempts": self.attempts,
            "completions": self.completions,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "abandoned": self.abandoned,
        }


class RetryCall:
    """One logical call: owns the attempt counter and the pending timer."""

    __slots__ = ("channel", "send", "arm_timeout", "attempt", "done", "_timer")

    def __init__(
        self,
        channel: "RetryChannel",
        send: Callable[["RetryCall"], None],
        arm_timeout: bool,
    ):
        self.channel = channel
        self.send = send
        self.arm_timeout = arm_timeout
        self.attempt = 0
        self.done = False
        self._timer = None

    # -- outcomes (idempotent: late acks after a retry are harmless) ----- #

    def complete(self) -> None:
        """The call succeeded; cancels the pending timer, stops retrying."""
        if self.done:
            return
        self.done = True
        self._cancel_timer()
        self.channel.stats.completions += 1

    def fail(self) -> None:
        """Explicit failure signal (service refused or aborted the call):
        back off immediately instead of waiting for the timeout."""
        if self.done:
            return
        self._cancel_timer()
        self.channel.stats.failures += 1
        self.channel._after_attempt_failed(self)

    # -- internal -------------------------------------------------------- #

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _fire_attempt(self) -> None:
        if self.done or not self.channel.active():
            self.done = True
            return
        self.attempt += 1
        self.channel.stats.attempts += 1
        if self.attempt > 1:
            self.channel.stats.retries += 1
        if self.arm_timeout:
            self._timer = self.channel.sim.schedule(
                self.channel.policy.timeout_s, self._timed_out
            )
        self.send(self)

    def _timed_out(self) -> None:
        if self.done:
            return
        self._timer = None
        self.channel.stats.timeouts += 1
        self.channel._after_attempt_failed(self)


class RetryChannel:
    """A named service channel (e.g. ``"el_log"``) sharing one policy.

    ``call(send)`` issues ``send(call)`` immediately and re-issues it after
    timeouts/failures with capped exponential backoff.  ``send`` must
    resolve routing *at send time* (e.g. look the shard up per attempt) so
    a retry lands on the post-failover owner, and must eventually invoke
    ``call.complete()`` or ``call.fail()`` from its delivery callbacks.
    """

    __slots__ = ("sim", "policy", "stats", "active")

    def __init__(
        self,
        sim: Simulator,
        policy: RetryPolicy,
        stats: Optional[RetryStats] = None,
        active: Optional[Callable[[], bool]] = None,
    ):
        self.sim = sim
        self.policy = policy
        self.stats = stats if stats is not None else RetryStats()
        self.active = active if active is not None else (lambda: True)

    def call(
        self, send: Callable[[RetryCall], None], arm_timeout: bool = True
    ) -> RetryCall:
        """Start a retried call; ``arm_timeout=False`` for calls whose
        failures are signalled explicitly (no deadline timer needed)."""
        call = RetryCall(self, send, arm_timeout)
        call._fire_attempt()
        return call

    def _after_attempt_failed(self, call: RetryCall) -> None:
        if call.attempt >= self.policy.max_attempts:
            call.done = True
            self.stats.abandoned += 1
            return
        self.sim.schedule(self.policy.backoff_s(call.attempt), call._fire_attempt)
