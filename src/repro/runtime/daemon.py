"""The Vdaemon: generic communication daemon of MPICH-V (paper §IV-A).

One daemon runs per MPI process.  It "handles the effective communications,
namely sending, receiving, reordering messages, establishing connections
with all components of the system and detecting failures", and calls the
fault-tolerance protocol hooks (:class:`repro.core.protocol_base.VProtocol`)
in the relevant routines.

Model notes
-----------

* The daemon is a **single thread** (select loop) in MPICH-V; we model that
  with a serial processing resource on the receive path — deliveries from
  many peers queue behind each other, preserving per-channel FIFO and
  creating the daemon's natural backpressure.
* The separation between the MPI process and the daemon (a pair of system
  pipes) costs a fixed per-message overhead plus a copy at the pipe
  bandwidth; this is the measured ~35 µs latency gap between MPICH-P4 and
  MPICH-Vdummy (Fig. 6(a)).
* Reception order at the daemon is *the* non-deterministic event: the
  daemon assigns the reception sequence number (rsn), creates the
  determinant, posts it to the Event Logger, and only then hands the
  message to the MPI matching layer.

Recovery (§III-A): a restarted daemon restores the checkpoint image,
collects determinants (from the EL, or from every peer when there is
none), asks peers to re-send logged payloads, and replays deliveries in
determinant order until it reaches the pre-crash state; the MPI process
re-executes on top, re-generating identical sends which receivers
de-duplicate by (sender, ssn).

Partitioned runs (``partition_ranks > 0``,
:mod:`repro.simulator.partition`): every *timed* cross-rank interaction
of the daemon flows
through ``network.transfer`` — the single seam the conservative-window
exchange intercepts.  The remaining direct cross-rank calls
(``peer_died`` / ``on_peer_restarted`` fan-outs, dispatcher
notifications, checkpoint-commit bookkeeping) are synchronous
shared-state updates executed *inside* the event that triggers them;
under the facade's global ``(time, seq)`` merge every event still
executes at exactly its single-engine position, so these shared-state
seams observe the same daemon states in the same order as the
single-engine run and need no exchange routing.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.core.events import Determinant
from repro.core.piggyback import Piggyback
from repro.core.protocol_base import VProtocol, make_protocol
from repro.core.sender_log import SenderLog
from repro.metrics.probes import ProcessProbes, RecoveryRecord
from repro.runtime.channel import PlanSelector
from repro.runtime.config import ClusterConfig, StackSpec
from repro.simulator.engine import SerialDrain, SimulationError
from repro.simulator.process import Future, SimProcess

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster


@dataclass(slots=True)
class WireMessage:
    """Envelope of one daemon-to-daemon message."""

    kind: str                # app | replay | ctl_*
    src: int
    dst: int
    ssn: int = 0
    tag: int = 0
    nbytes: int = 0
    payload: Any = None
    pb: Piggyback = field(default_factory=Piggyback)
    dep: int = 0
    epoch: int = 0
    # only control messages carry metadata (and always pass it
    # explicitly); None on the app path saves a dict per message
    meta: Optional[dict] = None


class Vdaemon:
    """Per-rank communication daemon + protocol host."""

    __slots__ = (
        "cluster", "sim", "network", "rank", "spec", "config", "probes",
        "host", "wire_sink", "protocol", "sender_log", "alive", "clock", "ssn_next",
        "last_ssn", "_proc_busy_until", "_recv_drain", "_plan_send",
        "_recv_delay_cache", "deliver_to_app", "trace_sink", "in_replay",
        "recovering", "_replay_dets", "_replay_idx", "_replay_buffer",
        "_fresh_buffer", "_resend_floor", "_stability_waiters",
        "_ckpt_pending", "last_ckpt_clock", "_pending_event_replies",
        "_recovery_proc", "current_recovery",
    )

    def __init__(
        self,
        cluster: "Cluster",
        rank: int,
        spec: StackSpec,
        config: ClusterConfig,
        probes: ProcessProbes,
    ):
        self.cluster = cluster
        self.sim = cluster.sim
        self.network = cluster.network
        self.rank = rank
        self.spec = spec
        self.config = config
        self.probes = probes
        self.host = cluster.host_of(rank)

        self.protocol: VProtocol = make_protocol(
            spec.protocol, rank, cluster.nprocs, config, probes
        )
        self.protocol.bind(self)
        self.sender_log = SenderLog(rank)

        self.alive = True
        self.clock = 0                      # rsn counter
        self.ssn_next: dict[int, int] = {}
        self.last_ssn: dict[int, int] = {}
        self._proc_busy_until = 0.0
        # The single-threaded daemon finishes receptions in strictly
        # increasing _proc_busy_until order, so on a coalescing engine the
        # whole receive pipeline rides one SerialDrain timer instead of
        # one heap entry per _hand_to_app (None = reference path).
        self._recv_drain: Optional[SerialDrain] = (
            SerialDrain(self.sim) if self.sim.coalesced else None
        )
        self._plan_send = PlanSelector(config)
        #: wire-delivery entry point peers address.  Defaults to the
        #: layered :meth:`on_wire`; cluster wiring rebinds it to a fused
        #: per-daemon delivery closure when ``config.delivery_fastpath``
        #: is on (see runtime/fastpath.py).  Senders resolve it through
        #: the daemon at send time, so the rebind is a pure seam swap.
        self.wire_sink: Callable[[WireMessage], None] = self.on_wire
        #: nbytes -> receive-side base delay (pure in nbytes given config)
        self._recv_delay_cache: dict[int, float] = {}

        #: callback into the MPI matching layer; set by MpiContext
        self.deliver_to_app: Optional[Callable[[WireMessage], None]] = None
        #: lifecycle recorder (time_s, kind, rank, detail); set by
        #: metrics.trace.Timeline.attach — None means tracing is off
        self.trace_sink: Optional[Callable[[float, str, int, str], None]] = None

        # replay machinery
        self.in_replay = False
        #: True between restart and replay start: incoming messages buffer
        self.recovering = False
        self._replay_dets: list[Determinant] = []
        self._replay_idx = 0
        self._replay_buffer: dict[tuple[int, int], WireMessage] = {}
        self._fresh_buffer: list[WireMessage] = []
        self._resend_floor: dict[int, int] = {}

        # pessimistic stability gating
        self._stability_waiters: list[Future] = []

        # checkpointing
        self._ckpt_pending: Optional[int] = None   # wave id or -1 (solo)
        self.last_ckpt_clock = 0

        # recovery bookkeeping
        self._pending_event_replies: dict[int, Future] = {}
        self._recovery_proc: Optional[SimProcess] = None
        self.current_recovery: Optional[RecoveryRecord] = None

    # ------------------------------------------------------------------ #
    # helpers

    @property
    def is_logging(self) -> bool:
        """True for protocols that create determinants (message logging)."""
        return self.spec.protocol in (
            "vcausal", "manetho", "logon", "pessimistic",
        )

    def _wire_to(self, dst_rank: int, nbytes: int, msg: WireMessage) -> None:
        dst_daemon = self.cluster.daemons[dst_rank]
        self.network.transfer(
            self.host,
            self.cluster.host_of(dst_rank),
            nbytes,
            dst_daemon.wire_sink,
            args=(msg,),
        )

    # ------------------------------------------------------------------ #
    # send path (runs inside the application SimProcess)

    def app_send(self, dst: int, nbytes: int, tag: int = 0, payload: Any = None):
        """Generator: full send path; returns the assigned ssn."""
        cfg = self.config
        if self.trace_sink is not None:
            self.trace_sink(self.sim.now, "send", self.rank, f"-> {dst} ({nbytes} B)")
        if self.protocol.blocking_on_stability:
            # pessimistic logging: wait until all own events are stable
            while getattr(self.protocol, "stability_gap")() > 0:
                fut = Future(self.sim, f"stability@{self.rank}")
                self._stability_waiters.append(fut)
                yield fut

        ssn = self.ssn_next.get(dst, 0) + 1
        self.ssn_next[dst] = ssn

        # -- stage 1: the MPI stack + the app→daemon pipe crossing --------
        pre = cfg.mpi_software_latency_s / 2.0
        if self.spec.daemon:
            pre += cfg.daemon_overhead_s / 2.0
            pre += nbytes * 8.0 / cfg.daemon_copy_bandwidth_bps
        if self.spec.sender_based_logging:
            self.sender_log.record(dst, ssn, tag, nbytes, payload)
            self.probes.sender_log_bytes = self.sender_log.bytes_held
            self.probes.sender_log_messages = self.sender_log.messages_held
            pre += nbytes * 8.0 / cfg.sender_log_bandwidth_bps
        if self.is_logging:
            pre += cfg.logging_fixed_latency_s / 2.0
        yield pre

        # -- stage 2: the daemon builds the piggyback (after the pipes,
        #    so EL acks race the software stack, not just the wire) -------
        pb = self.protocol.build_piggyback(dst)
        plan = self._plan_send(nbytes)

        self.probes.app_messages_sent += 1
        self.probes.app_payload_bytes_sent += nbytes
        self.probes.piggyback_bytes_sent += pb.nbytes
        self.probes.piggyback_events_sent += pb.n_events
        self.probes.header_bytes_sent += plan.header_bytes
        if pb.n_events:
            self.probes.messages_with_piggyback += 1

        post = pb.build_cost_s + plan.handshake_latency_s
        if post > 0:
            yield post

        msg = WireMessage(
            kind="app",
            src=self.rank,
            dst=dst,
            ssn=ssn,
            tag=tag,
            nbytes=nbytes,
            payload=payload,
            pb=pb,
            dep=self.clock,
            epoch=self.cluster.epoch,
        )
        self._wire_to(dst, nbytes + pb.nbytes + plan.header_bytes, msg)
        return ssn

    # ------------------------------------------------------------------ #
    # receive path (network delivery callbacks)

    # simlint: hot
    def on_wire(self, msg: WireMessage) -> None:
        if msg.epoch != self.cluster.epoch:
            return  # stale message from before a global restart
        if not self.alive:
            return  # dropped; covered by the sender-based log
        if msg.kind in ("app", "replay"):
            self._on_app_message(msg)
        elif msg.kind == "ctl_event_request":
            self._on_event_request(msg)
        elif msg.kind == "ctl_event_reply":
            self._on_event_reply(msg)
        elif msg.kind == "ctl_resend_request":
            self._on_resend_request(msg)
        elif msg.kind == "ctl_ckpt_notify":
            self._on_ckpt_notify(msg)
        else:
            raise SimulationError(f"unknown wire kind {msg.kind!r}")

    def _recv_base_delay(self, msg: WireMessage) -> float:
        delay = self._recv_delay_cache.get(msg.nbytes)
        if delay is None:
            cfg = self.config
            nbytes = msg.nbytes
            delay = cfg.mpi_software_latency_s / 2.0
            if self.spec.daemon:
                delay += cfg.daemon_overhead_s / 2.0
                delay += nbytes * 8.0 / cfg.daemon_copy_bandwidth_bps
            if self.is_logging:
                delay += cfg.logging_fixed_latency_s / 2.0
            if self._plan_send(nbytes).receiver_copy:
                delay += nbytes * 8.0 / cfg.daemon_copy_bandwidth_bps
            self._recv_delay_cache[nbytes] = delay
        return delay

    # simlint: hot
    def _on_app_message(self, msg: WireMessage) -> None:
        if self.in_replay or self.recovering:
            key = (msg.src, msg.ssn)
            if key not in self._replay_buffer:
                self._replay_buffer[key] = msg
                if self.in_replay:
                    self._pump_replay()
            return
        if msg.ssn <= self.last_ssn.get(msg.src, 0):
            return  # duplicate of an already-delivered message
        # the single-threaded daemon processes receptions serially
        start = max(self.sim.now, self._proc_busy_until)
        # protocol mutations happen in arrival order (== delivery order)
        pb_cost = self.protocol.accept_piggyback(msg.src, msg.pb, msg.dep)
        det = self._create_determinant(msg)
        duration = self._recv_base_delay(msg) + pb_cost
        ready = start + duration
        self._proc_busy_until = ready
        drain = self._recv_drain
        if drain is not None:
            drain.enqueue(ready, self._hand_to_app, msg, det)
        else:
            self.sim.post(ready, self._hand_to_app, msg, det)

    def _create_determinant(self, msg: WireMessage) -> Optional[Determinant]:
        self.last_ssn[msg.src] = msg.ssn
        if not self.is_logging:
            return None
        self.clock += 1
        self.probes.receptions = self.clock
        det = Determinant(
            creator=self.rank,
            clock=self.clock,
            sender=msg.src,
            ssn=msg.ssn,
            dep=msg.dep,
        )
        self.protocol.on_local_event(det)
        if self.spec.event_logger:
            self._post_to_el(det)
        return det

    def _hand_to_app(self, msg: WireMessage, det: Optional[Determinant]) -> None:
        if self.trace_sink is not None:
            # recorded even for a dead rank: the timeline shows the arrival
            # the crash swallowed, exactly as the old wrapper did
            self.trace_sink(
                self.sim.now, "deliver", self.rank, f"<- {msg.src} ssn={msg.ssn}"
            )
        if not self.alive:
            return
        if self.deliver_to_app is None:
            raise SimulationError(f"rank {self.rank}: no MPI endpoint attached")
        self.deliver_to_app(msg)

    # ------------------------------------------------------------------ #
    # Event Logger client

    def _post_to_el(self, det: Determinant) -> None:
        group = self.cluster.event_logger
        if group is None:
            return
        self.probes.el_events_logged += 1
        self._el_log_send((det,))

    def _el_log_send(self, dets: tuple) -> None:
        """Ship one log message to this rank's shard.

        With the retry layer disabled (the default) this is the historical
        fire-and-forget post.  With it enabled, the ack doubles as the
        completion signal: a post swallowed by a dead shard times out and
        is re-sent — the shard is re-resolved per attempt, so the retry
        lands on the failover owner once the key range has moved.
        """
        cfg = self.config
        group = self.cluster.event_logger
        nbytes = cfg.el_event_wire_bytes * len(dets)
        policy = self.cluster.retry_policy
        if not policy.enabled:
            shard = group.shard_for(self.rank)
            self.network.transfer(
                self.host,
                shard.host,
                nbytes,
                shard.receive_log,
                args=(self.rank, dets, self._el_ack, self.host),
            )
            return
        channel = self.cluster.rpc_channel("el_log")

        def _attempt(call) -> None:
            if not self.alive:
                call.complete()  # crashed client: drop, recovery re-logs
                return
            shard = group.shard_for(self.rank)

            def _ack(vector, call=call) -> None:
                call.complete()
                self._el_ack(vector)

            self.network.transfer(
                self.host,
                shard.host,
                nbytes,
                shard.receive_log,
                args=(self.rank, dets, _ack, self.host),
            )

        channel.call(_attempt)

    def on_el_relog_request(self, clock_after: int) -> None:
        """Failover re-log: the shard that absorbed our key range asks for
        every determinant above its disk's stable clock.  Unacked
        determinants are by definition still held (unpruned) here, so the
        suffix is rebuilt from the protocol's own causal structures and
        re-posted as one ordinary log message (duplicates are discarded
        by the EL store)."""
        if not self.alive:
            return
        group = self.cluster.event_logger
        if group is None:
            return
        dets = tuple(
            d
            for d in self.protocol.events_created_by(self.rank)
            if d.clock > clock_after
        )
        if not dets:
            return
        self.cluster.probes.el_relogged_determinants += len(dets)
        self._el_log_send(dets)

    def el_vector_push(self, stable_vector: list[int]) -> None:
        """Broadcast-strategy stable vector pushed by an EL shard."""
        if not self.alive:
            return
        self.protocol.on_el_ack(stable_vector)

    def _el_ack(self, stable_vector: list[int]) -> None:
        if not self.alive:
            return
        self.probes.el_acks_received += 1
        self.protocol.on_el_ack(stable_vector)
        if self.protocol.blocking_on_stability and self._stability_waiters:
            if getattr(self.protocol, "stability_gap")() == 0:
                waiters, self._stability_waiters = self._stability_waiters, []
                for fut in waiters:
                    fut.resolve(None)

    # ------------------------------------------------------------------ #
    # checkpointing

    def request_checkpoint(self, wave: Optional[int] = None) -> None:
        self._ckpt_pending = wave if wave is not None else -1

    @property
    def checkpoint_pending(self) -> bool:
        return self._ckpt_pending is not None

    def take_checkpoint(self):
        """Generator (runs in the app process at a safe poll point)."""
        if self.trace_sink is not None:
            self.trace_sink(self.sim.now, "checkpoint", self.rank, "")
        wave = self._ckpt_pending
        self._ckpt_pending = None
        cfg = self.config
        ctx = self.cluster.contexts[self.rank]
        snapshot = {
            "clock": self.clock,
            "ssn_next": dict(self.ssn_next),
            "last_ssn": dict(self.last_ssn),
            "protocol": self.protocol.export_state(),
            "sender_log": self.sender_log.export_state(),
            "app_state": copy.deepcopy(ctx.state),
            "endpoint": ctx.export_pending(),
        }
        image_bytes = (
            ctx.state_nbytes
            + self.sender_log.bytes_held
            + self.protocol.volatile_bytes()
            + 256 * 1024  # process text/stack baseline
        )
        self.last_ckpt_clock = self.clock
        # blocking part of the checkpoint (fork + image setup)
        yield cfg.checkpoint_fixed_overhead_s
        wave_id = wave if wave is not None and wave >= 0 else None
        server = self.cluster.checkpoint_server
        policy = self.cluster.retry_policy
        if not (policy.enabled and cfg.ckpt_server_failover):
            server.store(
                self.rank,
                image_bytes,
                snapshot,
                self.host,
                on_commit=lambda img: self._ckpt_committed(snapshot),
                wave=wave_id,
            )
            return
        # retried store: no deadline timer (a multi-megabyte image can
        # legitimately stream for a long time) — failure is signalled
        # explicitly, by a refused connection or an aborted transaction
        channel = self.cluster.rpc_channel("ckpt_store")

        def _attempt(call) -> None:
            if not self.alive:
                call.complete()  # crashed mid-retry: the image is moot
                return

            def _committed(img, call=call) -> None:
                call.complete()
                self._ckpt_committed(snapshot)

            accepted = server.store(
                self.rank,
                image_bytes,
                snapshot,
                self.host,
                on_commit=_committed,
                on_abort=call.fail,
                wave=wave_id,
            )
            if not accepted:
                call.fail()  # server down: back off, retry

        channel.call(_attempt, arm_timeout=False)

    def _ckpt_committed(self, snapshot: dict) -> None:
        """Notify peers so they can GC sender-based payloads (§IV-B.3)."""
        if not self.spec.sender_based_logging:
            return
        for peer in range(self.cluster.nprocs):
            if peer == self.rank:
                continue
            msg = WireMessage(
                kind="ctl_ckpt_notify",
                src=self.rank,
                dst=peer,
                epoch=self.cluster.epoch,
                meta={"last_ssn": dict(snapshot["last_ssn"])},
            )
            self._wire_to(peer, 16 + 8 * self.cluster.nprocs, msg)

    def _on_ckpt_notify(self, msg: WireMessage) -> None:
        ssn_upto = msg.meta["last_ssn"].get(self.rank, 0)
        self.sender_log.gc_destination(msg.src, ssn_upto)
        self.probes.sender_log_bytes = self.sender_log.bytes_held
        self.probes.sender_log_messages = self.sender_log.messages_held

    # ------------------------------------------------------------------ #
    # failure handling

    def kill(self) -> None:
        """Crash: lose volatile state (it is rebuilt by recovery)."""
        self.alive = False
        self.in_replay = False
        self.recovering = False
        self._replay_buffer.clear()
        self._fresh_buffer.clear()
        self._replay_dets = []
        self._replay_idx = 0
        for fut in self._stability_waiters:
            fut.cancel()
        self._stability_waiters.clear()
        for fut in self._pending_event_replies.values():
            fut.cancel()
        self._pending_event_replies.clear()
        if self._recovery_proc is not None:
            self._recovery_proc.kill()
            self._recovery_proc = None

    def peer_died(self, peer: int) -> None:
        """A peer crashed: give up waiting for its event reply (if any)."""
        fut = self._pending_event_replies.pop(peer, None)
        if fut is not None and not fut.resolved:
            fut.resolve([])

    def hard_reset(self, snapshot: Optional[dict]) -> None:
        """Reset daemon state to a checkpoint snapshot (or initial state)."""
        self.alive = True
        self.in_replay = False
        self._replay_buffer.clear()
        self._fresh_buffer.clear()
        self._replay_dets = []
        self._replay_idx = 0
        self._proc_busy_until = self.sim.now
        self._stability_waiters.clear()
        self._pending_event_replies.clear()
        self._ckpt_pending = None
        self.protocol = make_protocol(
            self.spec.protocol, self.rank, self.cluster.nprocs, self.config, self.probes
        )
        self.protocol.bind(self)
        self.sender_log = SenderLog(self.rank)
        # the ssn tables are mutated in place: the fused delivery closures
        # (runtime/fastpath.py) bind these dicts at wiring time, so their
        # identity must survive a reset
        self.ssn_next.clear()
        self.last_ssn.clear()
        if snapshot is None:
            self.clock = 0
            self.last_ckpt_clock = 0
        else:
            self.clock = snapshot["clock"]
            self.ssn_next.update(snapshot["ssn_next"])
            self.last_ssn.update(snapshot["last_ssn"])
            self.last_ckpt_clock = snapshot["clock"]
            self.protocol.restore_state(copy.deepcopy(snapshot["protocol"]))
            self.sender_log.restore_state(copy.deepcopy(snapshot["sender_log"]))

    # ------------------------------------------------------------------ #
    # recovery orchestration (single-rank restart of logging protocols)

    def begin_recovery(self, snapshot: Optional[dict], record: RecoveryRecord) -> None:
        """Start the recovery control process for this rank."""
        self.hard_reset(snapshot)
        self.recovering = True
        self.current_recovery = record
        proc = SimProcess(
            self.sim,
            f"recovery-{self.rank}",
            lambda: self._recovery_gen(snapshot, record),
        )
        self._recovery_proc = proc
        proc.start()

    def _recovery_gen(self, snapshot: Optional[dict], record: RecoveryRecord):
        cfg = self.config
        cluster = self.cluster
        record.restart_time = self.sim.now

        # ---- phase 1: collect the determinants to replay ---------------
        t0 = self.sim.now
        dets: list[Determinant] = []
        if self.spec.event_logger and cluster.event_logger is not None:
            fut = Future(self.sim, f"el-fetch@{self.rank}")
            if cluster.retry_policy.enabled:
                self._el_fetch_with_retry(fut)
            else:
                cluster.event_logger.shard_for(self.rank).fetch_events(
                    self.rank, self.last_ckpt_clock, fut.resolve, self.host
                )
            dets = list((yield fut))
            # unpack/merge the recovered determinants
            merge = len(dets) * cfg.cost_deserialize_event_s
            if merge > 0:
                yield merge
            record.event_sources = 1
            record.collection_bytes = len(dets) * cfg.event_record_bytes
        elif self.is_logging:
            futures: dict[int, Future] = {}
            for peer in range(cluster.nprocs):
                if peer == self.rank or not cluster.daemons[peer].alive:
                    continue
                fut = Future(self.sim, f"event-reply@{self.rank}<-{peer}")
                futures[peer] = fut
                self._pending_event_replies[peer] = fut
                msg = WireMessage(
                    kind="ctl_event_request",
                    src=self.rank,
                    dst=peer,
                    epoch=cluster.epoch,
                    meta={"clock_after": self.last_ckpt_clock},
                )
                self._wire_to(peer, cfg.recovery_request_bytes, msg)
            merged: dict[int, Determinant] = {}
            for peer, fut in futures.items():
                reply = yield fut
                self._pending_event_replies.pop(peer, None)
                # every peer returns its whole view of our history, so the
                # recovering node merges (n-1)× duplicated volume — the
                # paper's "reclaiming all events from all other nodes"
                merge = len(reply) * cfg.cost_deserialize_event_s
                if merge > 0:
                    yield merge
                for det in reply:
                    merged[det.clock] = det
                record.collection_bytes += len(reply) * cfg.event_record_bytes
            dets = [merged[c] for c in sorted(merged)]
            record.event_sources = len(futures)
        record.event_collection_s = self.sim.now - t0
        record.events_collected = len(dets)

        # keep only a contiguous replayable prefix above the checkpoint
        replay: list[Determinant] = []
        expected = self.last_ckpt_clock + 1
        for det in sorted({d.clock: d for d in dets}.values(), key=lambda d: d.clock):
            if det.clock == expected:
                replay.append(det)
                expected += 1
            elif det.clock > expected:
                break

        # ---- phase 2: ask peers to re-send logged payloads -------------
        self._replay_dets = replay
        self._replay_idx = 0
        self.in_replay = bool(replay)
        self.recovering = False
        self.request_resends()

        # ---- phase 3: restart the application ---------------------------
        app_state = copy.deepcopy(snapshot["app_state"]) if snapshot else None
        endpoint = copy.deepcopy(snapshot["endpoint"]) if snapshot else None
        self.probes.restarts += 1
        cluster.restart_app(self.rank, app_state, endpoint)
        self._recovery_proc = None
        cluster.notify_restarted(self.rank)
        if replay:
            self._pump_replay()  # payloads may have arrived while collecting
        else:
            self._finish_replay()

    def _el_fetch_with_retry(self, fut: Future) -> None:
        """Determinant fetch with timeout/retry: a fetch sent into a dead
        or mid-failover shard is silently dropped, and without a retry the
        recovery generator would wait on ``fut`` forever.  The shard is
        re-resolved per attempt; duplicate replies (a slow first answer
        racing a retry's) resolve the future only once."""
        cluster = self.cluster
        channel = cluster.rpc_channel("el_fetch")

        def _attempt(call) -> None:
            if fut.cancelled or fut.resolved or not self.recovering:
                call.complete()  # recovery superseded (e.g. killed again)
                return
            shard = cluster.event_logger.shard_for(self.rank)

            def _reply(dets, call=call) -> None:
                call.complete()
                if not fut.cancelled and not fut.resolved:
                    fut.resolve(dets)

            shard.fetch_events(self.rank, self.last_ckpt_clock, _reply, self.host)

        channel.call(_attempt)

    def request_resends(self) -> None:
        """Ask every peer to re-send logged payloads we have not delivered."""
        cluster = self.cluster
        for peer in range(cluster.nprocs):
            if peer == self.rank:
                continue
            floor = self.last_ssn.get(peer, 0)
            self._resend_floor[peer] = floor
            if not cluster.daemons[peer].alive:
                continue  # it will re-execute (and re-send) when it recovers
            msg = WireMessage(
                kind="ctl_resend_request",
                src=self.rank,
                dst=peer,
                epoch=cluster.epoch,
                meta={"ssn_after": floor},
            )
            self._wire_to(peer, self.config.recovery_request_bytes, msg)

    def on_peer_restarted(self, peer: int) -> None:
        """Re-issue the resend request lost while ``peer`` was down."""
        if self.in_replay and peer != self.rank:
            msg = WireMessage(
                kind="ctl_resend_request",
                src=self.rank,
                dst=peer,
                epoch=self.cluster.epoch,
                meta={"ssn_after": self._resend_floor.get(peer, 0)},
            )
            self._wire_to(peer, self.config.recovery_request_bytes, msg)

    # -- peer-side recovery services ------------------------------------ #

    def _on_event_request(self, msg: WireMessage) -> None:
        cfg = self.config
        clock_after = msg.meta["clock_after"]
        dets = [
            d
            for d in self.protocol.events_created_by(msg.src)
            if d.clock > clock_after
        ]
        # searching the volatile structures and serializing the reply
        search_cost = cfg.cost_piggyback_fixed_s + len(dets) * cfg.cost_serialize_event_s
        reply = WireMessage(
            kind="ctl_event_reply",
            src=self.rank,
            dst=msg.src,
            epoch=self.cluster.epoch,
            meta={"events": dets},
        )
        nbytes = cfg.el_ack_wire_bytes + len(dets) * cfg.event_record_bytes

        def _send():
            self._wire_to(msg.src, nbytes, reply)

        self.sim.schedule(search_cost, _send)

    def _on_event_reply(self, msg: WireMessage) -> None:
        fut = self._pending_event_replies.get(msg.src)
        if fut is not None and not fut.resolved:
            fut.resolve(msg.meta["events"])

    def _on_resend_request(self, msg: WireMessage) -> None:
        requester = msg.src
        ssn_after = msg.meta["ssn_after"]
        for entry in self.sender_log.sends_to(requester, ssn_after):
            replay = WireMessage(
                kind="replay",
                src=self.rank,
                dst=requester,
                ssn=entry.ssn,
                tag=entry.tag,
                nbytes=entry.nbytes,
                payload=entry.payload,
                pb=Piggyback(),
                dep=self.clock,
                epoch=self.cluster.epoch,
            )
            self._wire_to(requester, entry.nbytes + 32, replay)

    # -- replay engine ---------------------------------------------------- #

    def _pump_replay(self) -> None:
        """Deliver buffered payloads in determinant order."""
        while self._replay_idx < len(self._replay_dets):
            det = self._replay_dets[self._replay_idx]
            key = (det.sender, det.ssn)
            msg = self._replay_buffer.pop(key, None)
            if msg is None:
                return  # wait for the payload to arrive
            self._replay_idx += 1
            self._deliver_replayed(msg, det)
        if self._replay_idx >= len(self._replay_dets):
            self._finish_replay()

    def _deliver_replayed(self, msg: WireMessage, det: Determinant) -> None:
        cfg = self.config
        start = max(self.sim.now, self._proc_busy_until)
        pb_cost = self.protocol.accept_piggyback(msg.src, msg.pb, msg.dep)
        self.last_ssn[msg.src] = max(self.last_ssn.get(msg.src, 0), msg.ssn)
        self.clock = det.clock
        self.probes.receptions = self.clock
        self.probes.replayed_receptions += 1
        self.protocol.on_local_event(det)
        if self.spec.event_logger:
            self._post_to_el(det)   # duplicate posts are discarded by the EL
        duration = self._recv_base_delay(msg) + pb_cost
        ready = start + duration
        self._proc_busy_until = ready
        drain = self._recv_drain
        if drain is not None:
            drain.enqueue(ready, self._hand_to_app, msg, det)
        else:
            self.sim.post(ready, self._hand_to_app, msg, det)

    def _finish_replay(self) -> None:
        if not self.in_replay and not self._fresh_buffer and not self._replay_buffer:
            return
        self.in_replay = False
        if self.current_recovery is not None:
            self.current_recovery.replay_end_time = self.sim.now
        # messages that were not part of the replayed history become fresh
        # receptions, in deterministic (src, ssn) order
        leftovers = sorted(self._replay_buffer.items())
        self._replay_buffer.clear()
        for _key, msg in leftovers:
            self._on_app_message(msg)
        for msg in self._fresh_buffer:
            self._on_app_message(msg)
        self._fresh_buffer.clear()
