"""MPICH-V runtime components (Fig. 4/5 of the paper).

* :mod:`~repro.runtime.config` — every calibrated constant of the model.
* :mod:`~repro.runtime.daemon` — the Vdaemon generic communication daemon.
* :mod:`~repro.runtime.channel` — short/eager/rendezvous protocol layer.
* :mod:`~repro.runtime.dispatcher` — launch, failure detection, restarts.
* :mod:`~repro.runtime.checkpoint_server` — transactional image store.
* :mod:`~repro.runtime.checkpoint_scheduler` — checkpoint policies.
* :mod:`~repro.runtime.failure` — fault-injection plans.
* :mod:`~repro.runtime.cluster` — deployment assembly and run helpers.
"""

from repro.runtime.config import ClusterConfig, StackSpec, STACKS
from repro.runtime.cluster import Cluster, RunResult

__all__ = ["ClusterConfig", "StackSpec", "STACKS", "Cluster", "RunResult"]
