"""The ch_v protocol layer: short / eager / rendezvous (paper Fig. 4).

MPICH builds a full MPI library from a *channel*; the channel's protocol
layer picks a wire strategy per message size:

* **short** — payload inlined in the envelope; one wire message, minimal
  fixed cost.
* **eager** — payload pushed immediately after the envelope; an extra
  buffer copy is charged at the receiver.
* **rendezvous** — for messages above the eager threshold the sender first
  exchanges an RTS/CTS handshake (one round trip of envelope messages)
  before streaming the payload, avoiding unexpected-buffer blowups.  This
  produces the characteristic bandwidth dip around the threshold in the
  NetPIPE curve (Fig. 6(b)).

The planner returns everything the daemon charges: extra header bytes,
pre-wire handshake latency and extra copy costs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.runtime.config import ClusterConfig

#: envelope bytes added to every application message by the channel
ENVELOPE_BYTES = 32


@dataclass(frozen=True)
class SendPlan:
    """Wire strategy decided by the protocol layer for one message."""

    mode: str                   # "short" | "eager" | "rendezvous"
    header_bytes: int           # envelope (+ CTS bookkeeping for rendezvous)
    handshake_latency_s: float  # RTS/CTS round trip charged before the wire
    receiver_copy: bool         # eager copies through an unexpected buffer


class PlanSelector:
    """Per-config plan chooser: the three possible :class:`SendPlan` values
    are fixed by the config, so the per-message work is two threshold
    compares instead of a dataclass construction (the daemon consults the
    plan twice per message — send and receive side)."""

    __slots__ = ("_short_upto", "_eager_upto", "_short", "_eager", "_rendezvous")

    def __init__(self, config: ClusterConfig):
        self._short_upto = config.short_threshold_bytes
        self._eager_upto = config.eager_threshold_bytes
        self._short = SendPlan(
            mode="short",
            header_bytes=ENVELOPE_BYTES,
            handshake_latency_s=0.0,
            receiver_copy=False,
        )
        self._eager = SendPlan(
            mode="eager",
            header_bytes=ENVELOPE_BYTES,
            handshake_latency_s=0.0,
            receiver_copy=True,
        )
        # rendezvous: one envelope round trip (RTS + CTS) before the payload
        handshake = config.rendezvous_rtt_factor * (
            config.network_latency_s + config.mpi_software_latency_s / 2.0
        )
        self._rendezvous = SendPlan(
            mode="rendezvous",
            header_bytes=2 * ENVELOPE_BYTES,
            handshake_latency_s=handshake,
            receiver_copy=False,
        )

    def __call__(self, nbytes: int) -> SendPlan:
        if nbytes <= self._short_upto:
            return self._short
        if nbytes <= self._eager_upto:
            return self._eager
        return self._rendezvous


def plan_send(nbytes: int, config: ClusterConfig) -> SendPlan:
    """Choose the wire strategy for an ``nbytes`` payload (one-shot form
    of :class:`PlanSelector`, kept for callers outside the hot path)."""
    return PlanSelector(config)(nbytes)
