"""Dispatcher: launch, failure detection, restart (paper §IV-B.1).

The dispatcher "monitors the execution, detecting any fault (node
disconnection) and relaunching crashed MPI process instances".  Recovery
strategy depends on the protocol:

* message-logging protocols (causal, pessimistic) restart **only the
  crashed rank**, which then collects determinants and replays;
* the coordinated-checkpoint protocol restarts **every rank** from the
  last *complete* coordinated wave (or from scratch);
* non-fault-tolerant stacks (P4, Vdummy) treat a fault as fatal.

Overlapping episodes (failure storms): each fault opens a new per-rank
*episode*; stale callbacks from a superseded episode (a rank that died
again before its image arrived, or was resurrected by a newer restart)
are discarded instead of starting duplicate recoveries.  Coordinated
restarts coalesce: a fault detected while a global restart is already
relaunching everyone is absorbed by it, unless the victim had already
been relaunched by the in-flight wave — then one follow-up global
restart is queued.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.metrics.probes import RecoveryRecord
from repro.runtime.checkpoint_server import CheckpointImage
from repro.simulator.engine import SimulationError, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster


class FatalFaultError(SimulationError):
    """A fault hit a stack with no fault-tolerance protocol."""


class Dispatcher:
    """Failure detection and restart orchestration."""

    def __init__(self, sim: Simulator, cluster: "Cluster"):
        self.sim = sim
        self.cluster = cluster
        self.faults_seen = 0
        self.global_restarts = 0
        self.single_restarts = 0
        #: detections absorbed by an already in-flight global restart
        self.coalesced_detections = 0
        #: rank -> id of its newest fault episode; callbacks carry the id
        #: they were scheduled under and no-op once superseded
        self._episode: dict[int, int] = {}
        self._global_inflight = False
        #: ranks already relaunched by the in-flight global restart wave
        self._global_relaunched: set[int] = set()
        #: a follow-up global restart queued behind the in-flight one
        self._global_rerun: Optional[RecoveryRecord] = None

    # ------------------------------------------------------------------ #

    def notice_fault(self, rank: int, fault_time: float) -> None:
        """Called right after a fault is injected; detection is delayed."""
        self.faults_seen += 1
        episode = self._episode.get(rank, 0) + 1
        self._episode[rank] = episode
        cfg = self.cluster.config
        self.sim.schedule(
            cfg.fault_detection_delay_s, self._detected, rank, fault_time, episode
        )

    def _stale(self, rank: int, episode: int) -> bool:
        """True when a callback belongs to a superseded episode: the run
        finished, a newer fault opened a fresh episode, or the rank is
        already back up (resurrected by an overlapping restart)."""
        return (
            self.cluster.finished
            or self._episode.get(rank) != episode
            or self.cluster.daemons[rank].alive
        )

    def _detected(self, rank: int, fault_time: float, episode: int) -> None:
        cluster = self.cluster
        if self._stale(rank, episode):
            return
        spec = cluster.spec
        if spec.protocol == "coordinated" and self._global_inflight:
            record = RecoveryRecord(
                rank=rank, fault_time=fault_time, detect_time=self.sim.now
            )
            if rank in self._global_relaunched and self._global_rerun is None:
                # the in-flight wave already relaunched this rank and it
                # died again: one follow-up global restart is owed
                cluster.probes.recoveries.append(record)
                self._global_rerun = record
            else:
                # the in-flight wave will relaunch this rank anyway
                self.coalesced_detections += 1
            return
        record = RecoveryRecord(
            rank=rank, fault_time=fault_time, detect_time=self.sim.now
        )
        cluster.probes.recoveries.append(record)
        if spec.protocol == "none":
            raise FatalFaultError(
                f"rank {rank} died under non-fault-tolerant stack {spec.name!r}"
            )
        if spec.protocol == "coordinated":
            self.global_restarts += 1
            self._global_restart(record)
        else:
            self.single_restarts += 1
            self._single_restart(rank, record, episode)

    # ------------------------------------------------------------------ #
    # single-rank restart (message logging)

    def _single_restart(self, rank: int, record: RecoveryRecord, episode: int) -> None:
        cfg = self.cluster.config

        def _relaunched() -> None:
            if self._stale(rank, episode):
                return
            self._retrieve_image(rank, record, episode)

        self.sim.schedule(cfg.restart_overhead_s, _relaunched)

    def _retrieve_image(self, rank: int, record: RecoveryRecord, episode: int) -> None:
        cluster = self.cluster
        server = cluster.checkpoint_server
        host = cluster.host_of(rank)

        def _image_delivered(image: Optional[CheckpointImage]) -> None:
            if self._stale(rank, episode):
                return
            snapshot = image.snapshot if image is not None else None
            cluster.daemons[rank].begin_recovery(snapshot, record)

        policy = cluster.retry_policy
        if not (policy.enabled and cluster.config.ckpt_server_failover):
            server.retrieve(rank, host, _image_delivered)
            return

        channel = cluster.rpc_channel("ckpt_retrieve")

        def _attempt(call) -> None:
            if self._stale(rank, episode):
                call.complete()
                return

            def _delivered(image: Optional[CheckpointImage], call=call) -> None:
                call.complete()
                _image_delivered(image)

            if not server.retrieve(rank, host, _delivered):
                call.fail()  # server down: connection refused, back off

        channel.call(_attempt, arm_timeout=False)

    # ------------------------------------------------------------------ #
    # global restart (coordinated checkpointing)

    def _global_restart(self, record: RecoveryRecord) -> None:
        cluster = self.cluster
        cfg = cluster.config
        cluster.epoch += 1
        self._global_inflight = True
        self._global_relaunched = set()
        # stop everything that is still running
        for r in range(cluster.nprocs):
            cluster.kill_rank(r, record_fault=False)
        # fresh episodes: detections already in flight for ranks we just
        # killed belong to the pre-restart world
        for r in range(cluster.nprocs):
            self._episode[r] = self._episode.get(r, 0) + 1
        wave = cluster.checkpoint_server.latest_complete_wave(cluster.nprocs)

        restarted = {"count": 0}

        def _restart_rank(r: int, image: Optional[CheckpointImage]) -> None:
            daemon = cluster.daemons[r]
            snapshot = image.snapshot if image is not None else None
            daemon.hard_reset(snapshot)
            state = None
            pending = None
            if snapshot is not None:
                import copy as _copy

                state = _copy.deepcopy(snapshot["app_state"])
                pending = _copy.deepcopy(snapshot["endpoint"])
            daemon.probes.restarts += 1
            cluster.restart_app(r, state, pending)
            cluster.fire_restart_listeners(r)
            self._global_relaunched.add(r)
            restarted["count"] += 1
            if restarted["count"] == cluster.nprocs:
                record.replay_end_time = self.sim.now
                self._global_inflight = False
                self._global_relaunched = set()
                rerun, self._global_rerun = self._global_rerun, None
                if rerun is not None:
                    self.global_restarts += 1
                    self._global_restart(rerun)

        def _fetch_image(r: int) -> None:
            server = cluster.checkpoint_server
            host = cluster.host_of(r)
            deliver = lambda img, rr=r: _restart_rank(rr, img)
            policy = cluster.retry_policy
            if not (policy.enabled and cfg.ckpt_server_failover):
                server.retrieve_wave(r, wave, host, deliver)
                return
            channel = cluster.rpc_channel("ckpt_retrieve")

            def _attempt(call) -> None:
                def _delivered(image, call=call):
                    call.complete()
                    deliver(image)

                if not server.retrieve_wave(r, wave, host, _delivered):
                    call.fail()

            channel.call(_attempt, arm_timeout=False)

        def _relaunch_all() -> None:
            for r in range(cluster.nprocs):
                if wave is None:
                    _restart_rank(r, None)
                else:
                    _fetch_image(r)

        self.sim.schedule(cfg.restart_overhead_s, _relaunch_all)
