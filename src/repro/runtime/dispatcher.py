"""Dispatcher: launch, failure detection, restart (paper §IV-B.1).

The dispatcher "monitors the execution, detecting any fault (node
disconnection) and relaunching crashed MPI process instances".  Recovery
strategy depends on the protocol:

* message-logging protocols (causal, pessimistic) restart **only the
  crashed rank**, which then collects determinants and replays;
* the coordinated-checkpoint protocol restarts **every rank** from the
  last *complete* coordinated wave (or from scratch);
* non-fault-tolerant stacks (P4, Vdummy) treat a fault as fatal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.metrics.probes import RecoveryRecord
from repro.runtime.checkpoint_server import CheckpointImage
from repro.simulator.engine import SimulationError, Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster


class FatalFaultError(SimulationError):
    """A fault hit a stack with no fault-tolerance protocol."""


class Dispatcher:
    """Failure detection and restart orchestration."""

    def __init__(self, sim: Simulator, cluster: "Cluster"):
        self.sim = sim
        self.cluster = cluster
        self.faults_seen = 0
        self.global_restarts = 0
        self.single_restarts = 0

    # ------------------------------------------------------------------ #

    def notice_fault(self, rank: int, fault_time: float) -> None:
        """Called right after a fault is injected; detection is delayed."""
        self.faults_seen += 1
        cfg = self.cluster.config
        self.sim.schedule(cfg.fault_detection_delay_s, self._detected, rank, fault_time)

    def _detected(self, rank: int, fault_time: float) -> None:
        cluster = self.cluster
        if cluster.finished:
            return
        daemon = cluster.daemons[rank]
        if daemon.alive:
            return  # already restarted by an earlier (overlapping) episode
        record = RecoveryRecord(
            rank=rank, fault_time=fault_time, detect_time=self.sim.now
        )
        cluster.probes.recoveries.append(record)
        spec = cluster.spec
        if spec.protocol == "none":
            raise FatalFaultError(
                f"rank {rank} died under non-fault-tolerant stack {spec.name!r}"
            )
        if spec.protocol == "coordinated":
            self.global_restarts += 1
            self._global_restart(record)
        else:
            self.single_restarts += 1
            self._single_restart(rank, record)

    # ------------------------------------------------------------------ #
    # single-rank restart (message logging)

    def _single_restart(self, rank: int, record: RecoveryRecord) -> None:
        cfg = self.cluster.config

        def _relaunched() -> None:
            self.cluster.checkpoint_server.retrieve(
                rank, self.cluster.host_of(rank), _image_delivered
            )

        def _image_delivered(image: Optional[CheckpointImage]) -> None:
            snapshot = image.snapshot if image is not None else None
            self.cluster.daemons[rank].begin_recovery(snapshot, record)

        self.sim.schedule(cfg.restart_overhead_s, _relaunched)

    # ------------------------------------------------------------------ #
    # global restart (coordinated checkpointing)

    def _global_restart(self, record: RecoveryRecord) -> None:
        cluster = self.cluster
        cfg = cluster.config
        cluster.epoch += 1
        # stop everything that is still running
        for r in range(cluster.nprocs):
            cluster.kill_rank(r, record_fault=False)
        wave = cluster.checkpoint_server.latest_complete_wave(cluster.nprocs)

        restarted = {"count": 0}

        def _restart_rank(r: int, image: Optional[CheckpointImage]) -> None:
            daemon = cluster.daemons[r]
            snapshot = image.snapshot if image is not None else None
            daemon.hard_reset(snapshot)
            state = None
            pending = None
            if snapshot is not None:
                import copy as _copy

                state = _copy.deepcopy(snapshot["app_state"])
                pending = _copy.deepcopy(snapshot["endpoint"])
            daemon.probes.restarts += 1
            cluster.restart_app(r, state, pending)
            restarted["count"] += 1
            if restarted["count"] == cluster.nprocs:
                record.replay_end_time = self.sim.now

        def _relaunch_all() -> None:
            for r in range(cluster.nprocs):
                if wave is None:
                    _restart_rank(r, None)
                else:
                    cluster.checkpoint_server.retrieve_wave(
                        r,
                        wave,
                        cluster.host_of(r),
                        lambda img, rr=r: _restart_rank(rr, img),
                    )

        self.sim.schedule(cfg.restart_overhead_s, _relaunch_all)
