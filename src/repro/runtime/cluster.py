"""Deployment assembly: the whole MPICH-V runtime in one object (Fig. 5).

A :class:`Cluster` wires together the simulator, the network, one NIC per
compute node plus the stable hosts (Event Logger, checkpoint server), the
per-rank daemons and MPI contexts, the dispatcher, the checkpoint
scheduler and the fault plan — then runs the application to completion.

Typical use::

    from repro.runtime.cluster import Cluster

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 1024, payload="hi")
        else:
            msg = yield from ctx.recv(0)
        return ctx.rank

    result = Cluster(nprocs=2, app_factory=app, stack="vcausal").run()
    print(result.sim_time, result.probes.piggyback_fraction)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.distributed_el import EventLoggerGroup, shard_host, shard_partition
from repro.metrics.probes import ClusterProbes
from repro.mpi.api import MpiContext
from repro.runtime.checkpoint_server import CKPT_HOST, CheckpointServer
from repro.runtime.checkpoint_scheduler import CheckpointScheduler
from repro.runtime.config import STACKS, ClusterConfig, StackSpec
from repro.runtime.daemon import Vdaemon
from repro.runtime.dispatcher import Dispatcher
from repro.runtime.failure import FaultPlan
from repro.runtime.fastpath import install_fastpath
from repro.runtime.retry import RetryChannel, RetryPolicy, RetryStats
from repro.simulator.engine import Simulator, make_simulator
from repro.simulator.network import Network
from repro.simulator.partition import (
    PartitionedSimulator,
    derive_lookahead,
    partition_of_rank,
)
from repro.simulator.process import SimProcess
from repro.simulator.rng import SeedSequenceStream

AppFactory = Callable[[MpiContext], Any]


@dataclass
class RunResult:
    """Outcome of one cluster run."""

    stack: str
    nprocs: int
    finished: bool
    sim_time: float                    # completion time of the last rank
    probes: ClusterProbes
    results: dict[int, Any] = field(default_factory=dict)
    events_executed: int = 0
    cluster: Optional["Cluster"] = None

    @property
    def total_flops(self) -> float:
        return self.probes.total("flops")

    @property
    def mflops(self) -> float:
        """Aggregate application Megaflop/s (the Fig. 9 metric)."""
        if self.sim_time <= 0:
            return 0.0
        return self.total_flops / self.sim_time / 1e6


class Cluster:
    """One deployment: compute nodes + stable servers + runtime."""

    def __init__(
        self,
        nprocs: int,
        app_factory: AppFactory,
        stack: str | StackSpec = "vcausal",
        config: Optional[ClusterConfig] = None,
        seed: int = 0,
        checkpoint_policy: str = "none",
        checkpoint_interval_s: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
    ):
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.nprocs = nprocs
        self.app_factory = app_factory
        self.spec: StackSpec = STACKS[stack] if isinstance(stack, str) else stack
        self.config = config if config is not None else ClusterConfig()
        self.seeds = SeedSequenceStream(seed)
        # a partitioned cluster shards the ranks into contiguous blocks
        # advanced inside conservative windows whose width is the minimum
        # cross-partition link latency (see repro.simulator.partition);
        # more partitions than ranks would leave empty blocks
        self.partitions = min(self.config.partition_ranks, nprocs)
        # multiprocess backend: W shared-nothing workers, each owning a
        # contiguous block of the partitions (capped — more workers than
        # partitions would idle); 0 keeps the in-process window loop
        self.partition_workers = (
            min(self.config.partition_workers, self.partitions)
            if self.partitions
            else 0
        )
        if self.partition_workers:
            # the worker facade must be in place at wiring time so every
            # SerialDrain built below registers with it (the cluster is
            # wired once in the parent, then forked per worker)
            from repro.hostexec.sim import WorkerSimulator

            self.sim: Simulator = WorkerSimulator(
                self.partitions,
                derive_lookahead(self.config),
                coalesce=self.config.engine_coalesce,
            )
        else:
            self.sim = make_simulator(
                coalesce=self.config.engine_coalesce,
                partitions=self.partitions,
                lookahead_s=derive_lookahead(self.config) if self.partitions else 0.0,
            )
        self.network = Network(
            self.sim,
            bandwidth_bps=self.config.bandwidth_bps,
            latency_s=self.config.network_latency_s,
            per_message_overhead_bytes=self.config.per_message_overhead_bytes,
            goodput_factor=self.config.goodput_factor,
        )
        for r in range(nprocs):
            self.network.attach(self.host_of(r), full_duplex=self.spec.full_duplex)
        if self.spec.event_logger:
            for k in range(self.config.el_count):
                self.network.attach(shard_host(k))
        # the checkpoint service models the paper's (possibly multiple)
        # stable storage nodes: its link is provisioned above a single
        # Fast-Ethernet NIC so that sender-based log shipping stays feasible
        self.network.attach(
            CKPT_HOST, bandwidth_bps=self.config.checkpoint_server_bandwidth_bps
        )
        if self.partitions:
            # pin every host to its partition: ranks in contiguous blocks,
            # each EL shard with the block of its lowest creator rank, the
            # checkpoint server with block 0 (stable servers talk to all
            # partitions; the (time, seq) merge keeps any placement
            # bit-identical — pinning only shapes the exchange traffic)
            sim = self.sim
            assert isinstance(sim, PartitionedSimulator)
            for r in range(nprocs):
                sim.register_host(
                    self.host_of(r), partition_of_rank(r, nprocs, self.partitions)
                )
            if self.spec.event_logger:
                for k in range(self.config.el_count):
                    sim.register_host(
                        shard_host(k), shard_partition(k, nprocs, self.partitions)
                    )
            sim.register_host(CKPT_HOST, 0)

        self.probes = ClusterProbes()
        self.event_logger: Optional[EventLoggerGroup] = (
            EventLoggerGroup(
                self.sim,
                self.network,
                self.config,
                self.probes,
                nprocs,
                count=self.config.el_count,
                sync_strategy=self.config.el_sync_strategy,
                sync_interval_s=self.config.el_sync_interval_s,
                node_hosts=[self.host_of(r) for r in range(nprocs)],
                tree_fanout=self.config.el_tree_fanout,
                gossip_fanout=self.config.el_gossip_fanout,
            )
            if self.spec.event_logger
            else None
        )
        self.checkpoint_server = CheckpointServer(
            self.sim, self.network, self.config, self.probes, nprocs=nprocs
        )
        self.epoch = 0
        self.retry_policy = RetryPolicy.from_config(self.config)
        self._rpc_channels: dict[str, RetryChannel] = {}
        self._restart_listeners: list[Callable[[int], None]] = []

        self.daemons: dict[int, Vdaemon] = {}
        self.contexts: dict[int, MpiContext] = {}
        for r in range(nprocs):
            daemon = Vdaemon(self, r, self.spec, self.config, self.probes.rank(r))
            self.daemons[r] = daemon
            self.contexts[r] = MpiContext(self, r, daemon)
        if self.config.delivery_fastpath:
            # compile per-endpoint fused delivery closures and swap them
            # in at the wire_sink / ctx.send seams (bit-identical to the
            # layered reference path; see runtime/fastpath.py)
            install_fastpath(self)

        if self.event_logger is not None:
            self.event_logger.active_check = lambda: not self.finished
        if self.event_logger is not None and self.config.el_sync_strategy == "broadcast":
            for r in range(nprocs):
                self.event_logger.register_node_sink(
                    self.host_of(r), self.daemons[r].el_vector_push
                )
        if self.event_logger is not None:
            for r in range(nprocs):
                self.event_logger.register_relog_sink(
                    self.host_of(r), self.daemons[r].on_el_relog_request
                )
        self.dispatcher = Dispatcher(self.sim, self)
        if self.spec.protocol == "coordinated" and checkpoint_policy not in (
            "none",
            "coordinated",
        ):
            raise ValueError("coordinated protocol requires coordinated checkpoints")
        self.scheduler = CheckpointScheduler(
            self.sim,
            self,
            policy=checkpoint_policy,
            interval_s=checkpoint_interval_s,
            rng=self.seeds.generator("checkpoint-scheduler"),
        )
        self.fault_plan = fault_plan

        self.app_procs: dict[int, SimProcess] = {}
        self.finished_ranks: set[int] = set()
        self.results: dict[int, Any] = {}
        self.completion_time: Optional[float] = None
        #: per-rank app exit times; the hostexec driver takes the max
        #: across workers to reconstruct the global completion time
        self._exit_times: dict[int, float] = {}
        self._started = False

    # ------------------------------------------------------------------ #
    # topology helpers

    def host_of(self, rank: int) -> str:
        return f"n{rank}"

    @property
    def finished(self) -> bool:
        return len(self.finished_ranks) == self.nprocs

    # ------------------------------------------------------------------ #
    # lifecycle

    def start(self) -> None:
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        if self.partitions:
            # bootstrap each rank's first events inside its own partition
            # store; scheduler/fault-plan timers stay in partition 0
            sim = self.sim
            assert isinstance(sim, PartitionedSimulator)
            for r in range(self.nprocs):
                sim.enter_partition(
                    partition_of_rank(r, self.nprocs, self.partitions)
                )
                self._make_app_proc(r, None, None).start()
            sim.enter_partition(0)
        else:
            for r in range(self.nprocs):
                self._make_app_proc(r, None, None).start()
        self.scheduler.start()
        if self.fault_plan is not None:
            self.fault_plan.install(self.sim, self)

    def _make_app_proc(self, rank: int, state, pending) -> SimProcess:
        ctx = self.contexts[rank]
        ctx.restore(state, pending)

        def on_exit(proc: SimProcess, result: Any) -> None:
            self._on_app_exit(rank, result)

        proc = SimProcess(
            self.sim,
            f"app-{rank}",
            lambda: self.app_factory(ctx),
            on_exit=on_exit,
        )
        self.app_procs[rank] = proc
        return proc

    def restart_app(self, rank: int, state, pending) -> None:
        """Relaunch the MPI process of ``rank`` (recovery phase 3)."""
        self.finished_ranks.discard(rank)
        old = self.app_procs.get(rank)
        if old is not None and old.alive:
            old.kill()
        self._make_app_proc(rank, state, pending).start()

    def _on_app_exit(self, rank: int, result: Any) -> None:
        self.results[rank] = result
        self.finished_ranks.add(rank)
        self._exit_times[rank] = self.sim.now
        if self.finished and self.completion_time is None:
            self.completion_time = self.sim.now

    # ------------------------------------------------------------------ #
    # faults

    def inject_fault(self, rank: int) -> None:
        """Kill the MPI process and daemon of ``rank`` right now."""
        if self.finished or rank in self.finished_ranks:
            return  # the paper kills processes during execution only
        if not self.daemons[rank].alive:
            return  # already down
        self.kill_rank(rank, record_fault=True)
        self.dispatcher.notice_fault(rank, self.sim.now)

    def kill_rank(self, rank: int, record_fault: bool = True) -> None:
        proc = self.app_procs.get(rank)
        if proc is not None:
            proc.kill()
        self.daemons[rank].kill()
        for r, daemon in self.daemons.items():
            if r != rank and daemon.alive:
                daemon.peer_died(rank)

    def notify_restarted(self, rank: int) -> None:
        """Recovery phase done on ``rank``: peers re-issue lost requests."""
        for r, daemon in self.daemons.items():
            if r != rank and daemon.alive:
                daemon.on_peer_restarted(rank)
        self.fire_restart_listeners(rank)

    def add_restart_listener(self, listener: Callable[[int], None]) -> None:
        """Register a callback invoked with each rank that restarts (used
        by the cascading fault plans to model still-faulty hardware)."""
        self._restart_listeners.append(listener)

    def fire_restart_listeners(self, rank: int) -> None:
        for listener in self._restart_listeners:
            listener(rank)

    def kill_el_shard(self, index: int) -> None:
        """Crash one Event Logger shard (failover is the group's job)."""
        if self.event_logger is not None:
            self.event_logger.kill_shard(index)

    # ------------------------------------------------------------------ #
    # retry layer

    def rpc_channel(self, name: str) -> RetryChannel:
        """Named retry channel (``"el_log"``, ``"ckpt_store"``, ...);
        per-channel stats land in ``probes.rpc_channels``."""
        channel = self._rpc_channels.get(name)
        if channel is None:
            stats = RetryStats()
            self.probes.rpc_channels[name] = stats
            channel = RetryChannel(
                self.sim,
                self.retry_policy,
                stats=stats,
                active=lambda: not self.finished,
            )
            self._rpc_channels[name] = channel
        return channel

    # ------------------------------------------------------------------ #

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> RunResult:
        """Start (if needed) and run to completion (or ``until``)."""
        if self.partition_workers:
            # shared-nothing multiprocess backend: fork one worker per
            # partition block and drive the window barriers over pipes
            from repro.hostexec.driver import run_multiprocess

            return run_multiprocess(self, until=until, max_events=max_events)
        if not self._started:
            self.start()
        self.sim.run(until=until, max_events=max_events)
        sim_time = (
            self.completion_time if self.completion_time is not None else self.sim.now
        )
        return RunResult(
            stack=self.spec.name,
            nprocs=self.nprocs,
            finished=self.finished,
            sim_time=sim_time,
            probes=self.probes,
            results=dict(self.results),
            events_executed=self.sim.events_executed,
            cluster=self,
        )
