"""Every calibrated constant of the simulation model, in one place.

The paper's testbed is a 32-node cluster of AthlonXP 2800+ nodes on
switched Fast Ethernet (100 Mbit/s), running MPICH 1.2.5 (ch_p4) and the
MPICH-V framework (ch_v).  This module encodes that testbed as a
:class:`ClusterConfig`, and the eight measured software stacks of the paper
as :class:`StackSpec` entries in :data:`STACKS`:

========================  ========  ==========  ============  ===========
stack                     daemon    protocol    event logger  full duplex
========================  ========  ==========  ============  ===========
p4                        no        none        --            no
vdummy                    yes       none        --            yes
vcausal / +EL             yes       vcausal     yes           yes
manetho / +EL             yes       manetho     yes           yes
logon / +EL               yes       logon       yes           yes
vcausal-noel              yes       vcausal     no            yes
manetho-noel              yes       manetho     no            yes
logon-noel                yes       logon       no            yes
pessimistic               yes       pessimist.  yes           yes
coordinated               yes       coord.      --            yes
========================  ========  ==========  ============  ===========

Calibration targets (paper Fig. 6(a), Ethernet latency in µs):
P4 ≈ 99.6, Vdummy ≈ 134.8, causal+EL ≈ 156–157, Vcausal-noEL ≈ 165,
graph-noEL ≈ 173.  The constants below reproduce these within a few
percent; the *shape* (ordering and relative gaps) is the reproduction
target, per DESIGN.md §2.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class ClusterConfig:
    """Calibrated machine/network/protocol cost model.

    All times are seconds, all rates are per-second, all sizes bytes.
    """

    # ---------------------------------------------------------------- #
    # Network (Fast Ethernet through one switch)
    bandwidth_bps: float = 100e6
    network_latency_s: float = 25e-6       # NIC + switch one-way latency
    per_message_overhead_bytes: int = 66   # Ethernet+IP+TCP framing
    goodput_factor: float = 0.93           # peak TCP payload / wire rate

    # ---------------------------------------------------------------- #
    # Software stack per-message costs
    mpi_software_latency_s: float = 66e-6  # MPICH protocol stack (both sides total)
    daemon_overhead_s: float = 35e-6       # 2 pipe copies + context switches
    daemon_copy_bandwidth_bps: float = 3.2e9   # memcpy through the pipe pair
    sender_log_bandwidth_bps: float = 6.4e9    # local payload-log memcpy
    logging_fixed_latency_s: float = 14e-6 # determinant creation + bookkeeping
    eager_threshold_bytes: int = 128 * 1024
    short_threshold_bytes: int = 1024
    rendezvous_rtt_factor: float = 2.0     # RTS/CTS handshake latencies

    # ---------------------------------------------------------------- #
    # Piggyback computation cost model (per-operation constants; these
    # convert deterministic op counts into simulated seconds).
    cost_serialize_event_s: float = 3.0e-6    # pack one event on the wire
    cost_deserialize_event_s: float = 3.0e-6  # unpack + append one event
    cost_graph_visit_s: float = 1.0e-6        # visit one vertex/edge
    cost_graph_insert_s: float = 2.5e-6       # (re)link one vertex
    cost_logon_reorder_s: float = 1.5e-6      # partial-order insert per event
    cost_piggyback_fixed_s: float = 1.0e-6     # fixed cost of building any piggyback
    # Building a piggyback scans per-peer structures (bounds, buckets,
    # knowledge vectors) whose size grows with the process count; this is
    # what makes the paper's per-message management cost at P=16 far larger
    # than the +22 µs seen in the 2-process ping-pong (Fig. 8 vs Fig. 6a).
    cost_pb_send_per_rank_s: float = 1.5e-6    # × nprocs, on every build
    cost_pb_recv_per_rank_s: float = 0.6e-6    # × nprocs, on every merge
    # Bound/knowledge-vector cost model.  "dense" charges the two × nprocs
    # constants above on every build/merge (the original formulas, kept as
    # the compatibility mode so recorded BENCH checksums stay comparable).
    # "sparse" models the BoundVector representation honestly: work scales
    # with the entries actually touched (held sequences scanned on build,
    # creator runs merged on accept), not with cluster size — this is what
    # unlocks 256+ rank scenarios.  The same switch selects the EL ack
    # wire format: a dense 4-byte-per-rank clock array vs (rank, clock)
    # pairs for the nonzero entries only.
    pb_cost_model: str = "dense"               # "dense" | "sparse"
    cost_pb_send_per_entry_s: float = 1.5e-6   # × touched entries, on build
    cost_pb_recv_per_entry_s: float = 0.6e-6   # × touched entries, on merge
    el_ack_entry_bytes: int = 8                # (rank, clock) pair, sparse acks
    # Build-loop strategy.  True (default) selects the dirty-creator
    # worklist: each protocol tracks, per peer channel, the creator
    # sequences that grew since the last send on that channel, and
    # ``build_piggyback`` scans only those instead of every held sequence.
    # This is a *host wall-clock* optimisation of the simulator itself —
    # piggyback contents and every simulated cost are bit-identical to the
    # full scan (property-tested; see docs/PROTOCOLS.md).  False keeps the
    # scan-everything reference path for A/B benchmarking
    # (``benchmarks/perf/run_bench.py`` records both).
    pb_build_worklist: bool = True
    # Memory-pressure term: volatile causal structures that keep growing
    # (the no-EL mode) slow every piggyback operation down — the paper
    # attributes part of the 5-10% no-EL latency penalty to the growing
    # antecedence graph.  Charged as coeff * log2(1 + events held) per send.
    cost_seq_pressure_s: float = 0.30e-6       # flat sequences (Vcausal)
    cost_graph_pressure_s: float = 0.60e-6      # antecedence graph methods

    # ---------------------------------------------------------------- #
    # Simulation engine.  True (default) selects the coalescing macro-event
    # engine: same-timestamp events drain from one heap pop, zero-delay
    # events ride a FIFO now-queue that bypasses the heap entirely, and the
    # serial resources (NIC RX links, daemon receive pipelines, Event
    # Logger select loops) keep their queued completions in per-resource
    # pending deques with a single drain timer each, so heap occupancy is
    # O(resources) instead of O(in-flight work).  Execution order — and
    # therefore every simulated result — is bit-identical to the reference
    # one-heap-entry-per-event engine selected by False (kept for A/B
    # benchmarking, mirroring ``pb_build_worklist``; property-tested in
    # tests/test_engine_coalescing.py).
    engine_coalesce: bool = True

    # ---------------------------------------------------------------- #
    # Partitioned conservative-window simulation (repro.simulator.
    # partition).  ``partition_ranks = K > 0`` shards the ranks into K
    # contiguous blocks, each advanced in its own engine store inside
    # conservative time windows of width ``network_latency_s`` (the
    # minimum cross-partition link latency), with cross-partition
    # messages exchanged at window barriers and merged in global
    # ``(time, seq)`` order — probes, checksums and ``sim_time`` are
    # bit-identical to the single-engine run (property-tested in
    # tests/test_partition_conformance.py).  0 (default) keeps the
    # verbatim single-engine path.
    partition_ranks: int = 0

    # ---------------------------------------------------------------- #
    # Multiprocess partition execution (repro.hostexec).
    # ``partition_workers = W > 0`` forks W shared-nothing worker
    # processes (capped at the partition count), each advancing a
    # contiguous block of the ``partition_ranks`` partitions through the
    # same conservative windows; cross-partition messages travel over
    # pipes at window barriers through a deterministic codec, and a
    # driver-side replay of each window's event journal reassigns the
    # global sequence numbers, so results, probes and checksums stay
    # bit-identical to both ``partition_workers=0`` (the in-process
    # window loop, kept verbatim) and the single engine.  Requires
    # ``partition_ranks > 0``; the supported envelope (no fault plans,
    # no checkpoints, full-duplex NICs, ``el_count <= 1``) is validated
    # at run start.  0 (default) never forks.
    partition_workers: int = 0

    # ---------------------------------------------------------------- #
    # Per-message delivery dispatch.  True (default) compiles, at cluster
    # wiring time, per-(protocol, channel) fused delivery closures: the
    # send pipeline (piggyback build -> cost charge -> wire) and the
    # receive pipeline (NIC delivery -> daemon accept -> protocol accept ->
    # MPI matching -> process resume) each become one flat closure that
    # binds its reset-stable hot state once, instead of the 6-8 method
    # frames per message of the layered stack; the EL ack path rides an
    # append-only stable-advance journal so each ack folds only the
    # entries that actually moved.  This is a *host wall-clock*
    # optimisation: every engine scheduling call is issued in the same
    # order with the same timestamps, so all simulated results are
    # bit-identical to the layered path (property-tested in
    # tests/test_dispatch_fastpath.py).  False keeps the layered
    # reference implementation for A/B benchmarking
    # (``benchmarks/perf/run_bench.py`` records both).
    delivery_fastpath: bool = True

    # ---------------------------------------------------------------- #
    # Compute node (AthlonXP 2800+ effective throughput on NAS kernels)
    node_flops: float = 320e6

    # ---------------------------------------------------------------- #
    # Event Logger.  Determinants are posted at NIC-level delivery, while
    # the payload still has to cross the pipes and the MPI stack — the ack
    # therefore races the software stack, and for small messages it can
    # arrive before the *next* piggyback is built (the Fig. 6(a) effect).
    el_service_time_s: float = 45e-6       # per-determinant service at the EL
    el_ack_delay_s: float = 2.0e-6         # ack batching delay at the EL
    el_event_wire_bytes: int = 20          # determinant + header on the wire
    el_ack_wire_bytes: int = 16
    # Distributed Event Logger (paper §VI future work): number of EL
    # shards, their synchronization strategy and its period.  count=1
    # reproduces the single EL used throughout the paper's evaluation.
    # Strategies (see repro.core.distributed_el):
    #   "multicast" — all-to-all between shards, O(shards²) msgs/round;
    #   "broadcast" — multicast plus a push to every compute node;
    #   "tree"      — k-ary reduce-then-broadcast over the shards,
    #                 2·(shards-1) msgs/round, fanout below;
    #   "gossip"    — each shard pushes to el_gossip_fanout rotating
    #                 peers/round, shards·fanout msgs/round, bounded
    #                 staleness of ceil((shards-1)/fanout) rounds.
    el_count: int = 1
    el_sync_strategy: str = "multicast"
    el_sync_interval_s: float = 2e-3
    el_tree_fanout: int = 2
    el_gossip_fanout: int = 2

    # ---------------------------------------------------------------- #
    # Checkpointing and recovery.  The checkpoint service link is
    # provisioned above one Fast-Ethernet NIC: sender-based logging must
    # ship roughly the cluster's send volume to stable storage, and the
    # paper itself notes that "the bandwidth of a single reliable node may
    # not be sufficient and implies using more than one reliable node"
    # (§III-A).  This aggregated link stands in for those extra nodes.
    checkpoint_server_bandwidth_bps: float = 400e6
    checkpoint_fixed_overhead_s: float = 0.050   # fork+image setup
    fault_detection_delay_s: float = 0.250       # dispatcher detects a dead node
    restart_overhead_s: float = 0.100            # process relaunch
    recovery_request_bytes: int = 64             # "send me your events" request
    event_record_bytes: int = 16                 # stored determinant size

    # ---------------------------------------------------------------- #
    # Failure domains and infrastructure failover.  ``fault_domains``
    # groups the ranks into that many contiguous, balanced blocks (one
    # node / switch group per block) that the correlated fault plans kill
    # as a unit; 0 keeps the historical one-rank-per-domain behaviour.
    # ``el_failover`` lets surviving Event Logger shards absorb a dead
    # shard's key range (from its stable store plus creator re-logs);
    # ``ckpt_server_failover`` arms the checkpoint-server outage handling
    # (in-flight waves abort, restarts fall back to the last complete
    # wave).  Both are inert until an infrastructure component actually
    # dies, so defaults keep every recorded checksum bit-identical.
    fault_domains: int = 0
    el_failover: bool = False
    ckpt_server_failover: bool = False
    # Retry/timeout/backoff layer for daemon→EL and daemon→checkpoint
    # traffic (repro.runtime.retry).  ``rpc_timeout_s == 0`` disables the
    # layer entirely (the default: no extra timers, bit-identical runs);
    # when enabled, each attempt is re-sent after a capped exponential
    # backoff: min(rpc_backoff_base_s * rpc_backoff_factor**k,
    # rpc_backoff_max_s), giving up after rpc_max_attempts attempts.
    rpc_timeout_s: float = 0.0
    rpc_backoff_base_s: float = 0.05
    rpc_backoff_factor: float = 2.0
    rpc_backoff_max_s: float = 1.0
    rpc_max_attempts: int = 8

    # ---------------------------------------------------------------- #
    # Wire format of causal piggybacks (paper §III-C)
    pb_group_header_bytes: int = 8   # {rid, nb} per factored group
    pb_event_factored_bytes: int = 12  # event without receiver rank
    pb_event_flat_bytes: int = 16      # LogOn event incl. receiver rank
    pb_length_header_bytes: int = 4    # piggyback length prefix

    def __post_init__(self):
        if self.pb_cost_model not in ("dense", "sparse"):
            raise ValueError(
                f"pb_cost_model must be 'dense' or 'sparse', got {self.pb_cost_model!r}"
            )
        if self.el_tree_fanout < 1:
            raise ValueError("el_tree_fanout must be >= 1")
        if self.el_gossip_fanout < 1:
            raise ValueError("el_gossip_fanout must be >= 1")
        if self.fault_detection_delay_s < 0:
            raise ValueError(
                f"fault_detection_delay_s must be >= 0, got {self.fault_detection_delay_s!r}"
            )
        if self.fault_domains < 0:
            raise ValueError(f"fault_domains must be >= 0, got {self.fault_domains!r}")
        if self.partition_ranks < 0:
            raise ValueError(
                f"partition_ranks must be >= 0, got {self.partition_ranks!r}"
            )
        if self.partition_workers < 0:
            raise ValueError(
                f"partition_workers must be >= 0, got {self.partition_workers!r}"
            )
        if self.partition_workers > 0 and self.partition_ranks == 0:
            raise ValueError(
                "partition_workers requires partition_ranks > 0 "
                f"(got partition_workers={self.partition_workers!r})"
            )
        if self.rpc_timeout_s < 0:
            raise ValueError(f"rpc_timeout_s must be >= 0, got {self.rpc_timeout_s!r}")
        if self.rpc_backoff_base_s < 0:
            raise ValueError(
                f"rpc_backoff_base_s must be >= 0, got {self.rpc_backoff_base_s!r}"
            )
        if self.rpc_backoff_factor < 1:
            raise ValueError(
                f"rpc_backoff_factor must be >= 1, got {self.rpc_backoff_factor!r}"
            )
        if self.rpc_backoff_max_s < self.rpc_backoff_base_s:
            raise ValueError(
                "rpc_backoff_max_s must be >= rpc_backoff_base_s, got "
                f"{self.rpc_backoff_max_s!r} < {self.rpc_backoff_base_s!r}"
            )
        if self.rpc_max_attempts < 1:
            raise ValueError(
                f"rpc_max_attempts must be >= 1, got {self.rpc_max_attempts!r}"
            )

    def with_overrides(self, **kw) -> "ClusterConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **kw)


@dataclass(frozen=True)
class StackSpec:
    """One measured software stack (a column of the paper's tables)."""

    name: str
    daemon: bool = True
    protocol: str = "none"   # none|vcausal|manetho|logon|pessimistic|coordinated
    event_logger: bool = False
    full_duplex: bool = True
    sender_based_logging: bool = False

    @property
    def is_causal(self) -> bool:
        return self.protocol in ("vcausal", "manetho", "logon")

    @property
    def label(self) -> str:
        if self.protocol == "none":
            return "MPICH-P4" if not self.daemon else "MPICH-Vdummy"
        el = "EL" if self.event_logger else "no EL"
        return f"{self.protocol} ({el})"


def _causal(name: str, el: bool) -> StackSpec:
    return StackSpec(
        name=name,
        daemon=True,
        protocol=name.replace("-noel", ""),
        event_logger=el,
        full_duplex=True,
        sender_based_logging=True,
    )


#: The software stacks measured in the paper, keyed by short name.
STACKS: dict[str, StackSpec] = {
    "p4": StackSpec(name="p4", daemon=False, protocol="none", full_duplex=False),
    "vdummy": StackSpec(name="vdummy", daemon=True, protocol="none"),
    "vcausal": _causal("vcausal", el=True),
    "manetho": _causal("manetho", el=True),
    "logon": _causal("logon", el=True),
    "vcausal-noel": _causal("vcausal-noel", el=False),
    "manetho-noel": _causal("manetho-noel", el=False),
    "logon-noel": _causal("logon-noel", el=False),
    "pessimistic": StackSpec(
        name="pessimistic",
        daemon=True,
        protocol="pessimistic",
        event_logger=True,
        sender_based_logging=True,
    ),
    "coordinated": StackSpec(
        name="coordinated",
        daemon=True,
        protocol="coordinated",
        event_logger=False,
        sender_based_logging=False,
    ),
}

#: Stack order used by the figures (P4 first, then Vdummy, then causal).
FIGURE_STACKS: tuple[str, ...] = (
    "p4",
    "vdummy",
    "vcausal",
    "manetho",
    "logon",
    "vcausal-noel",
    "manetho-noel",
    "logon-noel",
)

CAUSAL_PROTOCOLS: tuple[str, ...] = ("vcausal", "manetho", "logon")
