"""Worker-side engine facade for the multiprocess partition backend.

:class:`WorkerSimulator` extends the in-process
:class:`~repro.simulator.partition.PartitionedSimulator` with the three
pieces a shared-nothing worker needs:

* **Claim registry** — while a worker drains a window, every sequence
  number it claims is *provisional* (``claim_base + j``); the claiming
  entry registers itself in ``_claim_log`` (engine ``_put``,
  ``SerialDrain.enqueue``, the fastpath inline enqueue, and the
  network's deferred-crossing records all share the ``[time, seq, ...]``
  list layout with the seq at index 1).  At the barrier the driver
  replays the merged per-worker event journals and hands back the true
  global number for each claim; :meth:`renumber` rewrites the registered
  cells in place.  The rewrite is order-preserving (the driver assigns
  strictly increasing numbers in local claim order), so seq-sorted
  buckets and drain deques stay valid without re-sorting.
* **Scoped scanning** — ``_scan_pids`` narrows the window drain to the
  worker's owned partition block; non-owned partitions keep their
  (identical, fork-inherited) wiring events parked forever.
* **Armed-drain renumbering** — :class:`~repro.simulator.engine.
  SerialDrain` timers ride the heap at their head entry's claimed slot;
  every drain registers here at construction (:meth:`adopt_drain`) so
  the barrier can re-stamp armed timers after their heads renumber.

The facade is installed at cluster wiring time (before the fork) so all
drains register and all replicas share one memory image; it stays
completely inert — bit-identical to ``PartitionedSimulator`` — until
:meth:`activate_worker` runs in the forked child.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.simulator.engine import SerialDrain, SimulationError
from repro.simulator.partition import PartitionedSimulator

__all__ = ["WorkerSimulator"]


class WorkerSimulator(PartitionedSimulator):
    """Partitioned facade plus the hostexec worker seams."""

    __slots__ = ("_drains", "_claim_base", "_worker_active")

    def __init__(
        self,
        partitions: int,
        lookahead_s: float,
        trace: Optional[Callable[[float, str], None]] = None,
        coalesce: bool = True,
    ) -> None:
        super().__init__(partitions, lookahead_s, trace=trace, coalesce=coalesce)
        #: every SerialDrain built over this engine (wiring happens in
        #: the parent, so the fork hands each worker the full list)
        self._drains: list[SerialDrain] = []
        #: global seq ceiling at the current window's start: claims made
        #: during the window are provisional offsets past this base
        self._claim_base = 0
        self._worker_active = False

    # ------------------------------------------------------------------ #
    # wiring-time hooks (parent process, before the fork)

    def adopt_drain(self, drain: SerialDrain) -> None:
        self._drains.append(drain)

    # ------------------------------------------------------------------ #
    # worker activation (forked child)

    def activate_worker(self, owned: Iterable[int]) -> None:
        """Restrict draining to ``owned`` partitions and start journaling.

        Called once, right after the fork.  From here on every claimed
        seq is provisional until the next :meth:`renumber`.
        """
        pids = tuple(sorted(owned))
        if not pids:
            raise SimulationError("worker owns no partitions")
        for pid in pids:
            if not 0 <= pid < self._nparts:
                raise SimulationError(f"owned partition {pid} out of range")
        self._scan_pids = pids
        self._claim_log = []
        self._exec_log = []
        self._claim_base = self._seq
        self._worker_active = True
        self._running = True

    @property
    def worker_active(self) -> bool:
        return self._worker_active

    @property
    def claim_count(self) -> int:
        """Claims made since the last barrier (provisional seqs)."""
        log = self._claim_log
        return 0 if log is None else len(log)

    def take_exec_log(self) -> list[tuple[float, int, int]]:
        """Detach and return this window's (time, seq, nclaims) journal."""
        log = self._exec_log
        if log is None:
            raise SimulationError("exec journal on an inactive worker")
        self._exec_log = []
        return log

    # ------------------------------------------------------------------ #
    # window execution

    def drain_worker_window(self, start: float, end: float) -> Optional[float]:
        """Drain owned partitions through ``[start, end)``.

        Returns the next pending local timestamp (``>= end``) or None
        when this worker's queues are empty.  Window bounds come from
        the driver, which holds the global minimum — a window that
        contains none of this worker's timestamps simply drains nothing.
        """
        self._window_end = end
        t = self._min_pending()
        if t is None:
            return None
        if self._lookahead == 0.0:
            # degenerate window (zero lookahead): exactly the start
            # timestamp drains, matching the in-process loop
            if t == start:
                self._drain_timestamp(t, None, 0)
        elif t < end:
            self._drain_window(t, end, None, None, 0)
        return self._min_pending()

    # ------------------------------------------------------------------ #
    # barrier renumbering

    def renumber(self, mapping: Sequence[int], g_next: int) -> None:
        """Rewrite this window's provisional claims to their global slots.

        ``mapping[j]`` is the true global seq of the worker's (j+1)-th
        claim this window; ``g_next`` is the global ceiling after the
        window (every worker's next window starts claiming past it).
        """
        log = self._claim_log
        if log is None:
            raise SimulationError("renumber on an inactive worker")
        if len(log) != len(mapping):
            raise SimulationError(
                f"claim-journal mismatch: {len(log)} registered claims, "
                f"{len(mapping)} renumber slots"
            )
        base = self._claim_base
        for cell in log:
            cell[1] = mapping[cell[1] - base - 1]
        log.clear()
        # armed SerialDrain timers ride the heap at their head entry's
        # claimed slot; re-stamp them from their (just renumbered) heads
        for drain in self._drains:
            if drain.armed and drain.pending:
                drain._entry[1] = drain.pending[0][1]
        self._seq = g_next
        self._claim_base = g_next

    # ------------------------------------------------------------------ #
    # envelope guards: seams whose claims could not be renumbered

    def claim_seq(self) -> int:
        if self._worker_active:
            raise SimulationError(
                "claim_seq inside a hostexec worker window is unsupported"
            )
        return super().claim_seq()

    def post_at_seq(
        self, time: float, seq: int, fn: Callable[..., None], *args: Any
    ) -> None:
        if self._worker_active:
            # only reachable through SerialDrain's ready-time-regression
            # path (a serial resource reset mid-run, i.e. a restart) —
            # outside the supported partition_workers envelope
            raise SimulationError(
                "serial-resource reset inside a hostexec worker window — "
                "outside the partition_workers envelope"
            )
        super().post_at_seq(time, seq, fn, *args)

    def exchange_post(
        self,
        dst_host: str,
        time: float,
        fn: Callable[..., None],
        args: tuple[Any, ...],
    ) -> None:
        if self._worker_active:
            # cross-host traffic must flow through Network.transfer,
            # where the exchange seam intercepts it; reaching this means
            # a layer bypassed the network
            raise SimulationError(
                "exchange_post inside a hostexec worker; cross-host "
                "deliveries must go through Network.transfer"
            )
        super().exchange_post(dst_host, time, fn, args)
