"""Shared-nothing multiprocess execution backend for partitioned runs.

``partition_ranks=K`` (PR 9) shards ranks into per-partition event
stores advanced through conservative lookahead windows inside one
process.  This package is the other half of host-side scale-out: with
``partition_workers=W`` the cluster is wired once in the parent, then
**forked** into W identical worker processes, each draining only its
contiguous block of partitions.  Workers advance in lockstep through
the same ``[W, W+lookahead)`` windows; cross-partition messages travel
over pipes at the window barriers through a deterministic codec
(:mod:`repro.hostexec.codec`), and a driver-side replay of each
window's event journal reassigns global sequence numbers
(:mod:`repro.hostexec.driver`), so every simulated observable —
results, ``sim_time``, event counts, the full probe image, and
therefore the recorded BENCH checksums — is bit-identical to both the
in-process partitioned engine and the single engine.

This package is the one sanctioned carve-out from simlint's
``host-thread`` rule (scoped out in ``pyproject.toml``): host
concurrency stays quarantined here, behind the window-barrier protocol,
and never leaks into simulated code — ``run_bench.py --check-static``
verifies it is the only importer of :mod:`multiprocessing` under
``src/``.
"""

from repro.hostexec.sim import WorkerSimulator

__all__ = ["WorkerSimulator"]
