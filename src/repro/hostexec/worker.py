"""Worker-side loop of the shared-nothing multiprocess backend.

A worker is a fork of the fully-wired parent cluster.  It owns a
contiguous block of partitions: only their event stores drain, only
their ranks execute, and every replica object outside the block stays
frozen at its wiring-time image.  The loop speaks a four-message
protocol with the driver over one pipe:

``("ready", seq0, next_time)``
    sent once after activation: the fork-time global seq ceiling (the
    driver asserts all workers agree) and the first pending timestamp.
``("step", mapping, g_next, wstart, wend, incoming)``
    one window: renumber last window's provisional claims, apply the
    routed crossing records (destination-side stats, RX reservation,
    store insertion — in global seq order), drain ``[wstart, wend)``,
    then reply ``("done", next_time, exec_log, nclaims, outgoing)``.
``("finish",)``
    reply ``("result", payload)`` with owned results, exit times,
    probe images, event counts, and blocked-actor reasons.

Any exception escapes as ``("error", index, traceback)`` so the driver
can surface it instead of deadlocking the barrier.
"""

from __future__ import annotations

import traceback
from dataclasses import asdict, fields
from typing import Any, Mapping, Optional

from repro.hostexec.codec import HostCodec
from repro.simulator.engine import SimulationError

__all__ = ["worker_main"]

# crossing-record field offsets (see Network._transfer_deferred)
_RX, _SEQ, _DST, _DUR, _NBYTES, _CHUNK, _FN, _ARGS = range(8)


def _apply_record(
    cluster: Any,
    gseq: int,
    dst_host: str,
    earliest_rx: float,
    duration: float,
    nbytes: int,
    chunk: bool,
    deliver: Any,
    args: tuple[Any, ...],
) -> None:
    """Replay one crossing record's destination side.

    Mirrors the tail of :meth:`Network.transfer` exactly: RX stats, the
    serial RX reservation, then either the NIC's coalescing drain or a
    direct seq-sorted store insert — with the record's already-global
    seq instead of a fresh claim.  Records are applied in global seq
    order across the whole run, so per-NIC ``reserve_rx`` calls happen
    in the same order the single engine makes them and every ``rx_end``
    is bit-identical.
    """
    sim = cluster.sim
    dst_nic = cluster.network.nics[dst_host]
    stats = dst_nic.stats
    stats.messages_received += 1
    stats.bytes_received += nbytes
    if chunk:
        stats.chunks_received += 1
    else:
        stats.logical_messages_received += 1
    _rx_start, rx_end = dst_nic.reserve_rx(earliest_rx, duration)
    entry = [rx_end, gseq, deliver, args]
    pid = sim._host_pid.get(dst_host, 0)
    drain = dst_nic.rx_drain
    if drain is None:
        sim._insert_entry(pid, rx_end, entry)
        return
    pending = drain.pending
    if pending:
        if rx_end >= pending[-1][0]:
            pending.append(entry)
        else:
            # ready-time regression (defensive: cannot happen while RX
            # reservations are serial and applied in global order)
            sim._insert_entry(pid, rx_end, entry)
        return
    pending.append(entry)
    if not drain.armed:
        drain.armed = True
        sim.enter_partition(pid)
        drain._arm(rx_end, gseq)


def _collect_outgoing(
    cluster: Any,
    codec: HostCodec,
    host_worker: Mapping[str, int],
    worker_index: int,
    own_records: list[list],
) -> list[tuple]:
    """Ship this window's crossing buffer.

    Records destined to a host this worker owns stay behind as live
    objects in ``own_records`` (their seq cells renumber in place via
    the claim registry); everything else is encoded now — in creation
    order, which the ElAck journal codec relies on — and travels as
    ``(dst_worker, pseq, dst_host, earliest_rx, duration, nbytes,
    chunk, blob)`` with ``blob=None`` marking a stay-behind record.
    """
    network = cluster.network
    records = network.exchange
    network.exchange = []
    cluster.sim.cross_messages += len(records)
    out: list[tuple] = []
    for rec in records:
        dst_host = rec[_DST]
        dst_worker = host_worker.get(dst_host, 0)
        if dst_worker == worker_index:
            own_records.append(rec)
            blob = None
        else:
            blob = codec.encode(dst_worker, rec[_FN], rec[_ARGS])
        out.append(
            (
                dst_worker,
                rec[_SEQ],
                dst_host,
                rec[_RX],
                rec[_DUR],
                rec[_NBYTES],
                rec[_CHUNK],
                blob,
            )
        )
    return out


def _result_payload(cluster: Any, owned_ranks: list[int]) -> dict[str, Any]:
    probes = cluster.probes
    scalars = {
        f.name: getattr(probes, f.name)
        for f in fields(probes)
        if f.name not in ("per_rank", "recoveries", "rpc_channels")
    }
    return {
        "results": {r: cluster.results[r] for r in owned_ranks if r in cluster.results},
        "exit_times": dict(cluster._exit_times),
        "finished_ranks": sorted(cluster.finished_ranks),
        "events": cluster.sim.events_executed,
        "blocked": sorted(str(r) for r in cluster.sim.blocked_actors.values()),
        "per_rank": {
            r: asdict(probes.per_rank[r]) for r in owned_ranks if r in probes.per_rank
        },
        "cluster_scalars": scalars,
        "recoveries": len(probes.recoveries),
        "rpc_channels": len(probes.rpc_channels),
        "windows": cluster.sim.windows,
        "cross_messages": cluster.sim.cross_messages,
    }


def worker_main(
    worker_index: int,
    conn: Any,
    cluster: Any,
    owned_pids: tuple[int, ...],
    owned_ranks: list[int],
    host_worker: Mapping[str, int],
) -> None:
    """Run one forked worker until the driver says finish.

    ``conn`` is the child end of the driver's pipe; everything else is
    inherited through the fork (no pickling of cluster state).
    """
    try:
        sim = cluster.sim
        sim.activate_worker(owned_pids)
        cluster.network.exchange = []
        codec = HostCodec.for_cluster(cluster)
        own_records: list[list] = []
        conn.send(("ready", sim._seq, sim._min_pending()))
        while True:
            msg = conn.recv()
            tag = msg[0]
            if tag == "step":
                _tag, mapping, g_next, wstart, wend, incoming = msg
                sim.renumber(mapping, g_next)
                # decode strictly in shipped order (per-source creation
                # order — the ElAck journal tails splice contiguously),
                # then merge with the stay-behind records and apply in
                # global seq order
                batch: list[tuple] = [
                    (gseq, dst_host, earliest_rx, duration, nbytes, chunk)
                    + codec.decode(blob)
                    for gseq, dst_host, earliest_rx, duration, nbytes, chunk, blob in incoming
                ]
                for rec in own_records:
                    batch.append(
                        (
                            rec[_SEQ],
                            rec[_DST],
                            rec[_RX],
                            rec[_DUR],
                            rec[_NBYTES],
                            rec[_CHUNK],
                            rec[_FN],
                            rec[_ARGS],
                        )
                    )
                own_records.clear()
                batch.sort(key=lambda item: item[0])
                for item in batch:
                    _apply_record(cluster, *item)
                next_time = sim.drain_worker_window(wstart, wend)
                sim.windows += 1
                nclaims = sim.claim_count
                exec_log = sim.take_exec_log()
                outgoing = _collect_outgoing(
                    cluster, codec, host_worker, worker_index, own_records
                )
                conn.send(
                    (
                        "done",
                        next_time,
                        exec_log,
                        nclaims,
                        outgoing,
                        sim.events_executed,
                    )
                )
            elif tag == "finish":
                conn.send(("result", _result_payload(cluster, owned_ranks)))
                return
            else:
                raise SimulationError(f"unknown driver message {tag!r}")
    except BaseException:
        try:
            conn.send(("error", worker_index, traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()
