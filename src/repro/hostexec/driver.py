"""Driver side of the shared-nothing multiprocess partition backend.

``run_multiprocess`` wires nothing itself — the cluster is fully
constructed and started in the parent, then **forked** into W workers
(inheritance, not pickling: app factories, closures, and the whole
object graph travel for free, and every replica starts from one
bit-identical memory image).  The parent never advances its own
simulator; it becomes the barrier driver:

1. collect each worker's ``("done", next_time, exec_log, nclaims,
   outgoing)`` for the window just drained;
2. **replay** the k-way merge of the per-worker event journals in
   global ``(time, seq)`` order, assigning true global sequence
   numbers to every provisional claim in exactly the order the single
   engine would have claimed them (:func:`_replay`);
3. resolve and route the crossing records to their destination
   workers' owners;
4. pick the next window start ``W' = min(worker next-times ∪ record
   earliest-RX times)`` — conservative (a too-early window is merely
   empty) — and broadcast ``("step", mapping, g_next, W', W'+la,
   incoming)``.

When no worker has pending work and no record is in flight the driver
broadcasts ``("finish",)`` and collates results, exit times, probe
images, and event counts into the parent cluster — producing the same
:class:`~repro.runtime.cluster.RunResult` (and the same
:class:`~repro.simulator.engine.DeadlockError` on a wedged app) as the
in-process engines, bit for bit.

A worker that dies (signal, OOM) breaks its pipe; the driver surfaces
a :class:`~repro.simulator.engine.SimulationError` naming the worker,
its partitions, and the exit code instead of hanging the barrier.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import fields as dataclass_fields
from typing import Any, Optional

from repro.hostexec.worker import worker_main
from repro.metrics.probes import ProcessProbes
from repro.simulator.engine import DeadlockError, SimulationError
from repro.simulator.partition import partition_of_rank

__all__ = ["run_multiprocess", "worker_of_partition"]


def worker_of_partition(pid: int, partitions: int, workers: int) -> int:
    """Contiguous block ownership, same shape as ``partition_of_rank``."""
    return pid * workers // partitions


def _validate_envelope(
    cluster: Any, until: Optional[float], max_events: Optional[int]
) -> None:
    """Reject knobs the multiprocess backend cannot reproduce exactly.

    Everything here *works* on the in-process engines; the worker
    backend refuses loudly rather than risk a silently-diverging run.
    """
    problems = []
    if until is not None:
        problems.append("until-slicing (run(until=...))")
    if cluster.fault_plan is not None:
        problems.append("fault plans (restarts cross worker boundaries)")
    if cluster.scheduler.policy != "none":
        problems.append(
            f"checkpoint policy {cluster.scheduler.policy!r} (chunked "
            "stable-storage transfers)"
        )
    if not cluster.spec.full_duplex:
        problems.append(
            "half-duplex NICs (TX/RX share one reservation timeline)"
        )
    if cluster.spec.event_logger and cluster.config.el_count > 1:
        problems.append("el_count > 1 (periodic shard-sync timers)")
    if cluster.config.rpc_timeout_s:
        problems.append("rpc_timeout_s > 0 (retry channels)")
    if problems:
        raise SimulationError(
            "partition_workers envelope violated: " + "; ".join(problems)
        )


def _replay(
    exec_logs: list[list[tuple[float, int, int]]],
    claim_counts: list[int],
    g_base: int,
) -> tuple[list[list[int]], int]:
    """Reassign global seq numbers for one window's claims.

    Each worker journaled ``(time, seq, nclaims)`` per executed event,
    with ``seq`` either already global (``<= g_base``) or provisional
    (``g_base + j`` for its j-th claim).  Merging the journals by
    ``(time, true seq)`` reproduces the single engine's execution
    order; numbering each event's claims in merge order reproduces its
    claim order.  A claimed entry can only execute *after* the event
    that claimed it ran (same worker, journal order), so provisional
    heads always resolve through already-filled map slots.
    """
    nworkers = len(exec_logs)
    maps: list[list[int]] = [[0] * c for c in claim_counts]
    filled = [0] * nworkers
    idx = [0] * nworkers
    next_g = g_base

    def head_key(w: int) -> Optional[tuple[float, int]]:
        i = idx[w]
        log = exec_logs[w]
        if i >= len(log):
            return None
        t, s, _n = log[i]
        if s > g_base:
            j = s - g_base - 1
            if j >= filled[w]:
                raise SimulationError(
                    f"window replay: worker {w} executed claim {j} before "
                    "its claiming event was merged"
                )
            s = maps[w][j]
        return (t, s)

    while True:
        best: Optional[tuple[float, int]] = None
        best_w = -1
        for w in range(nworkers):
            key = head_key(w)
            if key is not None and (best is None or key < best):
                best = key
                best_w = w
        if best_w < 0:
            break
        _t, _s, nclaims = exec_logs[best_w][idx[best_w]]
        idx[best_w] += 1
        fill = filled[best_w]
        worker_map = maps[best_w]
        for _ in range(nclaims):
            next_g += 1
            worker_map[fill] = next_g
            fill += 1
        filled[best_w] = fill
    for w in range(nworkers):
        if filled[w] != claim_counts[w]:
            raise SimulationError(
                f"window replay: worker {w} registered {claim_counts[w]} "
                f"claims but its journal accounts for {filled[w]}"
            )
    return maps, next_g


def run_multiprocess(
    cluster: Any,
    until: Optional[float] = None,
    max_events: Optional[int] = None,
) -> Any:
    """Fork W workers off the wired cluster and drive them to completion."""
    from repro.runtime.cluster import RunResult

    _validate_envelope(cluster, until, max_events)
    if not cluster._started:
        cluster.start()
    sim = cluster.sim
    partitions = cluster.partitions
    nworkers = cluster.partition_workers
    owned: list[list[int]] = [[] for _ in range(nworkers)]
    for pid in range(partitions):
        owned[worker_of_partition(pid, partitions, nworkers)].append(pid)
    owned_ranks: list[list[int]] = [[] for _ in range(nworkers)]
    for rank in range(cluster.nprocs):
        pid = partition_of_rank(rank, cluster.nprocs, partitions)
        owned_ranks[worker_of_partition(pid, partitions, nworkers)].append(rank)
    host_worker = {
        host: worker_of_partition(pid, partitions, nworkers)
        for host, pid in sim._host_pid.items()
    }
    probes = cluster.probes
    baseline = {
        f.name: getattr(probes, f.name)
        for f in dataclass_fields(probes)
        if f.name not in ("per_rank", "recoveries", "rpc_channels")
    }

    ctx = multiprocessing.get_context("fork")
    conns = []
    procs = []

    def recv(w: int) -> tuple:
        try:
            msg = conns[w].recv()
        except (EOFError, ConnectionResetError, OSError):
            procs[w].join(timeout=5.0)
            pids = owned[w]
            raise SimulationError(
                f"hostexec worker {w} (partitions {pids[0]}..{pids[-1]}) "
                f"died mid-run (exit code {procs[w].exitcode}); its "
                "scenario cannot be completed"
            ) from None
        if msg[0] == "error":
            raise SimulationError(
                f"hostexec worker {msg[1]} failed:\n{msg[2]}"
            )
        return msg

    try:
        for w in range(nworkers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main,
                args=(
                    w,
                    child_conn,
                    cluster,
                    tuple(owned[w]),
                    owned_ranks[w],
                    host_worker,
                ),
                name=f"hostexec-{w}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

        next_times: list[Optional[float]] = [None] * nworkers
        seq0: Optional[int] = None
        for w in range(nworkers):
            tag, worker_seq, next_t = recv(w)
            if tag != "ready":
                raise SimulationError(f"expected ready from worker {w}, got {tag!r}")
            if seq0 is None:
                seq0 = worker_seq
            elif worker_seq != seq0:
                raise SimulationError(
                    f"fork images diverged: worker {w} starts at seq "
                    f"{worker_seq}, worker 0 at {seq0}"
                )
            next_times[w] = next_t

        g_ceiling = seq0 if seq0 is not None else 0
        lookahead = sim.lookahead_s
        exec_logs: list[list[tuple[float, int, int]]] = [[] for _ in range(nworkers)]
        claim_counts = [0] * nworkers
        outgoings: list[list[tuple]] = [[] for _ in range(nworkers)]
        windows = 0
        while True:
            mappings, g_next = _replay(exec_logs, claim_counts, g_ceiling)
            incoming: list[list[tuple]] = [[] for _ in range(nworkers)]
            rx_candidates: list[float] = []
            for w in range(nworkers):
                worker_map = mappings[w]
                for (dst_w, pseq, dst_host, erx, dur, nb, chunk, blob) in outgoings[w]:
                    rx_candidates.append(erx)
                    if blob is None:
                        continue  # stays live on its source worker
                    gseq = pseq if pseq <= g_ceiling else worker_map[pseq - g_ceiling - 1]
                    incoming[dst_w].append((gseq, dst_host, erx, dur, nb, chunk, blob))
            g_ceiling = g_next
            candidates = [t for t in next_times if t is not None]
            candidates.extend(rx_candidates)
            if not candidates:
                break
            wstart = min(candidates)
            wend = wstart + lookahead
            windows += 1
            for w in range(nworkers):
                conns[w].send(
                    ("step", mappings[w], g_ceiling, wstart, wend, incoming[w])
                )
            executed = 0
            for w in range(nworkers):
                msg = recv(w)
                if msg[0] != "done":
                    raise SimulationError(
                        f"expected done from worker {w}, got {msg[0]!r}"
                    )
                (
                    _tag,
                    next_times[w],
                    exec_logs[w],
                    claim_counts[w],
                    outgoings[w],
                    worker_events,
                ) = msg
                executed += worker_events
            if max_events is not None and executed > max_events:
                # the in-process engines stop on the exact excess event;
                # the worker backend can only police the runaway guard at
                # barriers, which is all the budget is used for
                raise SimulationError(f"exceeded max_events={max_events}")

        payloads = []
        for w in range(nworkers):
            conns[w].send(("finish",))
        for w in range(nworkers):
            msg = recv(w)
            if msg[0] != "result":
                raise SimulationError(
                    f"expected result from worker {w}, got {msg[0]!r}"
                )
            payloads.append(msg[1])
    finally:
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
            proc.join(timeout=5.0)

    # ---------------------------------------------------------------- #
    # collation: fold each worker's owned slice into the parent image

    blocked: list[str] = []
    total_events = 0
    cross_messages = 0
    for w, payload in enumerate(payloads):
        if payload["recoveries"] or payload["rpc_channels"]:
            raise SimulationError(
                f"worker {w} recorded recovery/rpc activity outside the "
                "partition_workers envelope"
            )
        for rank, image in payload["per_rank"].items():
            probes.per_rank[rank] = ProcessProbes(**image)
        cluster.results.update(payload["results"])
        cluster.finished_ranks.update(payload["finished_ranks"])
        cluster._exit_times.update(payload["exit_times"])
        blocked.extend(payload["blocked"])
        total_events += payload["events"]
        cross_messages += payload["cross_messages"]
    for name, base in baseline.items():
        merged = base + sum(p["cluster_scalars"][name] - base for p in payloads)
        setattr(probes, name, merged)
    sim.windows = windows
    sim.cross_messages = cross_messages

    if blocked:
        raise DeadlockError(sorted(blocked))
    if cluster.finished:
        sim_time = max(cluster._exit_times.values()) if cluster._exit_times else 0.0
        cluster.completion_time = sim_time
        sim.now = sim_time
    else:
        raise SimulationError(
            "hostexec run drained every window without finishing or "
            "deadlocking — worker ownership is inconsistent"
        )
    return RunResult(
        stack=cluster.spec.name,
        nprocs=cluster.nprocs,
        finished=cluster.finished,
        sim_time=sim_time,
        probes=probes,
        results=dict(cluster.results),
        events_executed=total_events,
        cluster=cluster,
    )
