"""Deterministic wire codec for cross-worker barrier records.

A crossing record's payload is ``(deliver, args)`` — a callback plus its
argument tuple, exactly what :meth:`Network.transfer` was handed.  Most
of it is plain data (``WireMessage``, ``Piggyback``, ``Determinant``,
``BoundVector`` — all picklable by value), but three kinds of object
carry *identity* that must resolve to the destination worker's replica
rather than travel by value:

* **wire sinks** — each daemon's stored ``wire_sink`` attribute (a bound
  method or a fastpath closure).  Encoded as ``("sink", rank)`` and
  resolved to the replica daemon's current ``wire_sink``.
* **bound methods** on registered instances (daemons and EL shards) —
  e.g. ``shard.receive_log`` or ``daemon._el_ack``.  Encoded
  structurally as ``("method", inst_token, name)``.
* **ElAck journal handles** — an :class:`~repro.core.event_logger.ElAck`
  aliases its logger's live ``_ack_log`` list, and vcausal's journal-fold
  fast path requires ``ack.src`` *identity* to be stable per receiver.
  The codec ships only the journal entries the destination worker has
  not yet seen (per ``(shard, dst_worker)`` tail state) and rebuilds the
  ack over the destination's **mirror journal**: the replica shard's own
  ``_ack_log``, which on a non-owner worker is never written locally and
  therefore extends to exactly the true log, entry for entry, at the
  same absolute positions.

Every worker builds its own :class:`HostCodec` after the fork; since all
replicas are copies of one wiring-time memory image, the rank/shard
token space is identical everywhere.  Unknown callables (closures,
lambdas, methods on unregistered objects) and identity-bearing
infrastructure (simulator, network, cluster) raise a
:class:`~repro.simulator.engine.SimulationError` naming the object —
a loud failure beats a silently forked replica.
"""

from __future__ import annotations

import io
import pickle
from types import FunctionType, MethodType
from typing import Any, Mapping

from repro.core.event_logger import ElAck, EventLogger
from repro.simulator.engine import SerialDrain, SimulationError, Simulator
from repro.simulator.network import Network, Nic

__all__ = ["HostCodec"]

#: infrastructure that must never cross a worker boundary by value
_IDENTITY_TYPES = (Simulator, Network, Nic, SerialDrain)


class HostCodec:
    """Per-worker encoder/decoder for barrier-crossing payloads."""

    def __init__(
        self,
        daemons: Mapping[int, Any],
        shards: list[EventLogger],
    ) -> None:
        self._daemons = daemons
        self._shards = shards
        # id -> token maps over this worker's replica objects (the fork
        # preserves object identity within each process, so ids taken
        # here match ids reachable from any locally-created record)
        self._sink_tokens: dict[int, tuple[Any, ...]] = {}
        self._inst_tokens: dict[int, tuple[Any, ...]] = {}
        for rank, daemon in daemons.items():
            self._sink_tokens[id(daemon.wire_sink)] = ("sink", rank)
            self._inst_tokens[id(daemon)] = ("daemon", rank)
        for k, shard in enumerate(shards):
            self._inst_tokens[id(shard)] = ("shard", k)
        #: (shard index, dst worker) -> ack-journal entries already
        #: shipped there; the next ElAck to that worker ships only the
        #: tail past this mark
        self._ack_sent: dict[tuple[int, int], int] = {}

    @classmethod
    def for_cluster(cls, cluster: Any) -> "HostCodec":
        group = cluster.event_logger
        shards = list(group.shards) if group is not None else []
        return cls(cluster.daemons, shards)

    # ------------------------------------------------------------------ #
    # encode side (record's source worker)

    def encode(self, dst_worker: int, deliver: Any, args: tuple[Any, ...]) -> bytes:
        buf = io.BytesIO()
        _Encoder(buf, self, dst_worker).dump((deliver, args))
        return buf.getvalue()

    def _encode_elack(self, ack: ElAck, dst_worker: int) -> tuple[Any, ...]:
        shard = ack.src
        token = self._inst_tokens.get(id(shard))
        if token is None or token[0] != "shard":
            raise SimulationError("ElAck from an unregistered event logger")
        k = token[1]
        key = (k, dst_worker)
        base = self._ack_sent.get(key, 0)
        upto = ack.upto
        if upto < base:
            raise SimulationError(
                f"ElAck journal regressed for shard {k} -> worker "
                f"{dst_worker}: upto {upto} < shipped {base}"
            )
        tail = tuple(ack.log[base:upto])
        self._ack_sent[key] = upto
        return ("elack", k, ack.data, upto, base, tail)

    # ------------------------------------------------------------------ #
    # decode side (record's destination worker)

    def decode(self, blob: bytes) -> tuple[Any, tuple[Any, ...]]:
        deliver, args = _Decoder(io.BytesIO(blob), self).load()
        return deliver, args

    def _resolve_inst(self, token: tuple[Any, ...]) -> Any:
        kind, key = token
        if kind == "daemon":
            return self._daemons[key]
        if kind == "shard":
            return self._shards[key]
        raise SimulationError(f"unknown instance token {token!r}")

    def _decode_elack(self, token: tuple[Any, ...]) -> ElAck:
        _, k, data, upto, base, tail = token
        shard = self._shards[k]
        mirror = shard._ack_log
        if len(mirror) != base:
            raise SimulationError(
                f"ack-journal mirror for shard {k} out of step: have "
                f"{len(mirror)} entries, sender shipped from {base}"
            )
        mirror.extend(tail)
        ack = ElAck.__new__(ElAck)
        ack.data = data
        ack.src = shard
        ack.log = mirror
        ack.upto = upto
        return ack


class _Encoder(pickle.Pickler):
    def __init__(self, buf: io.BytesIO, codec: HostCodec, dst_worker: int) -> None:
        super().__init__(buf, protocol=pickle.HIGHEST_PROTOCOL)
        self._codec = codec
        self._dst = dst_worker

    def persistent_id(self, obj: Any) -> Any:  # noqa: D102 (pickle hook)
        codec = self._codec
        token = codec._sink_tokens.get(id(obj))
        if token is not None:
            return token
        if type(obj) is ElAck:
            return codec._encode_elack(obj, self._dst)
        token = codec._inst_tokens.get(id(obj))
        if token is not None:
            return ("inst",) + token
        if isinstance(obj, MethodType):
            inst = codec._inst_tokens.get(id(obj.__self__))
            if inst is not None:
                return ("method", inst, obj.__func__.__name__)
            raise SimulationError(
                f"cannot ship bound method {obj.__func__.__qualname__} on "
                f"unregistered {type(obj.__self__).__name__} across workers"
            )
        if isinstance(obj, FunctionType) and "<locals>" in obj.__qualname__:
            raise SimulationError(
                f"cannot ship closure {obj.__qualname__} across workers"
            )
        if isinstance(obj, _IDENTITY_TYPES):
            raise SimulationError(
                f"identity-bearing {type(obj).__name__} reached the "
                "cross-worker codec"
            )
        return None


class _Decoder(pickle.Unpickler):
    def __init__(self, buf: io.BytesIO, codec: HostCodec) -> None:
        super().__init__(buf)
        self._codec = codec

    def persistent_load(self, pid: Any) -> Any:  # noqa: D102 (pickle hook)
        codec = self._codec
        kind = pid[0]
        if kind == "sink":
            return codec._daemons[pid[1]].wire_sink
        if kind == "method":
            inst = codec._resolve_inst(pid[1])
            fn = getattr(inst, pid[2], None)
            if not callable(fn):
                raise SimulationError(f"cannot resolve method token {pid!r}")
            return fn
        if kind == "inst":
            return codec._resolve_inst(pid[1:])
        if kind == "elack":
            return codec._decode_elack(pid)
        raise SimulationError(f"unknown persistent token {pid!r}")
