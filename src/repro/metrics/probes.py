"""Per-process and cluster-wide measurement probes.

The paper instruments MPICH-V with probes to measure (a) piggyback
computation cost, (b) piggyback size, (c) application performance and (d)
recovery performance.  This module is the equivalent instrumentation:
protocols and daemons increment these counters, experiments read them.

All quantities are raw accumulators; derived percentages and rates are
computed by :mod:`repro.experiments` so that the accounting stays auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class ProcessProbes:
    """Counters for one MPI process (daemon + protocol)."""

    rank: int = 0

    # -- traffic -------------------------------------------------------- #
    app_messages_sent: int = 0
    app_payload_bytes_sent: int = 0     # application payload only
    piggyback_bytes_sent: int = 0       # causality piggyback bytes
    piggyback_events_sent: int = 0
    messages_with_piggyback: int = 0    # messages carrying >= 1 event
    header_bytes_sent: int = 0

    # -- piggyback computation (simulated seconds, from the op-count model)
    pb_send_time_s: float = 0.0         # build/serialize on the send path
    pb_recv_time_s: float = 0.0         # merge/deserialize on the recv path

    # -- raw operation counts (host-time-free view of the same work)
    pb_send_ops: int = 0                # graph visits + events serialized
    pb_recv_ops: int = 0

    # -- build/accept loop mechanics (host-side work, not simulated cost) --
    # Creator sequences examined by build_piggyback.  The full-scan
    # reference path counts every held sequence per send; the dirty-creator
    # worklist (ClusterConfig.pb_build_worklist) counts only the sequences
    # that grew since the last send on that channel.  Both modes charge the
    # same simulated cost, so this counter is the evidence of the worklist
    # win without entering any determinism checksum comparison.
    pb_build_seqs_scanned: int = 0
    # Accept-path merge granularity: whole clock-ascending creator runs
    # consumed via the O(1) run classification vs determinants merged one
    # by one through the fallback path (holes / partial overlaps).
    pb_accept_runs: int = 0
    pb_accept_fallback_dets: int = 0

    # -- event logger --------------------------------------------------- #
    el_events_logged: int = 0
    el_acks_received: int = 0

    # -- logs / memory -------------------------------------------------- #
    sender_log_bytes: int = 0
    sender_log_messages: int = 0
    events_held_peak: int = 0           # peak volatile causal-info footprint

    # -- lifecycle ------------------------------------------------------ #
    receptions: int = 0                 # rsn counter mirror
    replayed_receptions: int = 0
    restarts: int = 0
    flops: float = 0.0                  # application-declared useful flops
    compute_time_s: float = 0.0

    def note_events_held(self, count: int) -> None:
        if count > self.events_held_peak:
            self.events_held_peak = count


@dataclass
class RecoveryRecord:
    """One fault → recovery episode (Fig. 10 raw data)."""

    rank: int
    fault_time: float
    detect_time: float = 0.0
    restart_time: float = 0.0
    #: time spent collecting the events to replay (EL or peers) — the
    #: quantity Fig. 10 reports
    event_collection_s: float = 0.0
    events_collected: int = 0
    event_sources: int = 0              # 1 with EL, n-1 without
    replay_end_time: float = 0.0
    collection_bytes: int = 0


@dataclass
class ClusterProbes:
    """Aggregated view over all processes plus shared components."""

    per_rank: dict[int, ProcessProbes] = field(default_factory=dict)
    recoveries: list[RecoveryRecord] = field(default_factory=list)

    # Event Logger server counters
    el_determinants_stored: int = 0
    el_bytes_received: int = 0
    el_peak_queue: int = 0
    el_busy_time_s: float = 0.0
    #: worst-case shard-sync rounds before one shard's update reaches every
    #: peer directly (0 = single EL, 1 = multicast/broadcast/tree,
    #: ceil((shards-1)/fanout) = gossip); set by the EventLoggerGroup
    el_sync_staleness_bound_rounds: int = 0

    # checkpoint server counters
    checkpoints_stored: int = 0
    checkpoint_bytes: int = 0

    # fault-plan bookkeeping: scheduled faults dropped because the victim
    # was already dead, mid-restart, or finished (OneShot and Periodic
    # plans, plus the domain-level storm/correlated plans)
    faults_skipped: int = 0

    # infrastructure failover counters
    el_failovers: int = 0               # dead-shard ranges absorbed
    el_posts_dropped: int = 0           # log/fetch messages hitting a dead shard
    el_disk_records_recovered: int = 0  # determinants streamed off a dead shard's disk
    el_relog_requests: int = 0          # creators asked to re-log unsynced suffixes
    el_relogged_determinants: int = 0   # determinants re-posted by creators
    ckpt_outages: int = 0               # checkpoint-server failure episodes
    ckpt_waves_aborted: int = 0         # in-flight coordinated waves dropped
    ckpt_stores_aborted: int = 0        # store transactions aborted mid-transfer

    #: per-channel retry/timeout accounting (channel name -> RetryStats);
    #: populated lazily by Cluster.rpc_channel
    rpc_channels: dict = field(default_factory=dict)

    def rpc_total(self, attr: str) -> int:
        """Sum one RetryStats column over every service channel."""
        return sum(getattr(s, attr) for s in self.rpc_channels.values())

    def rank(self, r: int) -> ProcessProbes:
        if r not in self.per_rank:
            self.per_rank[r] = ProcessProbes(rank=r)
        return self.per_rank[r]

    # -- aggregations used by the experiments --------------------------- #

    def total(self, attr: str) -> float:
        return sum(getattr(p, attr) for p in self.per_rank.values())

    @property
    def total_payload_bytes(self) -> int:
        return int(self.total("app_payload_bytes_sent"))

    @property
    def total_piggyback_bytes(self) -> int:
        return int(self.total("piggyback_bytes_sent"))

    @property
    def piggyback_fraction(self) -> float:
        """Piggybacked data in percent of total application data exchanged
        (the Fig. 7 metric)."""
        payload = self.total_payload_bytes
        if payload == 0:
            return 0.0
        return 100.0 * self.total_piggyback_bytes / payload

    @property
    def pb_send_time_s(self) -> float:
        return self.total("pb_send_time_s")

    @property
    def pb_recv_time_s(self) -> float:
        return self.total("pb_recv_time_s")

    @property
    def pb_total_time_s(self) -> float:
        return self.pb_send_time_s + self.pb_recv_time_s
