"""Measurement probes and report formatting."""

from repro.metrics.probes import ProcessProbes, ClusterProbes
from repro.metrics.reporting import format_table, format_series
from repro.metrics.trace import Timeline, TraceEntry

__all__ = [
    "ProcessProbes",
    "ClusterProbes",
    "format_table",
    "format_series",
    "Timeline",
    "TraceEntry",
]
