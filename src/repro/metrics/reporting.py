"""Plain-text table/series formatting for experiment output.

The experiment modules print the same rows/series the paper reports; these
helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        if abs(v) >= 10:
            return f"{v:.1f}"
        if abs(v) >= 0.01:
            return f"{v:.3g}"
        return f"{v:.3g}"
    return str(v)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    srows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in srows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in srows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[Any],
    series: dict[str, Sequence[Any]],
    title: str = "",
) -> str:
    """Render multiple named series against a shared x axis."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return format_table(headers, rows, title=title)
