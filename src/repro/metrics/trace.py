"""Timeline tracing: record per-rank lifecycle events of a run.

Attach a :class:`Timeline` to a cluster before running to capture an
ordered record of the interesting moments — sends, deliveries, checkpoint
commits, faults, recovery phases — for debugging protocol interleavings
and for producing the recovery timelines shown by the examples.

The recorder is entirely optional and costs nothing when not attached.

Usage::

    cluster = Cluster(...)
    timeline = Timeline.attach(cluster)
    cluster.run()
    for entry in timeline.of_kind("fault"):
        print(entry)
    print(timeline.summary())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster


@dataclass(frozen=True)
class TraceEntry:
    """One recorded event."""

    time_s: float
    kind: str            # send | deliver | checkpoint | fault | restart | ...
    rank: int
    detail: str = ""

    def __str__(self) -> str:
        return f"[{self.time_s * 1e3:10.3f} ms] rank {self.rank:3d} {self.kind:11s} {self.detail}"


class Timeline:
    """Ordered event record, populated by lightweight hook wrappers."""

    def __init__(self) -> None:
        self.entries: list[TraceEntry] = []

    # ------------------------------------------------------------------ #

    def record(self, time_s: float, kind: str, rank: int, detail: str = "") -> None:
        self.entries.append(TraceEntry(time_s, kind, rank, detail))

    def of_kind(self, kind: str) -> list[TraceEntry]:
        return [e for e in self.entries if e.kind == kind]

    def for_rank(self, rank: int) -> list[TraceEntry]:
        return [e for e in self.entries if e.rank == rank]

    def between(self, t0: float, t1: float) -> list[TraceEntry]:
        return [e for e in self.entries if t0 <= e.time_s <= t1]

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for e in self.entries:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    # ------------------------------------------------------------------ #

    @classmethod
    def attach(cls, cluster: "Cluster") -> "Timeline":
        """Instrument a (not yet started) cluster and return the timeline."""
        timeline = cls()
        sim = cluster.sim

        # faults and restarts via the cluster API
        orig_inject = cluster.inject_fault

        def inject_fault(rank: int) -> None:
            if not cluster.finished and rank not in cluster.finished_ranks and cluster.daemons[rank].alive:
                timeline.record(sim.now, "fault", rank)
            orig_inject(rank)

        cluster.inject_fault = inject_fault  # type: ignore[method-assign]

        orig_restart = cluster.restart_app

        def restart_app(rank: int, state, pending) -> None:
            timeline.record(sim.now, "restart", rank)
            orig_restart(rank, state, pending)

        cluster.restart_app = restart_app  # type: ignore[method-assign]

        # sends/deliveries/checkpoints via the daemon's first-class sink
        # hook (Vdaemon is slotted, so wrapping bound methods in place is
        # not an option — and the hook costs one None check when detached)
        for daemon in cluster.daemons.values():
            daemon.trace_sink = timeline.record

        return timeline
