"""MPI-like programming layer over the Vdaemon.

Applications are generators that ``yield from`` these calls, mirroring the
mpi4py API shape (``send``/``recv``/``isend``/``irecv``/collectives) so the
NAS skeletons read like ordinary MPI code.
"""

from repro.mpi.api import ANY_SOURCE, ANY_TAG, MpiContext, ReceivedMessage
from repro.mpi import collectives

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MpiContext",
    "ReceivedMessage",
    "collectives",
]
