"""Collective operations built from point-to-point, MPICH-1.2.5 style.

MPICH 1.2.5 implements collectives over the channel's point-to-point
primitives; we use the classic algorithms of that era:

* ``barrier``   — dissemination (⌈log₂ p⌉ rounds, works for any p);
* ``bcast``     — binomial tree from the root;
* ``reduce``    — binomial tree to the root (mirror of bcast);
* ``allreduce`` — reduce to 0 + bcast from 0 (the MPICH-1 composition);
* ``allgather`` — ring (p−1 rounds of neighbour exchange);
* ``alltoall``  — pairwise exchange (p−1 rounds, partner = rank XOR/shift).

Every collective call consumes one tag block from
:meth:`~repro.mpi.api.MpiContext.next_collective_tag`, so overlapping
in-simulation collectives and point-to-point traffic never cross-match.
(That overlap is simulated time only: nothing here — or anywhere under
``src/repro`` — uses host threads or processes, which the
``host-thread`` simlint rule now enforces; host-side parallelism lives
in ``benchmarks/perf/pool.py``, outside the simulated world.)
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.mpi.api import MpiContext


def _op_or_sum(op: Optional[Callable[[Any, Any], Any]]):
    if op is not None:
        return op

    def _sum(a, b):
        if a is None:
            return b
        if b is None:
            return a
        return a + b

    return _sum


def barrier(ctx: MpiContext):
    """Dissemination barrier: round k exchanges with rank ± 2^k."""
    tag = ctx.next_collective_tag()
    p = ctx.size
    if p == 1:
        return
    k = 0
    step = 1
    while step < p:
        dst = (ctx.rank + step) % p
        src = (ctx.rank - step) % p
        yield from ctx.sendrecv(dst, 4, src, tag=tag + k)
        step <<= 1
        k += 1


def bcast(ctx: MpiContext, root: int, nbytes: int, payload: Any = None):
    """Binomial-tree broadcast; returns the payload on every rank."""
    tag = ctx.next_collective_tag()
    p = ctx.size
    if p == 1:
        return payload
    vrank = (ctx.rank - root) % p
    # receive from parent (unless root); mask ends at the low set bit of
    # vrank, or at the first power of two >= p for the root
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = (vrank - mask + root) % p
            msg = yield from ctx.recv(parent, tag)
            payload = msg.payload
            break
        mask <<= 1
    # forward to children vrank + mask/2, mask/4, ...
    mask >>= 1
    while mask > 0:
        child_v = vrank + mask
        if child_v < p:
            child = (child_v + root) % p
            yield from ctx.send(child, nbytes, tag=tag, payload=payload)
        mask >>= 1
    return payload


def reduce(ctx: MpiContext, root: int, nbytes: int, value: Any, op=None):
    """Binomial-tree reduction; the root returns the combined value."""
    tag = ctx.next_collective_tag()
    combine = _op_or_sum(op)
    p = ctx.size
    if p == 1:
        return value
    vrank = (ctx.rank - root) % p
    acc = value
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = (vrank & ~mask) % p
            yield from ctx.send((parent + root) % p, nbytes, tag=tag, payload=acc)
            return None
        child_v = vrank | mask
        if child_v < p:
            msg = yield from ctx.recv((child_v + root) % p, tag)
            acc = combine(acc, msg.payload)
        mask <<= 1
    return acc


def allreduce(ctx: MpiContext, nbytes: int, value: Any, op=None):
    """MPICH-1 composition: reduce to rank 0, then broadcast."""
    acc = yield from reduce(ctx, 0, nbytes, value, op)
    result = yield from bcast(ctx, 0, nbytes, acc)
    return result


def allgather(ctx: MpiContext, nbytes: int, value: Any):
    """Ring allgather; returns the list of per-rank values."""
    tag = ctx.next_collective_tag()
    p = ctx.size
    values: list[Any] = [None] * p
    values[ctx.rank] = value
    if p == 1:
        return values
    right = (ctx.rank + 1) % p
    left = (ctx.rank - 1) % p
    carry_rank = ctx.rank
    for step in range(p - 1):
        send_payload = (carry_rank, values[carry_rank])
        msg = yield from ctx.sendrecv(
            right, nbytes, left, tag=tag + step, payload=send_payload
        )
        got_rank, got_value = msg.payload
        values[got_rank] = got_value
        carry_rank = got_rank
    return values


def alltoall(ctx: MpiContext, nbytes_per_pair: int):
    """Pairwise-exchange alltoall (payload sizes only, no data carried)."""
    tag = ctx.next_collective_tag()
    p = ctx.size
    if p == 1:
        return
    for step in range(1, p):
        if p & (p - 1) == 0:  # power of two: XOR pairing (perfect matching)
            dst = src = ctx.rank ^ step
        else:  # shift pattern: send right by step, receive from the left
            dst = (ctx.rank + step) % p
            src = (ctx.rank - step) % p
        yield from ctx.sendrecv(dst, nbytes_per_pair, src, tag=tag + step)


def gather(ctx: MpiContext, root: int, nbytes: int, value: Any):
    """Linear gather to the root; returns list at root, None elsewhere."""
    tag = ctx.next_collective_tag()
    p = ctx.size
    if ctx.rank == root:
        values: list[Any] = [None] * p
        values[root] = value
        for src in range(p):
            if src == root:
                continue
            msg = yield from ctx.recv(src, tag)
            values[src] = msg.payload
        return values
    yield from ctx.send(root, nbytes, tag=tag, payload=value)
    return None


def scatter(ctx: MpiContext, root: int, nbytes: int, values: Any):
    """Linear scatter from the root; every rank returns its element."""
    tag = ctx.next_collective_tag()
    p = ctx.size
    if ctx.rank == root:
        if values is None or len(values) != p:
            raise ValueError("root must provide one value per rank")
        for dst in range(p):
            if dst == root:
                continue
            yield from ctx.send(dst, nbytes, tag=tag, payload=values[dst])
        return values[root]
    msg = yield from ctx.recv(root, tag)
    return msg.payload


def reduce_scatter(ctx: MpiContext, nbytes: int, values: list[Any], op=None):
    """Combine per-destination contributions; rank r returns the combined
    element r (MPI_Reduce_scatter_block over Python objects).

    Implemented as the MPICH-1 composition reduce-to-0 + scatter.
    """
    combine = _op_or_sum(op)
    if len(values) != ctx.size:
        raise ValueError("need one contribution per rank")

    def combine_lists(a, b):
        if a is None:
            return list(b)
        if b is None:
            return list(a)
        return [combine(x, y) for x, y in zip(a, b)]

    totals = yield from reduce(ctx, 0, nbytes * ctx.size, list(values), combine_lists)
    mine = yield from scatter(ctx, 0, nbytes, totals)
    return mine


def scan(ctx: MpiContext, nbytes: int, value: Any, op=None):
    """Inclusive prefix reduction along rank order (linear pipeline)."""
    tag = ctx.next_collective_tag()
    combine = _op_or_sum(op)
    acc = value
    if ctx.rank > 0:
        msg = yield from ctx.recv(ctx.rank - 1, tag)
        acc = combine(msg.payload, value)
    if ctx.rank < ctx.size - 1:
        yield from ctx.send(ctx.rank + 1, nbytes, tag=tag, payload=acc)
    return acc
