"""MPI point-to-point layer: matching, blocking/non-blocking receive.

The :class:`MpiContext` is one rank's view of the world: it owns the
application state dict (the restartable-style durable state, DESIGN.md
§5.1), the unexpected-message queue, and the pending-receive list.  The
daemon delivers messages in rsn order (the logged non-deterministic order);
matching below is then deterministic given that order, which is what makes
replay reproduce the original execution.

Blocking semantics mirror MPICH: ``send`` returns once the message is
handed to the daemon (buffered/eager, plus the rendezvous handshake for
large payloads); ``recv`` blocks until a matching message is delivered.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Optional

from repro.simulator.process import Future

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster
    from repro.runtime.daemon import Vdaemon, WireMessage

#: wildcard source / tag (MPI_ANY_SOURCE / MPI_ANY_TAG)
ANY_SOURCE = -1
ANY_TAG = -1


@dataclass(frozen=True)
class ReceivedMessage:
    """What ``recv`` returns to the application."""

    src: int
    tag: int
    nbytes: int
    payload: Any
    ssn: int


@dataclass
class _PendingRecv:
    source: int
    tag: int
    future: Future


class RecvRequest:
    """Handle returned by :meth:`MpiContext.irecv`."""

    def __init__(self, ctx: "MpiContext", pending: _PendingRecv):
        self._ctx = ctx
        self._pending = pending

    def wait(self):
        """Generator: block until the receive completes."""
        msg = yield self._pending.future
        return msg


class MpiContext:
    """One rank's MPI world (mpi4py-flavoured, generator-based)."""

    def __init__(self, cluster: "Cluster", rank: int, daemon: "Vdaemon"):
        self.cluster = cluster
        self.rank = rank
        self.size = cluster.nprocs
        self.daemon = daemon
        self.sim = cluster.sim
        self.config = cluster.config
        self.probes = daemon.probes

        #: durable application state ("restartable style")
        self.state: dict = {}
        #: declared resident size of the application state (checkpoint size)
        self.state_nbytes: int = 1024

        self._queue: list[ReceivedMessage] = []
        self._pending: list[_PendingRecv] = []
        self._coll_seq = 0

        daemon.deliver_to_app = self._on_delivery

    # ------------------------------------------------------------------ #
    # delivery / matching

    @staticmethod
    def _matches(source: int, tag: int, msg: ReceivedMessage) -> bool:
        return (source == ANY_SOURCE or source == msg.src) and (
            tag == ANY_TAG or tag == msg.tag
        )

    def _on_delivery(self, wire: "WireMessage") -> None:
        msg = ReceivedMessage(
            src=wire.src,
            tag=wire.tag,
            nbytes=wire.nbytes,
            payload=wire.payload,
            ssn=wire.ssn,
        )
        for i, pending in enumerate(self._pending):
            if self._matches(pending.source, pending.tag, msg):
                del self._pending[i]
                pending.future.resolve(msg)
                return
        self._queue.append(msg)

    # ------------------------------------------------------------------ #
    # point to point

    def send(self, dst: int, nbytes: int, tag: int = 0, payload: Any = None):
        """Generator: blocking (buffered) send."""
        ssn = yield from self.daemon.app_send(dst, nbytes, tag=tag, payload=payload)
        return ssn

    def isend(self, dst: int, nbytes: int, tag: int = 0, payload: Any = None):
        """Generator: non-blocking send (identical cost model to send,
        since sends complete at local injection)."""
        ssn = yield from self.daemon.app_send(dst, nbytes, tag=tag, payload=payload)
        return ssn

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator: blocking receive; returns a ReceivedMessage."""
        for i, msg in enumerate(self._queue):
            if self._matches(source, tag, msg):
                del self._queue[i]
                return msg
        fut = Future(self.sim, f"recv@{self.rank}(src={source},tag={tag})")
        self._pending.append(_PendingRecv(source, tag, fut))
        msg = yield fut
        return msg

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        """Post a non-blocking receive (no yield); wait on the request."""
        for i, msg in enumerate(self._queue):
            if self._matches(source, tag, msg):
                del self._queue[i]
                fut = Future(self.sim, f"irecv@{self.rank}")
                fut.resolve(msg)
                return RecvRequest(self, _PendingRecv(source, tag, fut))
        pending = _PendingRecv(source, tag, Future(self.sim, f"irecv@{self.rank}"))
        self._pending.append(pending)
        return RecvRequest(self, pending)

    def sendrecv(
        self,
        dst: int,
        nbytes: int,
        src: int,
        tag: int = 0,
        payload: Any = None,
        recv_tag: Optional[int] = None,
    ):
        """Generator: post the receive, send, then wait (deadlock-free)."""
        req = self.irecv(src, tag if recv_tag is None else recv_tag)
        yield from self.send(dst, nbytes, tag=tag, payload=payload)
        msg = yield from req.wait()
        return msg

    # ------------------------------------------------------------------ #
    # computation and checkpoints

    def compute_seconds(self, seconds: float):
        """Generator: occupy the CPU for ``seconds`` of simulated time."""
        if seconds < 0:
            raise ValueError("negative compute time")
        self.probes.compute_time_s += seconds
        if seconds > 0:
            yield seconds

    def compute_flops(self, flops: float):
        """Generator: charge ``flops`` of useful work at the node rate."""
        self.probes.flops += flops
        yield from self.compute_seconds(flops / self.config.node_flops)

    def checkpoint_poll(self):
        """Generator: safe point — take a checkpoint if one was requested.

        Applications call this once per outer iteration; the checkpoint
        scheduler's requests are honored here so that the snapshot is taken
        at a state where the daemon counters and the application state
        dict are mutually consistent.
        """
        if self.daemon.checkpoint_pending:
            self.note_collective_seq()
            yield from self.daemon.take_checkpoint()

    # ------------------------------------------------------------------ #
    # collectives sugar (delegates to repro.mpi.collectives)

    def next_collective_tag(self) -> int:
        """Unique per-call tag base; identical across ranks because all
        ranks execute the same collective sequence."""
        self._coll_seq += 1
        return (1 << 20) + self._coll_seq * 64

    def barrier(self):
        from repro.mpi import collectives

        yield from collectives.barrier(self)

    def bcast(self, root: int, nbytes: int, payload: Any = None):
        from repro.mpi import collectives

        result = yield from collectives.bcast(self, root, nbytes, payload)
        return result

    def reduce(self, root: int, nbytes: int, value: Any, op=None):
        from repro.mpi import collectives

        result = yield from collectives.reduce(self, root, nbytes, value, op)
        return result

    def allreduce(self, nbytes: int, value: Any, op=None):
        from repro.mpi import collectives

        result = yield from collectives.allreduce(self, nbytes, value, op)
        return result

    def alltoall(self, nbytes_per_pair: int):
        from repro.mpi import collectives

        yield from collectives.alltoall(self, nbytes_per_pair)

    def allgather(self, nbytes: int, value: Any):
        from repro.mpi import collectives

        result = yield from collectives.allgather(self, nbytes, value)
        return result

    # ------------------------------------------------------------------ #
    # checkpoint support

    def export_pending(self) -> list[ReceivedMessage]:
        """Unconsumed delivered messages (part of the checkpoint image)."""
        return list(self._queue)

    def restore(self, state: Optional[dict], pending: Optional[list]) -> None:
        """Reset for a restart: swap in checkpointed state and queue."""
        self.state = state if state is not None else {}
        self._queue = list(pending) if pending is not None else []
        self._pending = []
        self._coll_seq = self.state.get("_coll_seq", 0)

    def note_collective_seq(self) -> None:
        """Persist the collective tag counter into the durable state so a
        restarted rank keeps issuing matching tags."""
        self.state["_coll_seq"] = self._coll_seq
