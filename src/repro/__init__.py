"""repro — reproduction of *Impact of Event Logger on Causal Message Logging
Protocols for Fault Tolerant MPI* (Bouteiller, Collin, Hérault, Lemarinier,
Cappello — IPPS 2005).

The package implements the MPICH-V framework as a deterministic
discrete-event simulation, the three causal message-logging protocols the
paper compares (Vcausal, Manetho, LogOn), the Event Logger stable server,
the pessimistic and coordinated-checkpoint baselines, the NAS benchmark
communication skeletons and a NetPIPE-style ping-pong — plus one experiment
module per paper figure/table.

Quick start::

    from repro import Cluster, STACKS

    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 4096, payload="ping")
        else:
            msg = yield from ctx.recv(0)
        value = yield from ctx.allreduce(8, ctx.rank)
        return value

    result = Cluster(nprocs=4, app_factory=app, stack="vcausal").run()
    print(result.sim_time, result.probes.piggyback_fraction)
"""

from repro.runtime.cluster import Cluster, RunResult
from repro.runtime.config import CAUSAL_PROTOCOLS, FIGURE_STACKS, STACKS, ClusterConfig, StackSpec
from repro.runtime.failure import (
    CompositeFaults,
    CorrelatedFaults,
    FailureDomains,
    InfraFaults,
    OneShotFaults,
    PeriodicFaults,
    StormFaults,
)

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "RunResult",
    "ClusterConfig",
    "StackSpec",
    "STACKS",
    "FIGURE_STACKS",
    "CAUSAL_PROTOCOLS",
    "OneShotFaults",
    "PeriodicFaults",
    "CorrelatedFaults",
    "StormFaults",
    "InfraFaults",
    "CompositeFaults",
    "FailureDomains",
    "__version__",
]
