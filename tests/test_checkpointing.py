"""Checkpoint machinery: scheduler policies, server transactions, GC."""

import pytest

from repro import Cluster
from repro.runtime.checkpoint_scheduler import CheckpointScheduler

from tests.conftest import ring_app, run_ring


def test_scheduler_rejects_unknown_policy():
    with pytest.raises(ValueError):
        Cluster(nprocs=2, app_factory=ring_app(2), checkpoint_policy="bogus")


def test_scheduler_requires_interval():
    with pytest.raises(ValueError):
        Cluster(nprocs=2, app_factory=ring_app(2), checkpoint_policy="round-robin")


def test_coordinated_protocol_requires_coordinated_policy():
    with pytest.raises(ValueError):
        Cluster(
            nprocs=2,
            app_factory=ring_app(2),
            stack="coordinated",
            checkpoint_policy="round-robin",
            checkpoint_interval_s=1.0,
        )


def test_round_robin_cycles_ranks():
    result = run_ring(
        "vcausal", nprocs=4, iterations=30,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.04,
    )
    server = result.cluster.checkpoint_server
    # with enough ticks every rank got at least one committed image
    assert set(server.images) == {0, 1, 2, 3}


def test_coordinated_waves_complete():
    result = run_ring(
        "coordinated", nprocs=4, iterations=30,
        checkpoint_policy="coordinated", checkpoint_interval_s=0.1,
    )
    server = result.cluster.checkpoint_server
    wave = server.latest_complete_wave(4)
    assert wave is not None
    assert server.wave_complete(wave, 4)


def test_checkpoint_image_contains_composed_sizes():
    result = run_ring(
        "vcausal", nprocs=2, iterations=20,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.05,
    )
    server = result.cluster.checkpoint_server
    image = next(iter(server.images.values()))
    # baseline (256 KiB) + declared app state (>= 1024) at minimum
    assert image.nbytes >= 256 * 1024 + 1024
    snap = image.snapshot
    assert "app_state" in snap and "protocol" in snap and "sender_log" in snap
    assert snap["clock"] >= 0


def test_sender_log_gc_on_peer_checkpoint():
    """A committed checkpoint notifies peers to GC their payload logs."""
    no_ckpt = run_ring("vcausal", nprocs=4, iterations=30)
    with_ckpt = run_ring(
        "vcausal", nprocs=4, iterations=30,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.03,
    )
    held_no = max(
        d.sender_log.bytes_held for d in no_ckpt.cluster.daemons.values()
    )
    held_with = max(
        d.sender_log.bytes_held for d in with_ckpt.cluster.daemons.values()
    )
    assert held_with < held_no


def test_checkpoint_versions_increase():
    result = run_ring(
        "vcausal", nprocs=2, iterations=40,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.02,
    )
    server = result.cluster.checkpoint_server
    assert any(img.version >= 2 for img in server.images.values())


def test_checkpoints_do_not_change_results():
    plain = run_ring("vcausal", nprocs=4, iterations=20)
    ckpt = run_ring(
        "vcausal", nprocs=4, iterations=20,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.03,
    )
    assert plain.results == ckpt.results


def test_checkpoint_blocking_overhead_charged():
    plain = run_ring("vcausal", nprocs=2, iterations=20)
    ckpt = run_ring(
        "vcausal", nprocs=2, iterations=20,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.02,
    )
    assert ckpt.sim_time > plain.sim_time


def test_probes_count_checkpoints():
    result = run_ring(
        "vcausal", nprocs=2, iterations=20,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.03,
    )
    assert result.probes.checkpoints_stored >= 2
    assert result.probes.checkpoint_bytes > 0
