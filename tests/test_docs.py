"""Docs check: the markdown documentation must not rot.

Validators over ``docs/*.md``, the root ``README.md`` and
``benchmarks/perf/README.md``:

* relative markdown links resolve to existing files, and their
  ``#fragment`` parts resolve to actual headings (in-page anchors);
* backticked repository paths (``src/...``, ``docs/...``, layer-relative
  ``runtime/config.py``-style references) point at existing files;
* backticked ``repro.*`` dotted references import (module, or attribute
  of a module);
* fenced ``python`` code blocks at least compile;
* backticked identifiers that look like configuration knobs name real
  ``ClusterConfig`` fields (or other known public attributes), and —
  the other direction — every ``ClusterConfig`` knob is documented
  somewhere (``docs/PROTOCOLS.md`` carries the full table).
"""

from __future__ import annotations

import importlib
import re
from dataclasses import fields as dc_fields
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

DOC_FILES = sorted(
    [
        *(REPO_ROOT / "docs").glob("*.md"),
        REPO_ROOT / "README.md",
        REPO_ROOT / "benchmarks" / "perf" / "README.md",
    ]
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_TICK_RE = re.compile(r"`([^`\n]+)`")
_MODULE_RE = re.compile(r"^repro(\.\w+)+$")
# a repo path: has a slash, no spaces/wildcards/placeholders/options
_PATH_RE = re.compile(r"^[\w.][\w./-]*/[\w./-]*$")
_FENCE_RE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)

#: directories a bare layer-relative reference may live under (docs often
#: say ``runtime/config.py`` for ``src/repro/runtime/config.py``)
_SEARCH_BASES = ("", "src/repro")


def doc_ids():
    return [str(p.relative_to(REPO_ROOT)) for p in DOC_FILES]


@pytest.fixture(params=DOC_FILES, ids=doc_ids())
def doc(request):
    path = request.param
    assert path.exists(), f"missing doc file {path}"
    return path


def test_docs_exist():
    names = {p.name for p in DOC_FILES}
    assert "ARCHITECTURE.md" in names
    assert "BENCHMARKING.md" in names
    assert (REPO_ROOT / "README.md").exists()


def _slugify(heading: str) -> str:
    """GitHub-style heading anchor: lowercase, drop punctuation (including
    backticks/periods/slashes), spaces become hyphens."""
    text = heading.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    """Anchor slugs of every markdown heading (fenced code is skipped so a
    ``# comment`` inside a code block is not mistaken for a heading)."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    fenced = False
    for line in path.read_text().splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        m = re.match(r"^(#{1,6})\s+(.*)$", line)
        if m and not fenced:
            slug = _slugify(m.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def test_markdown_links_resolve(doc):
    text = doc.read_text()
    broken = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target, _, fragment = target.partition("#")
        if target and not (doc.parent / target).exists():
            broken.append(target)
            continue
        if fragment:
            # in-page anchor (``#x`` in this doc, ``other.md#x`` there)
            anchor_file = doc if not target else doc.parent / target
            if anchor_file.suffix == ".md" and fragment not in _anchors(anchor_file):
                broken.append(f"{target}#{fragment}")
    assert not broken, f"{doc.name}: broken links/anchors {broken}"


def test_backticked_paths_exist(doc):
    text = doc.read_text()
    missing = []
    for token in _TICK_RE.findall(text):
        token = token.strip().rstrip("/")
        if not _PATH_RE.match(token) or ".." in token:
            continue
        candidates = [doc.parent / token] + [
            REPO_ROOT / base / token if base else REPO_ROOT / token
            for base in _SEARCH_BASES
        ]
        if not any(c.exists() for c in candidates):
            missing.append(token)
    assert not missing, f"{doc.name}: dangling path references {missing}"


def test_backticked_module_references_import(doc):
    text = doc.read_text()
    broken = []
    for token in _TICK_RE.findall(text):
        token = token.strip()
        if not _MODULE_RE.match(token):
            continue
        try:
            importlib.import_module(token)
            continue
        except ImportError:
            pass
        module_name, _, attr = token.rpartition(".")
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            broken.append(token)
            continue
        if not hasattr(module, attr):
            broken.append(token)
    assert not broken, f"{doc.name}: dangling module references {broken}"


def _config_field_names() -> set[str]:
    from repro.runtime.config import ClusterConfig

    return {f.name for f in dc_fields(ClusterConfig)}


def _known_identifiers() -> set[str]:
    """Public attribute names a doc may legitimately backtick alongside the
    config knobs (probe counters, stack-spec fields, recovery records),
    plus the benchmark scenario names (``engine_chain`` must not read as a
    knob of the ``engine_`` family)."""
    from benchmarks.perf import run_bench
    from repro.metrics.probes import ClusterProbes, ProcessProbes, RecoveryRecord
    from repro.runtime.config import ClusterConfig, StackSpec

    known: set[str] = set()
    for cls in (ClusterConfig, StackSpec, ProcessProbes, ClusterProbes, RecoveryRecord):
        known |= {n for n in dir(cls) if not n.startswith("_")}
        for f in dc_fields(cls):
            known.add(f.name)
    known |= set(run_bench.scenarios(quick=False))
    known |= set(run_bench.scenarios(quick=True))
    return known


def test_documented_knob_references_exist(doc):
    """Backticked identifiers that look like configuration knobs (same
    ``first_segment_`` family as a real ``ClusterConfig`` field, or an
    explicit ``ClusterConfig.x``) must name an attribute that exists —
    a typo'd or removed knob must not survive in the docs."""
    config_fields = _config_field_names()
    known = _known_identifiers()
    knob_prefixes = {name.split("_", 1)[0] + "_" for name in config_fields if "_" in name}
    text = doc.read_text()
    bogus = []
    for token in _TICK_RE.findall(text):
        token = token.strip()
        m = re.match(r"^ClusterConfig\.(\w+)$", token)
        if m:
            if m.group(1) not in config_fields:
                bogus.append(token)
            continue
        # bare snake_case identifier (possibly with a ="value" suffix)
        m = re.match(r"^([a-z][a-z0-9]*(?:_[a-z0-9]+)+)(?:=.*)?$", token)
        if not m:
            continue
        ident = m.group(1)
        if any(ident.startswith(p) for p in knob_prefixes) and ident not in known:
            bogus.append(token)
    assert not bogus, f"{doc.name}: knob-like references to nothing {bogus}"


def test_every_config_knob_documented():
    """The reverse direction: every ``ClusterConfig`` field must be
    mentioned (backticked) in at least one doc — ``docs/PROTOCOLS.md``
    carries the complete knob table, so an undocumented knob means that
    table has rotted."""
    mentioned: set[str] = set()
    for doc in DOC_FILES:
        for token in _TICK_RE.findall(doc.read_text()):
            mentioned |= set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", token))
    undocumented = _config_field_names() - mentioned
    assert not undocumented, f"config knobs documented nowhere: {sorted(undocumented)}"


def test_python_code_fences_compile(doc):
    text = doc.read_text()
    for i, (lang, body) in enumerate(_FENCE_RE.findall(text)):
        if lang != "python":
            continue
        try:
            compile(body, f"{doc.name}[fence {i}]", "exec")
        except SyntaxError as exc:  # pragma: no cover - failure message
            pytest.fail(f"{doc.name} python fence {i} does not compile: {exc}")
