"""Docs check: the markdown documentation must not rot.

Three validators over ``docs/*.md``, the root ``README.md`` and
``benchmarks/perf/README.md``:

* relative markdown links resolve to existing files;
* backticked repository paths (``src/...``, ``docs/...``, layer-relative
  ``runtime/config.py``-style references) point at existing files;
* backticked ``repro.*`` dotted references import (module, or attribute
  of a module);
* fenced ``python`` code blocks at least compile.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

DOC_FILES = sorted(
    [
        *(REPO_ROOT / "docs").glob("*.md"),
        REPO_ROOT / "README.md",
        REPO_ROOT / "benchmarks" / "perf" / "README.md",
    ]
)

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_TICK_RE = re.compile(r"`([^`\n]+)`")
_MODULE_RE = re.compile(r"^repro(\.\w+)+$")
# a repo path: has a slash, no spaces/wildcards/placeholders/options
_PATH_RE = re.compile(r"^[\w.][\w./-]*/[\w./-]*$")
_FENCE_RE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)

#: directories a bare layer-relative reference may live under (docs often
#: say ``runtime/config.py`` for ``src/repro/runtime/config.py``)
_SEARCH_BASES = ("", "src/repro")


def doc_ids():
    return [str(p.relative_to(REPO_ROOT)) for p in DOC_FILES]


@pytest.fixture(params=DOC_FILES, ids=doc_ids())
def doc(request):
    path = request.param
    assert path.exists(), f"missing doc file {path}"
    return path


def test_docs_exist():
    names = {p.name for p in DOC_FILES}
    assert "ARCHITECTURE.md" in names
    assert "BENCHMARKING.md" in names
    assert (REPO_ROOT / "README.md").exists()


def test_markdown_links_resolve(doc):
    text = doc.read_text()
    broken = []
    for target in _LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = target.split("#")[0]
        if not target:
            continue
        if not (doc.parent / target).exists():
            broken.append(target)
    assert not broken, f"{doc.name}: broken links {broken}"


def test_backticked_paths_exist(doc):
    text = doc.read_text()
    missing = []
    for token in _TICK_RE.findall(text):
        token = token.strip().rstrip("/")
        if not _PATH_RE.match(token) or ".." in token:
            continue
        candidates = [doc.parent / token] + [
            REPO_ROOT / base / token if base else REPO_ROOT / token
            for base in _SEARCH_BASES
        ]
        if not any(c.exists() for c in candidates):
            missing.append(token)
    assert not missing, f"{doc.name}: dangling path references {missing}"


def test_backticked_module_references_import(doc):
    text = doc.read_text()
    broken = []
    for token in _TICK_RE.findall(text):
        token = token.strip()
        if not _MODULE_RE.match(token):
            continue
        try:
            importlib.import_module(token)
            continue
        except ImportError:
            pass
        module_name, _, attr = token.rpartition(".")
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            broken.append(token)
            continue
        if not hasattr(module, attr):
            broken.append(token)
    assert not broken, f"{doc.name}: dangling module references {broken}"


def test_python_code_fences_compile(doc):
    text = doc.read_text()
    for i, (lang, body) in enumerate(_FENCE_RE.findall(text)):
        if lang != "python":
            continue
        try:
            compile(body, f"{doc.name}[fence {i}]", "exec")
        except SyntaxError as exc:  # pragma: no cover - failure message
            pytest.fail(f"{doc.name} python fence {i} does not compile: {exc}")
