"""Unit tests for the sender-based payload log."""

from repro.core.sender_log import SenderLog


def test_record_and_get():
    log = SenderLog(0)
    log.record(1, 1, 7, 100, "payload")
    entry = log.get(1, 1)
    assert entry.payload == "payload"
    assert entry.nbytes == 100
    assert log.bytes_held == 100
    assert log.messages_held == 1


def test_record_duplicate_ssn_is_idempotent():
    """Replayed re-executions regenerate identical sends."""
    log = SenderLog(0)
    log.record(1, 1, 0, 100, "a")
    log.record(1, 1, 0, 100, "a")
    assert log.messages_held == 1
    assert log.bytes_held == 100


def test_sends_to_ordered_and_filtered():
    log = SenderLog(0)
    for ssn in (3, 1, 2, 5, 4):
        log.record(2, ssn, 0, 10, f"p{ssn}")
    got = log.sends_to(2, ssn_after=2)
    assert [e.ssn for e in got] == [3, 4, 5]
    assert log.sends_to(9) == []


def test_gc_destination_frees_bytes():
    log = SenderLog(0)
    for ssn in range(1, 6):
        log.record(1, ssn, 0, 100, None)
    freed = log.gc_destination(1, ssn_upto=3)
    assert freed == 300
    assert log.bytes_held == 200
    assert [e.ssn for e in log.sends_to(1)] == [4, 5]
    # gc of an unknown destination is a no-op
    assert log.gc_destination(7, 100) == 0


def test_iteration_covers_all_destinations():
    log = SenderLog(0)
    log.record(1, 1, 0, 10, None)
    log.record(2, 1, 0, 20, None)
    assert sorted(e.dst for e in log) == [1, 2]


def test_export_restore_roundtrip():
    log = SenderLog(0)
    for ssn in range(1, 4):
        log.record(1, ssn, 0, 50, f"m{ssn}")
    state = log.export_state()
    fresh = SenderLog(0)
    fresh.restore_state(state)
    assert fresh.bytes_held == log.bytes_held
    assert fresh.messages_held == log.messages_held
    assert [e.payload for e in fresh.sends_to(1)] == ["m1", "m2", "m3"]
    # the restored log is independent of the snapshot
    fresh.record(1, 4, 0, 50, "m4")
    assert log.get(1, 4) is None
