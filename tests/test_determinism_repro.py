"""Run-twice reproducibility: same (scenario, seed, config) → same bits.

Bit-identity across *engines* (tests/test_partition_conformance.py) is
only meaningful if a single configuration is reproducible with *itself*:
two fresh clusters built from the same scenario, seed and config must
produce byte-identical result images — application results, simulated
time, event counts, and the complete probe snapshot.  Any hidden host
nondeterminism (dict iteration over object ids, host-clock leakage,
unseeded randomness, cross-run state bleed through module globals) shows
up here first, before it can masquerade as an engine-knob bug in the
differential suites.

The knob matrix deliberately spans every subsystem with its own event
sources: engine coalescing, fused delivery dispatch, sharded-EL sync
topologies, RPC timeout/retry timers, randomized checkpoint scheduling,
fault injection, and the partitioned facade.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import Cluster
from repro.runtime.config import ClusterConfig
from repro.runtime.failure import OneShotFaults

from tests.test_partition_conformance import PROTOCOL_STACKS, schedule_app

#: one schedule with every op kind; deep enough to cross checkpoint waves
OPS = [("ring", 48_000), ("allreduce", 128), ("bcast", 2, 4096), ("compute", 0.003)]


def run_once(stack, *, nprocs=4, seed=0, iterations=3, fault_at=None,
             checkpoint_policy="none", checkpoint_interval_s=None, **config_kw):
    """Build a fresh cluster and return its complete observable image."""
    kw = {}
    if fault_at is not None:
        kw["fault_plan"] = OneShotFaults(fault_at)
    result = Cluster(
        nprocs=nprocs,
        app_factory=schedule_app(OPS, iterations),
        stack=stack,
        config=ClusterConfig(**config_kw),
        seed=seed,
        checkpoint_policy=checkpoint_policy,
        checkpoint_interval_s=checkpoint_interval_s,
        **kw,
    ).run(max_events=30_000_000)
    return {
        "finished": result.finished,
        "results": result.results,
        "sim_time": result.sim_time,
        "events_executed": result.events_executed,
        "probes": dataclasses.asdict(result.probes),
    }


def assert_reproducible(stack, **kw):
    first = run_once(stack, **kw)
    assert first["finished"], (stack, kw)
    second = run_once(stack, **kw)
    if first != second:
        diffs = {
            k: (first[k], second[k]) for k in first if first[k] != second[k]
        }
        if "probes" in diffs:
            diffs["probes"] = {
                f: (first["probes"][f], second["probes"][f])
                for f in first["probes"]
                if first["probes"][f] != second["probes"][f]
            }
        raise AssertionError(f"{stack} not reproducible under {kw}: {diffs}")
    return first


@pytest.mark.parametrize("stack", PROTOCOL_STACKS)
def test_every_protocol_is_reproducible(stack):
    assert_reproducible(stack)


@pytest.mark.parametrize(
    "knobs",
    [
        {"engine_coalesce": False},
        {"delivery_fastpath": False},
        {"engine_coalesce": False, "delivery_fastpath": False},
        {"partition_ranks": 2},
        {"partition_ranks": 4},
        {"partition_ranks": 4, "engine_coalesce": False},
        {"partition_ranks": 4, "partition_workers": 2},
        {"partition_ranks": 4, "partition_workers": 4},
        {"partition_ranks": 4, "partition_workers": 4, "engine_coalesce": False},
        {"el_count": 4, "el_sync_strategy": "multicast"},
        {"el_count": 4, "el_sync_strategy": "tree"},
        {"rpc_timeout_s": 0.05},
    ],
    ids=lambda k: ",".join(f"{n}={v}" for n, v in k.items()),
)
def test_knob_matrix_is_reproducible(knobs):
    """Each engine/EL/RPC knob must stay deterministic in isolation."""
    assert_reproducible("vcausal", **knobs)


def test_randomized_checkpoints_reproduce_per_seed():
    """The 'random' checkpoint policy draws from the cluster seed stream:
    same seed → same waves; different seed → (here) observably different
    schedule, proving the policy consumes the stream at all."""
    a = assert_reproducible(
        "vcausal", seed=7, checkpoint_policy="random", checkpoint_interval_s=0.002,
    )
    b = run_once(
        "vcausal", seed=8, checkpoint_policy="random", checkpoint_interval_s=0.002,
        iterations=3,
    )
    assert b["finished"]
    assert a["results"] == b["results"]  # app results don't depend on waves
    assert a["probes"] != b["probes"]  # but the wave schedule does differ


def test_fault_recovery_is_reproducible():
    """Crash + replay twice: recovery bookkeeping must be bit-stable."""
    base = run_once("manetho")
    image = assert_reproducible(
        "manetho",
        fault_at=[(base["sim_time"] * 0.4, 2)],
        checkpoint_policy="round-robin",
        checkpoint_interval_s=0.02,
    )
    assert len(image["probes"]["recoveries"]) >= 1


def test_partitioned_fault_recovery_is_reproducible():
    """The heaviest composition: partitioned facade + checkpoints + a
    crash, run twice from scratch."""
    base = run_once("vcausal", partition_ranks=4)
    assert_reproducible(
        "vcausal",
        partition_ranks=4,
        fault_at=[(base["sim_time"] * 0.6, 1)],
        checkpoint_policy="round-robin",
        checkpoint_interval_s=0.02,
    )
