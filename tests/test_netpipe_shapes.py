"""NetPIPE shape tests: the Fig. 6 orderings the paper reports."""

import pytest

from repro.workloads.netpipe import (
    measure_bandwidth,
    measure_latency,
    raw_tcp_bandwidth,
)


@pytest.fixture(scope="module")
def latencies():
    out = {}
    for stack in (
        "p4", "vdummy", "vcausal", "manetho", "logon",
        "vcausal-noel", "manetho-noel", "logon-noel",
    ):
        out[stack], _ = measure_latency(stack, nbytes=1, reps=60)
    return out


def test_p4_is_fastest(latencies):
    assert latencies["p4"] < min(
        v for k, v in latencies.items() if k != "p4"
    )


def test_daemon_adds_latency(latencies):
    """Fig. 6(a): ~35 µs gap between P4 and Vdummy."""
    gap = latencies["vdummy"] - latencies["p4"]
    assert 20e-6 < gap < 50e-6


def test_causal_protocols_equal_with_el(latencies):
    """'When using an Event Logger, the latency of the three protocols is
    the same.'"""
    vals = [latencies["vcausal"], latencies["manetho"], latencies["logon"]]
    assert max(vals) - min(vals) < 2e-6


def test_no_el_latency_penalty_ordering(latencies):
    for proto in ("vcausal", "manetho", "logon"):
        assert latencies[f"{proto}-noel"] > latencies[proto]


def test_no_el_penalty_larger_for_graph_methods(latencies):
    """Paper: +5.2% for Vcausal, +10.4% for antecedence-graph methods."""
    vc = latencies["vcausal-noel"] - latencies["vcausal"]
    mn = latencies["manetho-noel"] - latencies["manetho"]
    lg = latencies["logon-noel"] - latencies["logon"]
    assert mn > vc
    assert lg > vc


def test_latency_magnitudes_close_to_paper(latencies):
    paper = {
        "p4": 99.56e-6, "vdummy": 134.84e-6, "vcausal": 156.92e-6,
        "vcausal-noel": 165.17e-6, "manetho-noel": 173.15e-6,
    }
    for stack, target in paper.items():
        assert latencies[stack] == pytest.approx(target, rel=0.06), stack


def test_el_eliminates_piggybacks_on_small_messages():
    _, with_el = measure_latency("vcausal", nbytes=1, reps=60)
    _, without = measure_latency("vcausal-noel", nbytes=1, reps=60)
    frac_el = with_el.probes.total("messages_with_piggyback") / max(
        with_el.probes.total("app_messages_sent"), 1
    )
    frac_no = without.probes.total("messages_with_piggyback") / max(
        without.probes.total("app_messages_sent"), 1
    )
    assert frac_el < 0.05
    assert frac_no > 0.9


def test_bandwidth_increases_with_size_then_saturates():
    bw = measure_bandwidth("vdummy", sizes=(64, 4096, 65536, 1 << 20, 4 << 20), reps=3)
    values = list(bw.values())
    assert values == sorted(values)
    # saturation: the last two within 10%
    assert values[-1] == pytest.approx(values[-2], rel=0.1)
    # Fast Ethernet ceiling
    assert values[-1] < 93.5


def test_raw_tcp_dominates_all_stacks():
    sizes = (1024, 65536, 1 << 20)
    raw = raw_tcp_bandwidth(sizes)
    p4 = measure_bandwidth("p4", sizes=sizes, reps=3)
    for s in sizes:
        assert raw[s] > p4[s]


def test_causal_bandwidth_below_vdummy():
    """Sender-based payload copying costs bandwidth (Fig. 6(b))."""
    sizes = (1 << 20,)
    vd = measure_bandwidth("vdummy", sizes=sizes, reps=3)[1 << 20]
    vc = measure_bandwidth("vcausal", sizes=sizes, reps=3)[1 << 20]
    assert vc < vd


def test_bandwidth_same_for_all_el_protocols():
    """'As in this ping-pong test all protocols add the same amount of
    piggybacked causality, the bandwidth is the same.'"""
    sizes = (256 << 10,)
    values = [
        measure_bandwidth(s, sizes=sizes, reps=3)[256 << 10]
        for s in ("vcausal", "manetho", "logon")
    ]
    assert max(values) - min(values) < 0.5
