# simlint fixture: wall-clock rule (positive / suppressed / clean).
# Lines tagged `# expect: <rule>` must yield exactly one unsuppressed
# finding of that rule; everything else must be clean.
import time


def bad() -> float:
    return time.time()  # expect: wall-clock


def suppressed() -> float:
    return time.time()  # simlint: ignore[wall-clock] - fixture: suppressed hit


def clean(now: float) -> float:
    return now + 1.0
