# simlint fixture: syntax-error meta-rule (this file must not parse).
def broken(:
    pass
