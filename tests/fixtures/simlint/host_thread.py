# simlint fixture: host-thread rule (positive / suppressed / clean).
import os

import threading  # expect: host-thread
from multiprocessing import Pool  # expect: host-thread
import concurrent.futures  # expect: host-thread
import asyncio as aio  # expect: host-thread


def bad_fork() -> int:
    return os.fork()  # expect: host-thread


def suppressed() -> None:
    import _thread  # simlint: ignore[host-thread] - fixture: suppressed hit

    del _thread


def clean(jobs: list[str]) -> list[str]:
    # in-simulation "concurrency" is simulated time, not host threads
    return sorted(jobs)


def clean_names(thread_count: int) -> int:
    # names merely containing the words are fine; only real imports and
    # process-spawning calls count
    threading_like = thread_count
    return threading_like


__all__ = ["bad_fork", "clean", "clean_names", "suppressed", "Pool", "aio"]
