# simlint fixture: hot-closure rule (positive / suppressed / clean).
from typing import Callable


# simlint: hot
def bad_lambda() -> Callable[[int], int]:
    return lambda x: x + 1  # expect: hot-closure


def bad_nested() -> Callable[[], int]:  # simlint: hot
    def inner() -> int:  # expect: hot-closure
        return 1

    return inner


# simlint: hot
def suppressed() -> Callable[[int], int]:
    return lambda x: x - 1  # simlint: ignore[hot-closure] - fixture: suppressed hit


def clean_not_hot() -> Callable[[int], int]:
    return lambda x: x * 2


# simlint: hot
def clean_hot(x: int) -> int:
    return x * 2
