# simlint fixture: raw-random rule (positive / suppressed / clean).
import random  # expect: raw-random

import numpy as np


def bad() -> float:
    return random.random()  # expect: raw-random


def bad_unseeded() -> object:
    return np.random.default_rng()  # expect: raw-random


def bad_global_state() -> float:
    return np.random.rand()  # expect: raw-random


def suppressed() -> float:
    return random.random()  # simlint: ignore[raw-random] - fixture: suppressed hit


def clean(seed: int) -> object:
    return np.random.default_rng(seed)
