# simlint fixture: missing-slots rule (positive / suppressed / clean).
from dataclasses import dataclass
from enum import Enum


class Bad:  # expect: missing-slots
    def __init__(self) -> None:
        self.x = 1


@dataclass
class BadDataclass:  # expect: missing-slots
    x: int = 0


class Suppressed:  # simlint: ignore[missing-slots] - fixture: suppressed hit
    def __init__(self) -> None:
        self.x = 1


class Clean:
    __slots__ = ("x",)

    def __init__(self) -> None:
        self.x = 1


@dataclass(slots=True)
class CleanDataclass:
    x: int = 0


class CleanExemptError(ValueError):
    pass


class CleanEnum(Enum):
    A = 1
