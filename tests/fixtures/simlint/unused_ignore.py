# simlint fixture: unused-ignore meta-rule.
X = 1  # simlint: ignore[wall-clock] - expect: unused-ignore (stale suppression)
Y = 2  # simlint: ignore[no-such-rule] - expect: unused-ignore (unknown rule)
Z = 3
