# simlint fixture: env-read rule (positive / suppressed / clean).
import os


def bad() -> str | None:
    return os.getenv("PATH")  # expect: env-read


def bad_mapping() -> str:
    return os.environ["HOME"]  # expect: env-read


def suppressed() -> str | None:
    return os.getenv("TERM")  # simlint: ignore[env-read] - fixture: suppressed hit


def clean(setting: str) -> str:
    return setting
