# simlint fixture: id-order rule (positive / suppressed / clean).


def bad(obj: object) -> int:
    return id(obj)  # expect: id-order


def suppressed(obj: object) -> int:
    return id(obj)  # simlint: ignore[id-order] - fixture: suppressed hit


def clean(rank: int) -> int:
    return rank
