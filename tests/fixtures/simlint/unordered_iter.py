# simlint fixture: unordered-iter rule (positive / suppressed / clean).
import os


def bad() -> list[int]:
    out: list[int] = []
    for x in {3, 1, 2}:  # expect: unordered-iter
        out.append(x)
    return out


def bad_tracked_name() -> list[int]:
    seen = set([5, 4])
    return [x for x in seen]  # expect: unordered-iter


def bad_listing(path: str) -> list[str]:
    return os.listdir(path)  # expect: unordered-iter


def suppressed() -> list[int]:
    acc = []
    for x in {9, 8}:  # simlint: ignore[unordered-iter] - fixture: suppressed hit
        acc.append(x)
    return acc


def clean() -> list[int]:
    return [x for x in sorted({3, 1, 2})]
