# simlint fixture: whole-file opt-out.
# simlint: skip-file
import time


def would_be_flagged() -> float:
    return time.time()
