# simlint fixture: mutable-default rule (positive / suppressed / clean).
from typing import Optional


def bad(xs=[]) -> list[int]:  # expect: mutable-default
    return xs


def bad_call(m=dict()) -> dict[str, int]:  # expect: mutable-default
    return m


def suppressed(xs={}) -> dict[str, int]:  # simlint: ignore[mutable-default] - fixture: suppressed hit
    return xs


def clean(xs: Optional[list[int]] = None) -> list[int]:
    return [] if xs is None else xs
