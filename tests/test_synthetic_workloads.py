"""Synthetic workload tests, including wildcard-receive replay."""

import pytest

from repro import Cluster, OneShotFaults
from repro.workloads import synthetic


def run(app, nprocs, stack="vcausal", **kw):
    result = Cluster(nprocs=nprocs, app_factory=app, stack=stack, **kw).run(
        max_events=30_000_000
    )
    assert result.finished
    return result


def test_stencil_completes_and_verifies():
    app = synthetic.stencil_2d(2, 2, iterations=8)
    r1 = run(app, 4)
    r2 = run(synthetic.stencil_2d(2, 2, iterations=8), 4, stack="vdummy")
    assert r1.results == r2.results


def test_stencil_rejects_wrong_grid():
    app = synthetic.stencil_2d(2, 2, iterations=2)
    with pytest.raises(ValueError):
        Cluster(nprocs=3, app_factory=app).run()


def test_ring_token_passes_all_ranks():
    result = run(synthetic.ring(iterations=6), 5)
    assert all(v == result.results[0] for v in result.results.values())


def test_random_pairs_deterministic_across_stacks():
    a = run(synthetic.random_pairs(iterations=12, seed=3), 6)
    b = run(synthetic.random_pairs(iterations=12, seed=3), 6, stack="manetho-noel")
    assert a.results == b.results


def test_random_pairs_seed_changes_schedule():
    a = run(synthetic.random_pairs(iterations=12, seed=3), 6)
    b = run(synthetic.random_pairs(iterations=12, seed=4), 6)
    assert a.results != b.results or a.sim_time != b.sim_time


def test_master_worker_completes_all_tasks():
    result = run(synthetic.master_worker(tasks=12), 4)
    assert all(v == result.results[0] for v in result.results.values())


def test_master_worker_single_rank_degenerates():
    result = run(synthetic.master_worker(tasks=4), 1)
    assert result.results[0] == 0


@pytest.mark.parametrize("stack", ["vcausal", "manetho", "logon", "vcausal-noel"])
def test_master_worker_wildcard_replay_after_worker_fault(stack):
    """ANY_SOURCE reception order is the nondeterministic event par
    excellence: killing a worker must not change the master's outcome."""
    base = run(synthetic.master_worker(tasks=16), 4, stack=stack)
    faulty = run(
        synthetic.master_worker(tasks=16), 4, stack=stack,
        fault_plan=OneShotFaults([(base.sim_time / 2, 2)]),
    )
    assert faulty.results == base.results


@pytest.mark.parametrize("stack", ["vcausal", "pessimistic"])
def test_master_worker_master_fault(stack):
    """Killing the master itself: its wildcard reception order must be
    replayed exactly from the determinants."""
    base = run(synthetic.master_worker(tasks=16), 4, stack=stack)
    faulty = run(
        synthetic.master_worker(tasks=16), 4, stack=stack,
        fault_plan=OneShotFaults([(base.sim_time / 2, 0)]),
    )
    assert faulty.results == base.results


def test_stencil_fault_with_checkpoints():
    app = synthetic.stencil_2d(2, 2, iterations=20, flops_per_iter=3e6)
    base = run(app, 4)
    faulty = run(
        synthetic.stencil_2d(2, 2, iterations=20, flops_per_iter=3e6), 4,
        checkpoint_policy="round-robin",
        checkpoint_interval_s=base.sim_time / 6,
        fault_plan=OneShotFaults([(base.sim_time * 0.7, 3)]),
    )
    assert faulty.results == base.results
