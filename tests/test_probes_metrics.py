"""Probe accounting consistency tests."""

import pytest

from repro.metrics.probes import ClusterProbes, ProcessProbes, RecoveryRecord

from tests.conftest import run_ring


def test_rank_accessor_creates_and_caches():
    probes = ClusterProbes()
    p1 = probes.rank(3)
    p2 = probes.rank(3)
    assert p1 is p2
    assert p1.rank == 3


def test_total_sums_across_ranks():
    probes = ClusterProbes()
    probes.rank(0).app_messages_sent = 5
    probes.rank(1).app_messages_sent = 7
    assert probes.total("app_messages_sent") == 12


def test_piggyback_fraction_zero_without_traffic():
    assert ClusterProbes().piggyback_fraction == 0.0


def test_note_events_held_tracks_peak():
    p = ProcessProbes()
    p.note_events_held(5)
    p.note_events_held(3)
    assert p.events_held_peak == 5


def test_end_to_end_accounting_consistency():
    result = run_ring("vcausal", nprocs=4, iterations=10)
    probes = result.probes
    # every rank sent and received messages
    for r in range(4):
        pp = probes.per_rank[r]
        assert pp.app_messages_sent > 0
        assert pp.receptions > 0
        assert pp.compute_time_s > 0
        assert pp.flops > 0
    # every reception was posted to the EL, and all were stored
    assert probes.total("el_events_logged") == probes.total("receptions")
    assert probes.el_determinants_stored == probes.total("receptions")
    # per-message piggyback ratio is sane
    assert probes.total("messages_with_piggyback") <= probes.total(
        "app_messages_sent"
    )


def test_payload_bytes_exclude_piggyback():
    with_el = run_ring("vcausal", nprocs=4, iterations=10)
    without = run_ring("vcausal-noel", nprocs=4, iterations=10)
    # identical application → identical payload bytes, different piggyback
    assert with_el.probes.total_payload_bytes == without.probes.total_payload_bytes
    assert with_el.probes.total_piggyback_bytes < without.probes.total_piggyback_bytes


def test_recovery_record_defaults():
    rec = RecoveryRecord(rank=2, fault_time=1.0)
    assert rec.events_collected == 0
    assert rec.event_sources == 0


def test_compute_time_matches_flops_rate():
    result = run_ring("vdummy", nprocs=2, iterations=5)
    for pp in result.probes.per_rank.values():
        expected = pp.flops / result.cluster.config.node_flops
        assert pp.compute_time_s == pytest.approx(expected)
