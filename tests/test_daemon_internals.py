"""Daemon-level unit tests: dedupe, epochs, replay buffering, ssn flow."""

import pytest

from repro import Cluster
from repro.runtime.daemon import WireMessage

from tests.conftest import ring_app, run_ring


def make_cluster(stack="vcausal", nprocs=2, iterations=3):
    c = Cluster(nprocs=nprocs, app_factory=ring_app(iterations), stack=stack)
    return c


def test_duplicate_ssn_dropped():
    c = make_cluster()
    c.run()
    d1 = c.daemons[1]
    before = d1.clock
    # replay a stale duplicate of the first message from rank 0
    dup = WireMessage(kind="app", src=0, dst=1, ssn=1, nbytes=8, epoch=c.epoch)
    d1.on_wire(dup)
    c.sim.run(check_deadlock=False)
    assert d1.clock == before  # no new determinant was created


def test_stale_epoch_message_dropped():
    c = make_cluster()
    c.run()
    d1 = c.daemons[1]
    before = d1.clock
    msg = WireMessage(
        kind="app", src=0, dst=1, ssn=999, nbytes=8, epoch=c.epoch - 1
    )
    d1.on_wire(msg)
    c.sim.run(check_deadlock=False)
    assert d1.clock == before


def test_message_to_dead_daemon_dropped():
    c = make_cluster()
    c.run()
    d1 = c.daemons[1]
    d1.alive = False
    msg = WireMessage(kind="app", src=0, dst=1, ssn=999, nbytes=8, epoch=c.epoch)
    d1.on_wire(msg)  # no crash, silently dropped
    assert d1.clock >= 0


def test_unknown_wire_kind_raises():
    from repro.simulator.engine import SimulationError

    c = make_cluster()
    c.run()
    with pytest.raises(SimulationError, match="unknown wire kind"):
        c.daemons[1].on_wire(
            WireMessage(kind="bogus", src=0, dst=1, epoch=c.epoch)
        )


def test_ssn_counters_monotone_per_destination():
    c = make_cluster(nprocs=3, iterations=5)
    c.run()
    for d in c.daemons.values():
        for dst, ssn in d.ssn_next.items():
            assert ssn >= 1
            # the receiver saw exactly that many messages from us
            assert c.daemons[dst].last_ssn.get(d.rank, 0) == ssn


def test_clock_equals_total_receptions():
    c = make_cluster(nprocs=4, iterations=6)
    result = c.run()
    for r, d in c.daemons.items():
        assert d.clock == result.probes.per_rank[r].receptions
        assert d.clock > 0


def test_determinants_match_el_store():
    c = make_cluster(nprocs=3, iterations=6)
    c.run()
    group = c.event_logger
    for r, d in c.daemons.items():
        stored = group.shard_for(r).store[r]
        assert [det.clock for det in stored] == list(range(1, d.clock + 1))


def test_vdummy_creates_no_determinants():
    c = make_cluster(stack="vdummy", nprocs=2, iterations=4)
    c.run()
    for d in c.daemons.values():
        assert d.clock == 0
        assert not d.is_logging


def test_pessimistic_send_blocks_until_stability():
    """Pessimistic sends wait for EL acks: more sim time than causal."""
    pes = run_ring("pessimistic", nprocs=4, iterations=10)
    cau = run_ring("vcausal", nprocs=4, iterations=10)
    assert pes.sim_time > cau.sim_time
    assert pes.probes.total("el_acks_received") > 0


def test_hard_reset_restores_counters():
    c = make_cluster(nprocs=2, iterations=5)
    c.run()
    d = c.daemons[0]
    snapshot = {
        "clock": 3,
        "ssn_next": {1: 7},
        "last_ssn": {1: 4},
        "protocol": d.protocol.export_state(),
        "sender_log": d.sender_log.export_state(),
    }
    d.hard_reset(snapshot)
    assert d.clock == 3
    assert d.ssn_next == {1: 7}
    assert d.last_ssn == {1: 4}
    assert d.last_ckpt_clock == 3
    d.hard_reset(None)
    assert d.clock == 0
    assert d.ssn_next == {}


def test_sender_log_populated_only_for_logging_stacks():
    c1 = make_cluster(stack="vcausal", iterations=4)
    c1.run()
    assert all(d.sender_log.messages_held > 0 for d in c1.daemons.values())
    c2 = make_cluster(stack="coordinated", iterations=4)
    c2.run()
    assert all(d.sender_log.messages_held == 0 for d in c2.daemons.values())
