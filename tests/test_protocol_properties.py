"""Property tests on the three causal protocols, driven directly.

A :class:`MiniWorld` drives protocol instances through random message
schedules without the simulator, tracking ground truth:

* **Causal completeness** — on every delivery, the receiver's holdings
  plus the stable prefix cover the causal past of the message (the
  no-orphan safety property of causal logging).
* **No duplicate piggyback** per channel (paper §III-B).
* **Protocol equivalence** — Vcausal, Manetho and LogOn deliver identical
  causal knowledge above the stable bound; they differ only in bytes and
  computation.
* **LogOn partial order** — for i < j, piggyback item j is never in the
  causal past of item i.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Determinant
from repro.core.logon import LogOnProtocol
from repro.core.manetho import ManethoProtocol
from repro.core.vcausal import VcausalProtocol
from repro.metrics.probes import ProcessProbes
from repro.runtime.config import ClusterConfig

CFG = ClusterConfig()
PROTOCOLS = [VcausalProtocol, ManethoProtocol, LogOnProtocol]


class MiniWorld:
    """Synchronous protocol driver with ground-truth tracking."""

    def __init__(self, cls, n: int):
        self.n = n
        self.protocols = [
            cls(r, n, CFG, ProcessProbes(rank=r)) for r in range(n)
        ]
        self.clocks = [0] * n
        self.ssn: dict[tuple[int, int], int] = {}
        #: ground truth: causal closure bound per rank per creator
        self.closure = [[0] * n for _ in range(n)]
        #: events piggybacked per directed channel (for the no-dup check)
        self.channel_history: dict[tuple[int, int], set] = {}
        #: global stable vector (the EL's truth)
        self.stable = [0] * n

    def send(self, src: int, dst: int):
        """One message src → dst with full piggyback processing."""
        proto_src = self.protocols[src]
        pb = proto_src.build_piggyback(dst)

        # -- no duplicate piggyback per channel -------------------------
        hist = self.channel_history.setdefault((src, dst), set())
        ids = [(d.creator, d.clock) for d in pb.events]
        assert len(ids) == len(set(ids)), "duplicate inside one piggyback"
        dup = hist.intersection(ids)
        assert not dup, f"events {dup} piggybacked twice on {src}->{dst}"
        hist.update(ids)

        sender_stable = list(self.stable)
        sender_closure = list(self.closure[src])

        ssn = self.ssn.get((src, dst), 0) + 1
        self.ssn[(src, dst)] = ssn
        dep = self.clocks[src]

        # delivery
        proto_dst = self.protocols[dst]
        proto_dst.accept_piggyback(src, pb, dep)
        self.clocks[dst] += 1
        det = Determinant(dst, self.clocks[dst], src, ssn, dep)
        proto_dst.on_local_event(det)

        # ground truth update: receiver's closure absorbs sender's
        for c in range(self.n):
            if sender_closure[c] > self.closure[dst][c]:
                self.closure[dst][c] = sender_closure[c]
        self.closure[dst][dst] = self.clocks[dst]

        # -- causal completeness ----------------------------------------
        # receiver must hold (or be able to recover from the EL) every
        # event in the causal past of the delivered message
        for c in range(self.n):
            needed = sender_closure[c]
            if needed == 0:
                continue
            held = proto_dst.events_created_by(c)
            held_max = max((d.clock for d in held), default=0)
            covered = max(held_max, sender_stable[c])
            assert covered >= needed, (
                f"rank {dst} misses causal past of creator {c}: "
                f"needs {needed}, holds {held_max}, stable {sender_stable[c]}"
            )
            # holdings above stable must be gap-free (prefix property)
            above = sorted(d.clock for d in held if d.clock > sender_stable[c])
            if above:
                lo = max(sender_stable[c] + 1, above[0])
                expect = list(range(lo, above[-1] + 1))
                assert above == expect, f"hole in holdings of {c} at rank {dst}"
        return pb

    def ack(self, advance_to: dict[int, int], recipients: list[int]):
        """The EL advances its stable clocks and acks some processes."""
        for c, k in advance_to.items():
            self.stable[c] = max(self.stable[c], min(k, self.clocks[c]))
        for r in recipients:
            self.protocols[r].on_el_ack(list(self.stable))

    def holdings_above_stable(self, rank: int) -> dict[int, frozenset]:
        out = {}
        for c in range(self.n):
            held = self.protocols[rank].events_created_by(c)
            out[c] = frozenset(d.clock for d in held if d.clock > self.stable[c])
        return out


def schedule_strategy(max_procs=4, max_steps=40):
    return st.data()


@pytest.mark.parametrize("cls", PROTOCOLS)
@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_invariants_under_random_schedules(cls, data):
    n = data.draw(st.integers(2, 4), label="nprocs")
    world = MiniWorld(cls, n)
    steps = data.draw(st.integers(1, 40), label="steps")
    for _ in range(steps):
        kind = data.draw(st.sampled_from(["send", "send", "send", "ack"]))
        if kind == "send":
            src = data.draw(st.integers(0, n - 1))
            dst = data.draw(st.integers(0, n - 1).filter(lambda r: r != src))
            world.send(src, dst)
        else:
            advance = {
                c: data.draw(st.integers(0, max(world.clocks[c], 0)))
                for c in range(n)
            }
            recips = data.draw(
                st.lists(st.integers(0, n - 1), unique=True, max_size=n)
            )
            world.ack(advance, recips)


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_three_protocols_build_identical_knowledge(data):
    """Same schedule → identical holdings above the stable bound."""
    n = data.draw(st.integers(2, 4), label="nprocs")
    worlds = [MiniWorld(cls, n) for cls in PROTOCOLS]
    steps = data.draw(st.integers(1, 30), label="steps")
    for _ in range(steps):
        kind = data.draw(st.sampled_from(["send", "send", "send", "ack"]))
        if kind == "send":
            src = data.draw(st.integers(0, n - 1))
            dst = data.draw(st.integers(0, n - 1).filter(lambda r: r != src))
            for w in worlds:
                w.send(src, dst)
        else:
            advance = {
                c: data.draw(st.integers(0, max(worlds[0].clocks[c], 0)))
                for c in range(n)
            }
            recips = data.draw(
                st.lists(st.integers(0, n - 1), unique=True, max_size=n)
            )
            for w in worlds:
                w.ack(advance, recips)
    for rank in range(n):
        views = [w.holdings_above_stable(rank) for w in worlds]
        assert views[0] == views[1] == views[2], f"knowledge differs at rank {rank}"


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_logon_piggyback_respects_partial_order(data):
    """For i < j, item j is never in the causal past of item i."""
    n = data.draw(st.integers(2, 4))
    world = MiniWorld(LogOnProtocol, n)
    steps = data.draw(st.integers(1, 30))
    for _ in range(steps):
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1).filter(lambda r: r != src))
        pb = world.send(src, dst)
        lam = world.protocols[src].graph.lamport
        stamps = [lam.get((d.creator, d.clock), 0) for d in pb.events]
        assert stamps == sorted(stamps), "piggyback not in causal order"


@pytest.mark.parametrize("cls", PROTOCOLS)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_held_counter_matches_scan(cls, data):
    """events_held() is maintained incrementally; it must equal the full
    O(#creators) recount after every hook invocation."""
    n = data.draw(st.integers(2, 4), label="nprocs")
    world = MiniWorld(cls, n)
    steps = data.draw(st.integers(1, 40), label="steps")
    for _ in range(steps):
        kind = data.draw(st.sampled_from(["send", "send", "send", "ack"]))
        if kind == "send":
            src = data.draw(st.integers(0, n - 1))
            dst = data.draw(st.integers(0, n - 1).filter(lambda r: r != src))
            world.send(src, dst)
        else:
            advance = {
                c: data.draw(st.integers(0, max(world.clocks[c], 0)))
                for c in range(n)
            }
            recips = data.draw(
                st.lists(st.integers(0, n - 1), unique=True, max_size=n)
            )
            world.ack(advance, recips)
        for r in range(n):
            proto = world.protocols[r]
            assert proto.events_held() == proto.scan_events_held()


@pytest.mark.parametrize("cls", [VcausalProtocol, ManethoProtocol])
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_piggyback_run_table_consistent(cls, data):
    """The precomputed (creator, start, stop) run table on factored
    piggybacks must agree with a re-scan of the event list, and the byte
    accounting with the shared run counting."""
    from repro.core.piggyback import count_creator_runs, creator_runs, factored_bytes

    n = data.draw(st.integers(2, 4), label="nprocs")
    world = MiniWorld(cls, n)
    steps = data.draw(st.integers(1, 30), label="steps")
    for _ in range(steps):
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1).filter(lambda r: r != src))
        pb = world.send(src, dst)
        assert list(pb.runs) == creator_runs(pb.events)
        assert len(pb.runs) == count_creator_runs(pb.events)
        assert pb.nbytes == factored_bytes(pb.events, CFG)


@pytest.mark.parametrize("cls", PROTOCOLS)
def test_graph_methods_infer_third_party_knowledge_fig3(cls):
    """Paper Fig. 3: P3 has never exchanged with P2, yet the graph
    protocols can compute which events P2 already knows (its own) and
    skip them, while Vcausal re-sends them on the fresh channel."""
    n = 4
    world = MiniWorld(cls, n)
    world.send(1, 2)   # creates (2,1) at P2
    world.send(2, 1)   # creates (1,1); P1 now holds (2,1)
    world.send(1, 3)   # creates (3,1); P3 now holds (1,1) and (2,1)
    pb = world.send(3, 2)   # P3 -> P2: a never-used channel
    ids = {(d.creator, d.clock) for d in pb.events}
    assert (1, 1) in ids and (3, 1) in ids
    if cls is VcausalProtocol:
        # Vcausal has no channel history with P2: it re-sends P2's own event
        assert (2, 1) in ids
    else:
        # the antecedence graph proves P2 knows its own event
        assert (2, 1) not in ids


@pytest.mark.parametrize("cls", PROTOCOLS)
def test_el_ack_prunes_memory(cls):
    n = 3
    world = MiniWorld(cls, n)
    for _ in range(5):
        world.send(0, 1)
        world.send(1, 2)
        world.send(2, 0)
    held_before = sum(world.protocols[r].events_held() for r in range(n))
    world.ack({c: world.clocks[c] for c in range(n)}, recipients=[0, 1, 2])
    held_after = sum(world.protocols[r].events_held() for r in range(n))
    assert held_before > 0
    assert held_after == 0


@pytest.mark.parametrize("cls", PROTOCOLS)
def test_stable_events_never_piggybacked_again(cls):
    n = 3
    world = MiniWorld(cls, n)
    world.send(0, 1)
    world.send(1, 2)
    world.ack({c: world.clocks[c] for c in range(n)}, recipients=[0, 1, 2])
    pb = world.send(2, 0)
    stable_ids = {
        (c, k) for c in range(n) for k in range(1, world.stable[c] + 1)
    }
    sent_ids = {(d.creator, d.clock) for d in pb.events}
    assert not sent_ids & stable_ids


@pytest.mark.parametrize("cls", PROTOCOLS)
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_export_restore_accept_cycle_keeps_counters_in_sync(cls, data):
    """PR-1's maintained counters (events_held, graph size, max_clock /
    contiguity) must survive an export → restore → accept cycle: a restore
    that rebuilds the sequences without the prune floors would re-admit
    stale duplicates on the next accept and silently desync events_held().
    """
    n = data.draw(st.integers(2, 4), label="nprocs")
    world = MiniWorld(cls, n)
    steps = data.draw(st.integers(1, 30), label="steps")
    for _ in range(steps):
        kind = data.draw(st.sampled_from(["send", "send", "send", "ack"]))
        if kind == "send":
            src = data.draw(st.integers(0, n - 1))
            dst = data.draw(st.integers(0, n - 1).filter(lambda r: r != src))
            world.send(src, dst)
        else:
            advance = {
                c: data.draw(st.integers(0, max(world.clocks[c], 0)))
                for c in range(n)
            }
            world.ack(advance, recipients=list(range(n)))
    # checkpoint/restore one rank in place, then keep running the schedule
    # through it: counters must stay equal to the full recount at every
    # hook boundary, and nothing pruned may come back
    victim = data.draw(st.integers(0, n - 1), label="victim")
    proto = world.protocols[victim]
    import copy

    state = copy.deepcopy(proto.export_state())
    fresh = cls(victim, n, CFG, ProcessProbes(rank=victim))
    fresh.restore_state(state)
    world.protocols[victim] = fresh
    assert fresh.events_held() == proto.events_held()
    assert fresh.events_held() == fresh.scan_events_held()
    for _ in range(data.draw(st.integers(1, 10), label="post_steps")):
        src = data.draw(st.integers(0, n - 1))
        dst = data.draw(st.integers(0, n - 1).filter(lambda r: r != src))
        world.send(src, dst)
        for r in range(n):
            p = world.protocols[r]
            assert p.events_held() == p.scan_events_held()
        # restored holdings must never fall below the global stable bound
        for c in range(n):
            held = world.protocols[victim].events_created_by(c)
            assert all(d.clock > 0 for d in held)


@pytest.mark.parametrize("cls", PROTOCOLS)
def test_restore_does_not_resurrect_pruned_events(cls):
    """Events pruned as stable must stay gone across export/restore: the
    per-sequence prune floor is part of the checkpoint image."""
    n = 3
    world = MiniWorld(cls, n)
    for _ in range(4):
        world.send(0, 1)
        world.send(1, 2)
        world.send(2, 0)
    # every event becomes stable and is pruned everywhere
    world.ack({c: world.clocks[c] for c in range(n)}, recipients=[0, 1, 2])
    proto = world.protocols[1]
    assert proto.events_held() == 0
    import copy

    state = copy.deepcopy(proto.export_state())
    fresh = cls(1, n, CFG, ProcessProbes(rank=1))
    fresh.restore_state(state)
    # a stale piggyback replaying pre-stable events must be refused
    stale = [
        Determinant(0, 1, 2, 1, 0),
        Determinant(0, 2, 1, 1, 0),
    ]
    from repro.core.piggyback import Piggyback, creator_runs, factored_bytes

    pb = Piggyback(
        events=tuple(stale),
        nbytes=factored_bytes(stale, CFG),
        runs=tuple(creator_runs(stale)),
    )
    fresh.accept_piggyback(0, pb, 0)
    assert fresh.events_held() == fresh.scan_events_held()
    assert [d.clock for d in fresh.events_created_by(0)] == []


@pytest.mark.parametrize("cls", PROTOCOLS)
def test_export_restore_roundtrip_preserves_behaviour(cls):
    n = 3
    world = MiniWorld(cls, n)
    for _ in range(4):
        world.send(0, 1)
        world.send(1, 2)
    proto = world.protocols[1]
    state = proto.export_state()
    fresh = cls(1, n, CFG, ProcessProbes(rank=1))
    import copy

    fresh.restore_state(copy.deepcopy(state))
    assert fresh.events_held() == proto.events_held()
    for c in range(n):
        assert [d.clock for d in fresh.events_created_by(c)] == [
            d.clock for d in proto.events_created_by(c)
        ]
    # both build the same piggyback for a new destination
    pb_a = proto.build_piggyback(2)
    pb_b = fresh.build_piggyback(2)
    assert {(d.creator, d.clock) for d in pb_a.events} == {
        (d.creator, d.clock) for d in pb_b.events
    }
