"""Hypothesis properties on the simulation substrate and end-to-end runs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster, OneShotFaults
from repro.simulator.engine import Simulator
from repro.simulator.network import Network

from tests.conftest import ring_app


@settings(max_examples=50, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 1_000_000), min_size=1, max_size=20),
)
def test_network_fifo_per_channel_any_sizes(sizes):
    """Per-channel FIFO holds for arbitrary message size sequences."""
    sim = Simulator()
    net = Network(sim)
    net.attach("a")
    net.attach("b")
    order = []
    for i, n in enumerate(sizes):
        net.transfer("a", "b", n, lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(len(sizes)))


@settings(max_examples=50, deadline=None)
@given(
    plan=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(1, 100_000)),
        min_size=1,
        max_size=30,
    )
)
def test_network_conserves_bytes(plan):
    """Total bytes sent equals total bytes received across any traffic."""
    sim = Simulator()
    net = Network(sim)
    for name in ("h0", "h1", "h2"):
        net.attach(name)
    for src, dst, n in plan:
        net.transfer(f"h{src}", f"h{dst}", n, lambda: None)
    sim.run()
    sent = sum(nic.stats.bytes_sent for nic in net.nics.values())
    received = sum(nic.stats.bytes_received for nic in net.nics.values())
    assert sent == received == sum(n for _, _, n in plan)


@settings(max_examples=50, deadline=None)
@given(
    delays=st.lists(st.floats(0.0, 10.0, allow_nan=False), max_size=30)
)
def test_clock_never_goes_backwards(delays):
    sim = Simulator()
    seen = []
    for d in delays:
        sim.schedule(d, lambda: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)


@settings(max_examples=8, deadline=None)
@given(
    fault_frac=st.floats(0.1, 0.9),
    victim=st.integers(0, 3),
    data=st.data(),
)
def test_recovery_fidelity_any_fault_time(fault_frac, victim, data):
    """Property: a fault at ANY time, on ANY rank, under ANY logging
    stack, reproduces the fault-free results exactly."""
    stack = data.draw(
        st.sampled_from(["vcausal", "manetho-noel", "logon", "pessimistic"])
    )
    base = Cluster(nprocs=4, app_factory=ring_app(12), stack=stack).run()
    faulty = Cluster(
        nprocs=4,
        app_factory=ring_app(12),
        stack=stack,
        fault_plan=OneShotFaults([(base.sim_time * fault_frac, victim)]),
    ).run(max_events=30_000_000)
    assert faulty.finished
    assert faulty.results == base.results
