"""Unit + property tests for determinants, sequences and stable vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Determinant, EventSequence, StableVector


def det(creator=0, clock=1, sender=1, ssn=1, dep=0):
    return Determinant(creator, clock, sender, ssn, dep)


# --------------------------------------------------------------------- #
# Determinant

def test_determinant_event_id():
    d = det(creator=3, clock=7)
    assert d.event_id == (3, 7)


def test_determinant_is_hashable_and_comparable():
    assert det() == det()
    assert len({det(), det()}) == 1


# --------------------------------------------------------------------- #
# EventSequence

def test_append_and_iterate():
    seq = EventSequence(0)
    for k in range(1, 6):
        seq.append(det(clock=k))
    assert [d.clock for d in seq] == [1, 2, 3, 4, 5]
    assert len(seq) == 5
    assert seq.max_clock == 5
    assert seq.min_clock == 1


def test_append_wrong_creator_raises():
    seq = EventSequence(0)
    with pytest.raises(ValueError):
        seq.append(det(creator=1))


def test_append_non_monotonic_raises():
    seq = EventSequence(0)
    seq.append(det(clock=5))
    with pytest.raises(ValueError):
        seq.append(det(clock=5))


def test_get_finds_existing_and_missing():
    seq = EventSequence(0)
    seq.append(det(clock=2))
    seq.append(det(clock=4))
    assert seq.get(2).clock == 2
    assert seq.get(3) is None
    assert seq.get(5) is None


def test_tail_after():
    seq = EventSequence(0)
    for k in range(1, 11):
        seq.append(det(clock=k))
    assert [d.clock for d in seq.tail_after(7)] == [8, 9, 10]
    assert [d.clock for d in seq.tail_after(0)] == list(range(1, 11))
    assert seq.tail_after(10) == []


def test_prune_upto():
    seq = EventSequence(0)
    for k in range(1, 11):
        seq.append(det(clock=k))
    assert seq.prune_upto(4) == 4
    assert len(seq) == 6
    assert seq.min_clock == 5
    assert seq.get(3) is None
    assert seq.get(5).clock == 5
    # pruning again is a no-op
    assert seq.prune_upto(4) == 0


def test_prune_then_tail_after_consistent():
    seq = EventSequence(0)
    for k in range(1, 101):
        seq.append(det(clock=k))
    seq.prune_upto(50)
    assert [d.clock for d in seq.tail_after(60)] == list(range(61, 101))
    assert [d.clock for d in seq.tail_after(10)] == list(range(51, 101))


def test_compaction_preserves_content():
    seq = EventSequence(0)
    for k in range(1, 1001):
        seq.append(det(clock=k))
    for bound in (100, 300, 600, 900):
        seq.prune_upto(bound)
        assert len(seq) == 1000 - bound
        assert seq.min_clock == bound + 1
    assert [d.clock for d in seq] == list(range(901, 1001))


def test_merge_appends_new_events():
    seq = EventSequence(0)
    added = seq.merge([det(clock=1), det(clock=2), det(clock=2)])
    assert added == 2
    assert [d.clock for d in seq] == [1, 2]


def test_merge_fills_holes():
    seq = EventSequence(0)
    seq.merge([det(clock=1), det(clock=3)])
    assert seq.merge([det(clock=2)]) == 1
    assert [d.clock for d in seq] == [1, 2, 3]


# --------------------------------------------------------------------- #
# merge rebuild path (out-of-order hole filling) and its interaction
# with prune_upto / pruned_upto

def test_merge_out_of_order_rebuild_keeps_membership_queries_correct():
    seq = EventSequence(0)
    seq.merge([det(clock=2), det(clock=5), det(clock=9)])
    # holes at 1, 3-4, 6-8
    assert not seq.holds(3)
    assert seq.merge([det(clock=4), det(clock=1), det(clock=3)]) == 3
    assert [d.clock for d in seq] == [1, 2, 3, 4, 5, 9]
    for k in (1, 2, 3, 4, 5, 9):
        assert seq.holds(k)
        assert seq.get(k).clock == k
    for k in (6, 7, 8, 10):
        assert not seq.holds(k)
        assert seq.get(k) is None
    assert seq.max_clock == 9
    # filling the last hole restores the O(1) contiguous fast path
    seq.merge([det(clock=k) for k in (6, 7, 8)])
    assert seq.holds_range(1, 9)


def test_merge_never_resurrects_pruned_events():
    seq = EventSequence(0)
    for k in range(1, 11):
        seq.append(det(clock=k))
    seq.prune_upto(6)
    # a late duplicate below the stable bound must stay gone...
    assert seq.merge([det(clock=3)]) == 0
    assert seq.get(3) is None
    assert len(seq) == 4
    # ...even when merged together with a genuine hole-filler above it
    seq2 = EventSequence(0)
    seq2.merge([det(clock=1), det(clock=2), det(clock=5)])
    seq2.prune_upto(2)
    assert seq2.merge([det(clock=1), det(clock=4), det(clock=3)]) == 2
    assert [d.clock for d in seq2] == [3, 4, 5]
    assert seq2.pruned_upto == 2


def test_export_restore_preserves_prune_floor():
    """pruned_upto is part of the checkpoint round-trip: without it a
    restored sequence re-admits duplicates of stable events."""
    seq = EventSequence(0)
    for k in range(1, 9):
        seq.append(det(clock=k))
    seq.prune_upto(5)
    restored = EventSequence.from_state(0, seq.export_state())
    assert restored.pruned_upto == 5
    assert [d.clock for d in restored] == [6, 7, 8]
    assert restored.max_clock == 8
    assert restored.merge([det(clock=3)]) == 0
    assert restored.get(3) is None


def test_restore_of_fully_pruned_sequence_refuses_stale_runs():
    """The run-classification fast path must treat events at or below the
    prune floor as duplicates even when max_clock reads 0 (fully pruned
    and compacted, or freshly restored)."""
    seq = EventSequence(0)
    for k in range(1, 5):
        seq.append(det(clock=k))
    seq.prune_upto(4)
    restored = EventSequence.from_state(0, seq.export_state())
    assert len(restored) == 0 and restored.max_clock == 0
    # a whole-stale run classifies as fully duplicate
    assert restored.new_run_offset(1, 4, 4) == 4
    # a run straddling the floor splits at the floor
    assert restored.new_run_offset(3, 6, 4) == 2
    # a run with holes below the floor falls back to per-event merging
    assert restored.new_run_offset(2, 6, 3) is None
    # and merge itself keeps refusing the stale part
    assert restored.merge([det(clock=2), det(clock=5)]) == 1
    assert [d.clock for d in restored] == [5]


def test_from_state_accepts_legacy_bare_lists():
    dets = [det(clock=k) for k in range(1, 4)]
    restored = EventSequence.from_state(0, dets)
    assert [d.clock for d in restored] == [1, 2, 3]
    assert restored.pruned_upto == 0


def test_merge_rebuild_then_prune_then_tail_after():
    seq = EventSequence(0)
    seq.merge([det(clock=k) for k in range(1, 30, 2)])   # odds
    seq.merge([det(clock=k) for k in range(2, 30, 2)])   # evens (rebuild)
    seq.prune_upto(11)
    assert [d.clock for d in seq.tail_after(20)] == list(range(21, 30))
    assert [d.clock for d in seq.tail_after(0)] == list(range(12, 30))
    assert seq.min_clock == 12
    assert len(seq) == 18


def test_prune_after_rebuild_keeps_pruned_upto_monotone():
    seq = EventSequence(0)
    seq.merge([det(clock=5)])
    seq.prune_upto(3)
    assert seq.pruned_upto == 3
    seq.merge([det(clock=4)])            # hole-fill above pruned bound
    assert [d.clock for d in seq] == [4, 5]
    seq.prune_upto(2)                    # lower bound: no-op
    assert seq.pruned_upto == 3
    assert len(seq) == 2


@settings(max_examples=150, deadline=None)
@given(
    batches=st.lists(
        st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=8),
        min_size=1,
        max_size=12,
    ),
    prunes=st.lists(st.integers(min_value=0, max_value=45), max_size=6),
)
def test_merge_batches_match_reference_model(batches, prunes):
    """Random out-of-order batches interleaved with prunes behave like a
    sorted dict, and every membership query agrees with the model."""
    from itertools import zip_longest

    seq = EventSequence(0)
    model: dict[int, Determinant] = {}
    pruned = 0
    # deterministic interleave: alternate batch, prune, batch, ...
    merged_ops: list = []
    for b, p in zip_longest(batches, prunes):
        if b is not None:
            merged_ops.append(("merge", b))
        if p is not None:
            merged_ops.append(("prune", p))
    for op, arg in merged_ops:
        if op == "merge":
            dets = [det(clock=c) for c in arg]
            added = seq.merge(dets)
            before = len(model)
            for c in arg:
                if c > pruned:
                    model.setdefault(c, det(clock=c))
            assert added == len(model) - before
        else:
            seq.prune_upto(arg)
            pruned = max(pruned, arg)
            for c in [c for c in model if c <= pruned]:
                del model[c]
        assert sorted(d.clock for d in seq) == sorted(model)
        assert len(seq) == len(model)
        for probe in range(1, 46):
            assert seq.holds(probe) == (probe in model)
            got = seq.get(probe)
            assert (got.clock if got else None) == (probe if probe in model else None)


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["merge", "prune", "tail"]),
            st.integers(min_value=1, max_value=60),
        ),
        max_size=50,
    )
)
def test_sequence_matches_reference_model(ops):
    """EventSequence behaves like a sorted dict of clock -> det."""
    seq = EventSequence(0)
    model: dict[int, Determinant] = {}
    pruned = 0
    for op, arg in ops:
        if op == "merge":
            d = det(clock=arg)
            if arg > pruned:
                seq.merge([d])
                model.setdefault(arg, d)
        elif op == "prune":
            seq.prune_upto(arg)
            pruned = max(pruned, arg)
            for c in [c for c in model if c <= pruned]:
                del model[c]
        else:
            got = [d.clock for d in seq.tail_after(arg)]
            want = sorted(c for c in model if c > arg)
            assert got == want
    assert sorted(d.clock for d in seq) == sorted(model)
    assert len(seq) == len(model)


# --------------------------------------------------------------------- #
# StableVector

def test_stable_vector_advance_monotone():
    v = StableVector(4)
    assert v.advance(1, 5)
    assert not v.advance(1, 3)
    assert v[1] == 5


def test_stable_vector_update_merges_elementwise_max():
    v = StableVector(3)
    v.update([1, 5, 2])
    assert not v.update([0, 4, 2])
    assert v.update([2, 4, 2])
    assert v.as_list() == [2, 5, 2]


def test_stable_vector_len():
    assert len(StableVector(7)) == 7


@settings(max_examples=100, deadline=None)
@given(
    updates=st.lists(
        st.lists(st.integers(min_value=0, max_value=100), min_size=3, max_size=3),
        max_size=20,
    )
)
def test_stable_vector_is_elementwise_max(updates):
    v = StableVector(3)
    for u in updates:
        v.update(u)
    for c in range(3):
        want = max((u[c] for u in updates), default=0)
        assert v[c] == max(0, want)
