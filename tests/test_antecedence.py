"""Unit + property tests for the antecedence graph."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.antecedence import AntecedenceGraph
from repro.core.bounds import BoundVector
from repro.core.events import Determinant, StableVector


def build_chain_world():
    """Fig. 3-like world: 3 creators, cross edges threading through."""
    g = AntecedenceGraph(3)
    # P0 receives from P1, P1 from P2, ...
    g.add(Determinant(0, 1, 1, 1, 0))        # a: P0 recv (no dep)
    g.add(Determinant(1, 1, 0, 1, 1))        # b: P1 recv of m sent after a
    g.add(Determinant(2, 1, 1, 1, 1))        # c: P2 recv of m sent after b
    g.add(Determinant(0, 2, 2, 1, 1))        # d: P0 recv of m sent after c
    return g


def test_add_and_contains():
    g = build_chain_world()
    assert (0, 1) in g
    assert (2, 1) in g
    assert (2, 2) not in g
    assert len(g) == 4


def test_add_duplicate_returns_false():
    g = build_chain_world()
    assert g.add(Determinant(0, 1, 1, 1, 0)) is False
    assert len(g) == 4


def test_lamport_stamps_respect_causality():
    g = build_chain_world()
    # the chain a -> b -> c -> d must have strictly increasing stamps
    la = g.lamport[(0, 1)]
    lb = g.lamport[(1, 1)]
    lc = g.lamport[(2, 1)]
    ld = g.lamport[(0, 2)]
    assert la < lb < lc < ld


def test_raise_knowledge_covers_causal_past():
    g = build_chain_world()
    known = BoundVector()
    stable = StableVector(3)
    # knowing P0's event d implies knowing the whole chain
    g.raise_knowledge((0, 2), known, stable)
    assert known.as_list(3) == [2, 1, 1]


def test_raise_knowledge_partial():
    g = build_chain_world()
    known = BoundVector()
    stable = StableVector(3)
    g.raise_knowledge((1, 1), known, stable)
    assert known.as_list(3) == [1, 1, 0]  # covers a and b, not c or d


def test_raise_knowledge_counts_visits():
    g = build_chain_world()
    known = BoundVector()
    visits = g.raise_knowledge((0, 2), known, StableVector(3))
    assert visits == 4
    # a second call discovers nothing new
    assert g.raise_knowledge((0, 2), known, StableVector(3)) == 0


def test_select_unknown_respects_bounds():
    g = build_chain_world()
    stable = StableVector(3)
    known = BoundVector([1, 0, 0])
    events, _, runs = g.select_unknown(known, stable)
    assert {(d.creator, d.clock) for d in events} == {(0, 2), (1, 1), (2, 1)}
    # one (creator, start, stop) run per contributing creator
    assert runs == [(0, 0, 1), (1, 1, 2), (2, 2, 3)]
    # known was raised in place over everything selected
    assert known.as_list(3) == [2, 1, 1]


def test_select_unknown_respects_stable():
    g = build_chain_world()
    stable = StableVector(3)
    stable.advance(0, 2)
    stable.advance(1, 1)
    events, _, _ = g.select_unknown(BoundVector(), stable)
    assert {(d.creator, d.clock) for d in events} == {(2, 1)}


def test_prune_drops_vertices_and_lamport():
    g = build_chain_world()
    stable = StableVector(3)
    stable.advance(0, 1)
    dropped = g.prune(stable)
    assert dropped == 1
    assert (0, 1) not in g
    assert (0, 1) not in g.lamport
    assert (0, 2) in g


def test_prune_makes_knowledge_conservative_not_wrong():
    g = build_chain_world()
    stable = StableVector(3)
    stable.advance(0, 1)
    g.prune(stable)
    known = BoundVector()
    g.raise_knowledge((0, 2), known, stable)
    # the traversal can no longer reach a (pruned), but a is stable so it
    # is excluded from piggybacks anyway
    events, _, _ = g.select_unknown(known, stable)
    assert (0, 1) not in {(d.creator, d.clock) for d in events}


def test_topological_is_linear_extension():
    g = build_chain_world()
    events = [g.get(0, 2), g.get(2, 1), g.get(0, 1), g.get(1, 1)]
    ordered = g.topological(events)
    ids = [(d.creator, d.clock) for d in ordered]
    assert ids.index((0, 1)) < ids.index((1, 1)) < ids.index((2, 1)) < ids.index((0, 2))


def test_export_restore_roundtrip():
    g = build_chain_world()
    state = g.export_state()
    g2 = AntecedenceGraph(3)
    g2.restore_state(state)
    assert len(g2) == len(g)
    assert g2.lamport == g.lamport
    known1, known2 = BoundVector(), BoundVector()
    g.raise_knowledge((0, 2), known1, StableVector(3))
    g2.raise_knowledge((0, 2), known2, StableVector(3))
    assert known1 == known2


# --------------------------------------------------------------------- #
# property: random DAG construction keeps Lamport a valid linear extension

@settings(max_examples=100, deadline=None)
@given(st.data())
def test_lamport_always_exceeds_predecessors(data):
    n = data.draw(st.integers(2, 4))
    g = AntecedenceGraph(n)
    clocks = [0] * n
    steps = data.draw(st.integers(1, 40))
    for _ in range(steps):
        sender = data.draw(st.integers(0, n - 1))
        receiver = data.draw(st.integers(0, n - 1).filter(lambda r: r != sender))
        dep = clocks[sender]
        clocks[receiver] += 1
        det = Determinant(receiver, clocks[receiver], sender, 1, dep)
        g.add(det)
        lam = g.lamport[(receiver, clocks[receiver])]
        if clocks[receiver] > 1:
            assert lam > g.lamport.get((receiver, clocks[receiver] - 1), 0)
        if dep > 0:
            assert lam > g.lamport.get((sender, dep), 0)
