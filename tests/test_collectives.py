"""Correctness of the MPICH-1-style collectives over point-to-point."""

import pytest

from repro import Cluster


def run_app(app, nprocs, stack="vdummy"):
    result = Cluster(nprocs=nprocs, app_factory=app, stack=stack).run()
    assert result.finished
    return result


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 5, 8, 9, 16])
@pytest.mark.parametrize("root", [0, 1])
def test_bcast_delivers_root_payload(nprocs, root):
    if root >= nprocs:
        pytest.skip("root outside communicator")

    def app(ctx):
        payload = "hello" if ctx.rank == root else None
        value = yield from ctx.bcast(root, 1024, payload)
        return value

    result = run_app(app, nprocs)
    assert all(v == "hello" for v in result.results.values())


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 7, 8, 16])
def test_reduce_sums_to_root(nprocs):
    def app(ctx):
        value = yield from ctx.reduce(0, 8, ctx.rank + 1)
        return value

    result = run_app(app, nprocs)
    expected = nprocs * (nprocs + 1) // 2
    assert result.results[0] == expected
    for r in range(1, nprocs):
        assert result.results[r] is None


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 6, 8, 16])
def test_allreduce_everyone_gets_the_sum(nprocs):
    def app(ctx):
        value = yield from ctx.allreduce(8, ctx.rank * 10)
        return value

    result = run_app(app, nprocs)
    expected = sum(r * 10 for r in range(nprocs))
    assert all(v == expected for v in result.results.values())


def test_reduce_custom_op():
    def app(ctx):
        value = yield from ctx.reduce(0, 8, ctx.rank + 1, op=lambda a, b: a * b)
        return value

    result = run_app(app, 4)
    assert result.results[0] == 24


@pytest.mark.parametrize("nprocs", [1, 2, 3, 5, 8])
def test_allgather_collects_all_values(nprocs):
    def app(ctx):
        values = yield from ctx.allgather(64, f"v{ctx.rank}")
        return values

    result = run_app(app, nprocs)
    expected = [f"v{r}" for r in range(nprocs)]
    assert all(v == expected for v in result.results.values())


@pytest.mark.parametrize("nprocs", [2, 3, 4, 8])
def test_alltoall_completes_all_pairs(nprocs):
    def app(ctx):
        yield from ctx.alltoall(2048)
        return ctx.rank

    result = run_app(app, nprocs)
    probes = result.probes
    # every rank sends one message to every other rank
    assert probes.total("app_messages_sent") == nprocs * (nprocs - 1)


@pytest.mark.parametrize("nprocs", [1, 2, 3, 4, 5, 8])
def test_barrier_synchronizes(nprocs):
    def app(ctx):
        yield from ctx.compute_seconds(0.001 * (ctx.rank + 1))
        yield from ctx.barrier()
        return ctx.sim.now

    result = run_app(app, nprocs)
    times = list(result.results.values())
    # all ranks leave the barrier after the slowest one entered
    assert min(times) >= 0.001 * nprocs


def test_gather_collects_at_root():
    from repro.mpi import collectives

    def app(ctx):
        values = yield from collectives.gather(ctx, 0, 32, ctx.rank ** 2)
        return values

    result = run_app(app, 5)
    assert result.results[0] == [0, 1, 4, 9, 16]
    assert result.results[1] is None


def test_consecutive_collectives_do_not_cross_match():
    def app(ctx):
        a = yield from ctx.allreduce(8, 1)
        b = yield from ctx.allreduce(8, 2)
        c = yield from ctx.allreduce(8, 3)
        return (a, b, c)

    result = run_app(app, 4)
    assert all(v == (4, 8, 12) for v in result.results.values())


def test_collectives_with_point_to_point_interleaved():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 64, tag=9, payload="x")
        total = yield from ctx.allreduce(8, ctx.rank)
        if ctx.rank == 1:
            msg = yield from ctx.recv(0, tag=9)
            assert msg.payload == "x"
        return total

    result = run_app(app, 4)
    assert all(v == 6 for v in result.results.values())


@pytest.mark.parametrize("stack", ["vcausal", "manetho", "logon", "pessimistic"])
def test_collectives_under_logging_protocols(stack):
    def app(ctx):
        value = yield from ctx.allreduce(8, ctx.rank + 1)
        values = yield from ctx.allgather(16, ctx.rank)
        yield from ctx.barrier()
        return (value, tuple(values))

    result = run_app(app, 4, stack=stack)
    assert all(v == (10, (0, 1, 2, 3)) for v in result.results.values())
