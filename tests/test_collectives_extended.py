"""Tests for the extended collectives (scatter, reduce_scatter, scan)."""

import pytest

from repro import Cluster
from repro.mpi import collectives


def run_app(app, nprocs, stack="vdummy"):
    result = Cluster(nprocs=nprocs, app_factory=app, stack=stack).run()
    assert result.finished
    return result


@pytest.mark.parametrize("nprocs", [1, 2, 4, 5, 8])
@pytest.mark.parametrize("root", [0, 1])
def test_scatter_distributes_elements(nprocs, root):
    if root >= nprocs:
        pytest.skip("root outside communicator")

    def app(ctx):
        values = [f"item{r}" for r in range(ctx.size)] if ctx.rank == root else None
        mine = yield from collectives.scatter(ctx, root, 256, values)
        return mine

    result = run_app(app, nprocs)
    assert result.results == {r: f"item{r}" for r in range(nprocs)}


def test_scatter_requires_one_value_per_rank():
    def app(ctx):
        values = [1] if ctx.rank == 0 else None
        yield from collectives.scatter(ctx, 0, 8, values)

    with pytest.raises(ValueError):
        run_app(app, 3)


@pytest.mark.parametrize("nprocs", [1, 2, 4, 8])
def test_reduce_scatter_block(nprocs):
    def app(ctx):
        # rank r contributes [r*0, r*1, ..., r*(p-1)]
        values = [ctx.rank * d for d in range(ctx.size)]
        mine = yield from collectives.reduce_scatter(ctx, 8, values)
        return mine

    result = run_app(app, nprocs)
    total = sum(range(nprocs))
    assert result.results == {r: total * r for r in range(nprocs)}


def test_reduce_scatter_requires_full_vector():
    def app(ctx):
        yield from collectives.reduce_scatter(ctx, 8, [1])

    with pytest.raises(ValueError):
        run_app(app, 3)


@pytest.mark.parametrize("nprocs", [1, 2, 5, 8])
def test_scan_inclusive_prefix(nprocs):
    def app(ctx):
        value = yield from collectives.scan(ctx, 8, ctx.rank + 1)
        return value

    result = run_app(app, nprocs)
    for r in range(nprocs):
        assert result.results[r] == sum(range(1, r + 2))


def test_scan_custom_op():
    def app(ctx):
        value = yield from collectives.scan(ctx, 8, ctx.rank + 1, op=lambda a, b: a * b)
        return value

    result = run_app(app, 4)
    assert result.results == {0: 1, 1: 2, 2: 6, 3: 24}


@pytest.mark.parametrize("stack", ["vcausal", "manetho-noel"])
def test_extended_collectives_under_logging(stack):
    def app(ctx):
        mine = yield from collectives.scatter(
            ctx, 0, 64,
            [r * 2 for r in range(ctx.size)] if ctx.rank == 0 else None,
        )
        pref = yield from collectives.scan(ctx, 8, mine)
        red = yield from collectives.reduce_scatter(
            ctx, 8, [pref] * ctx.size
        )
        return red

    a = run_app(app, 4, stack=stack)
    b = run_app(app, 4, stack="vdummy")
    assert a.results == b.results
