"""Tests for the sparse bound/knowledge vectors and their cost model.

Three layers:

* :class:`~repro.core.bounds.BoundVector` unit behaviour,
* representation equivalence — the sparse representation with the dense
  (compatibility) cost model must simulate *bit-identically* to the
  historical dense vectors, including across faults and recovery,
* the sparse cost model itself — per-message piggyback cost must scale
  with touched entries, not with nprocs, which is what unlocks the
  256+ rank scenarios (exercised at 64 ranks here to stay in CI budget).
"""

import pytest

from repro import Cluster, ClusterConfig, OneShotFaults
from repro.core.bounds import BoundVector

from tests.conftest import ring_app, run_ring

SPARSE = ClusterConfig().with_overrides(pb_cost_model="sparse")


# --------------------------------------------------------------------- #
# BoundVector unit behaviour

def test_zero_default_and_sparse_storage():
    bv = BoundVector()
    assert bv[7] == 0
    assert len(bv) == 0
    bv[3] = 5
    assert bv[3] == 5
    assert len(bv) == 1
    bv[3] = 0  # writing zero removes the entry
    assert len(bv) == 0


def test_from_dense_list_drops_zeros():
    bv = BoundVector([0, 4, 0, 9])
    assert dict(bv.items()) == {1: 4, 3: 9}
    assert bv.as_list(4) == [0, 4, 0, 9]
    assert bv.as_list(6) == [0, 4, 0, 9, 0, 0]


def test_raise_to_is_monotone():
    bv = BoundVector()
    assert bv.raise_to(2, 5) is True
    assert bv.raise_to(2, 3) is False
    assert bv[2] == 5


def test_update_max_and_max_with():
    a = BoundVector({0: 3, 1: 7})
    b = BoundVector({1: 2, 2: 9})
    merged = a.max_with(b)
    assert dict(merged.items()) == {0: 3, 1: 7, 2: 9}
    # max_with does not mutate; update_max does
    assert dict(a.items()) == {0: 3, 1: 7}
    assert a.update_max([0, 8, 1]) is True
    assert dict(a.items()) == {0: 3, 1: 8, 2: 1}
    assert a.update_max({1: 4}) is False


def test_copy_is_independent():
    a = BoundVector({0: 1})
    b = a.copy()
    b[0] = 9
    assert a[0] == 1


def test_export_restore_roundtrip_and_legacy_lists():
    a = BoundVector({2: 4, 5: 1})
    assert BoundVector.from_state(a.export_state()) == a
    assert BoundVector.from_state([0, 0, 4, 0, 0, 1]) == BoundVector({2: 4, 5: 1})


# --------------------------------------------------------------------- #
# representation equivalence (dense cost model is the default — every
# pre-existing scenario must be bit-identical to the dense-vector era)

@pytest.mark.parametrize("stack", ["vcausal", "manetho", "logon"])
def test_sparse_cost_model_preserves_results(stack):
    """Costs change under the sparse model, timings shift — but the
    application's deterministic results must not."""
    dense = run_ring(stack, nprocs=4, iterations=10)
    sparse = run_ring(stack, nprocs=4, iterations=10, config=SPARSE)
    assert sparse.finished
    assert sparse.results == dense.results


def test_sparse_cost_model_cheaper_at_scale():
    """The point of the representation: per-message piggyback time stops
    growing with nprocs once only touched entries are charged.  The ring
    app touches 2-3 peers per rank, so at 64 ranks the dense x-nprocs
    charge dominates and sparse mode must finish sooner."""
    dense = run_ring("vcausal", nprocs=64, iterations=3)
    sparse = run_ring("vcausal", nprocs=64, iterations=3, config=SPARSE)
    assert sparse.results == dense.results
    # piggyback management time (the Fig. 8 metric) must shrink; the
    # end-to-end sim_time at this small message count is dominated by the
    # network critical path, so it is not asserted here
    assert sparse.probes.pb_total_time_s < 0.9 * dense.probes.pb_total_time_s


def test_invalid_cost_model_rejected():
    with pytest.raises(ValueError):
        ClusterConfig().with_overrides(pb_cost_model="bogus")


# --------------------------------------------------------------------- #
# fault injection → recovery with and without the sparse representation
# (satellite: identical final checksums at 8 ranks)

def _cg8_with_fault(config=None):
    from repro.experiments.common import run_nas

    result, _ = run_nas(
        "cg", "A", 8, "vcausal", iterations=4, config=config,
        fault_plan=OneShotFaults([(0.5, 0)]),
    )
    return result


def test_fault_recovery_checksums_identical_dense_vs_sparse():
    """Deterministic kill/restart at 8 ranks: the recovered run must end
    with identical per-rank results under the dense and sparse modes (the
    replay path goes through the same BoundVector state both ways)."""
    dense = _cg8_with_fault()
    sparse = _cg8_with_fault(config=SPARSE)
    assert dense.finished and sparse.finished
    assert dense.results == sparse.results
    assert len(dense.probes.recoveries) == 1
    assert len(sparse.probes.recoveries) == 1
    # and both replayed the same history
    assert (
        dense.probes.recoveries[0].events_collected
        == sparse.probes.recoveries[0].events_collected
        > 0
    )


def test_fault_recovery_matches_fault_free_results():
    from repro.experiments.common import run_nas

    base, _ = run_nas("cg", "A", 8, "vcausal", iterations=4, config=SPARSE)
    faulty = _cg8_with_fault(config=SPARSE)
    assert faulty.results == base.results


# --------------------------------------------------------------------- #
# sparse EL acks inside a full cluster run

def test_sparse_el_acks_prune_and_shrink_wire():
    dense = run_ring("vcausal", nprocs=8, iterations=10)
    sparse = run_ring("vcausal", nprocs=8, iterations=10, config=SPARSE)
    assert sparse.results == dense.results
    # acks flowed and pruning happened in both modes
    assert sparse.probes.total("el_acks_received") > 0
    held = sum(
        sparse.cluster.daemons[r].protocol.events_held() for r in range(8)
    )
    scan = sum(
        sparse.cluster.daemons[r].protocol.scan_events_held() for r in range(8)
    )
    assert held == scan
