"""Unit tests for piggyback wire formats and byte accounting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Determinant
from repro.core.piggyback import (
    Piggyback,
    count_creator_runs,
    creator_runs,
    factored_bytes,
    factored_bytes_from_counts,
    flat_bytes,
    group_by_creator,
)
from repro.runtime.config import ClusterConfig

CFG = ClusterConfig()


def det(creator, clock):
    return Determinant(creator, clock, 0, clock, 0)


def test_empty_piggyback_costs_only_length_header():
    assert factored_bytes([], CFG) == CFG.pb_length_header_bytes
    assert flat_bytes([], CFG) == CFG.pb_length_header_bytes


def test_factored_single_group():
    events = [det(2, k) for k in range(1, 6)]
    assert factored_bytes(events, CFG) == (
        CFG.pb_length_header_bytes
        + CFG.pb_group_header_bytes
        + 5 * CFG.pb_event_factored_bytes
    )


def test_factored_pays_header_per_creator_run():
    events = [det(0, 1), det(0, 2), det(1, 1), det(1, 2), det(1, 3)]
    assert factored_bytes(events, CFG) == (
        CFG.pb_length_header_bytes
        + 2 * CFG.pb_group_header_bytes
        + 5 * CFG.pb_event_factored_bytes
    )


def test_flat_pays_per_event_rank():
    events = [det(0, 1), det(1, 1), det(2, 1)]
    assert flat_bytes(events, CFG) == (
        CFG.pb_length_header_bytes + 3 * CFG.pb_event_flat_bytes
    )


def test_flat_is_larger_for_same_events_when_grouped():
    """Paper §III-C: same number of events costs more bytes under LogOn."""
    events = [det(0, k) for k in range(1, 20)]
    assert flat_bytes(events, CFG) > factored_bytes(events, CFG)


def test_group_by_creator_runs():
    events = [det(0, 1), det(0, 2), det(3, 1), det(0, 3)]
    groups = group_by_creator(events)
    assert [(c, len(g)) for c, g in groups] == [(0, 2), (3, 1), (0, 1)]


def test_piggyback_dataclass_defaults():
    pb = Piggyback()
    assert pb.n_events == 0
    assert pb.nbytes == 0
    assert pb.build_cost_s == 0.0
    assert pb.runs == ()


@settings(max_examples=100, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 4), st.integers(1, 50)), max_size=40, unique=True
    )
)
def test_run_counting_shared_across_helpers(pairs):
    """count_creator_runs, creator_runs and group_by_creator must agree —
    one run definition, three views of it."""
    events = [det(c, k) for c, k in pairs]
    runs = creator_runs(events)
    groups = group_by_creator(events)
    assert len(runs) == count_creator_runs(events) == len(groups)
    assert [c for c, _, _ in runs] == [c for c, _ in groups]
    for (creator, start, stop), (gc, group) in zip(runs, groups):
        assert list(events[start:stop]) == group
    # and the byte accounting is definable from either view
    assert factored_bytes(events, CFG) == factored_bytes_from_counts(
        len(events), len(runs), CFG
    )


@settings(max_examples=100, deadline=None)
@given(
    clocks=st.lists(
        st.tuples(st.integers(0, 5), st.integers(1, 100)),
        max_size=60,
        unique=True,
    )
)
def test_factored_never_exceeds_flat_plus_headers(clocks):
    """Factoring saves bytes whenever creators repeat, and never costs
    more than one group header per event."""
    events = [det(c, k) for c, k in clocks]
    f = factored_bytes(events, CFG)
    fl = flat_bytes(events, CFG)
    # worst case: every event its own group => 8 + 12 = 20 > 16 per event
    assert f <= CFG.pb_length_header_bytes + len(events) * (
        CFG.pb_group_header_bytes + CFG.pb_event_factored_bytes
    )
    # grouped by creator, factoring wins once any creator has >= 2 events
    # (one 8-byte header amortized over 4-byte savings per event... the
    # break-even is 2 events per group on average)
    merged = sorted(events, key=lambda d: (d.creator, d.clock))
    groups = {d.creator for d in events}
    if events and len(events) >= 2 * len(groups):
        assert factored_bytes(merged, CFG) <= fl
