"""Smoke tests for the experiment modules (tiny parameterizations).

The full sweeps live in benchmarks/; here each module's machinery is
exercised end-to-end with minimal work, and the headline shape of each
figure is asserted.
"""

import pytest

from repro.experiments import (
    ablation_checkpoint_policies,
    ablation_distributed_el,
    fig6_pingpong,
    fig10_recovery,
)
from repro.experiments.common import pb_percent_of_exec, run_nas


def test_run_nas_helper_round_trip():
    result, info = run_nas("cg", "A", 4, "vcausal", iterations=1)
    assert result.finished
    assert info.bench == "cg"
    assert pb_percent_of_exec(result) >= 0


def test_run_nas_raises_on_unfinished():
    # impossible to finish: run at until=0 is not reachable through the
    # helper, so instead check the helper validates benchmark names
    with pytest.raises(ValueError):
        run_nas("nosuch", "A", 4, "vcausal")


def test_fig6_report_formats():
    results = {
        "latency_us": {"p4": 99.5, "vdummy": 134.5},
        "messages_with_piggyback_frac": {"p4": 0.0, "vdummy": 0.0},
        "bandwidth_mbit": {"p4": {1: 0.1, 1024: 30.0}},
        "sizes": (1, 1024),
    }
    report = fig6_pingpong.format_report(results)
    assert "99.50" in report
    assert "Fig. 6(a)" in report and "Fig. 6(b)" in report


def test_fig10_measure_single_cell():
    cell = fig10_recovery._measure("cg", "A", 4, "vcausal", iters=2)
    assert cell["events"] > 0
    assert cell["collection_ms"] > 0
    assert cell["sources"] == 1
    assert cell["faulty_time_s"] > cell["fault_free_time_s"]


def test_fig10_el_vs_peers_single_cell():
    with_el = fig10_recovery._measure("cg", "A", 8, "vcausal", iters=2)
    without = fig10_recovery._measure("cg", "A", 8, "vcausal-noel", iters=2)
    assert with_el["collection_ms"] < without["collection_ms"]
    assert without["sources"] == 7


def test_ablation_el_single_cell():
    result = ablation_distributed_el.run_lu(2, "multicast", iterations=1)
    assert result.finished
    assert result.cluster.event_logger.count == 2


def test_ablation_ckpt_policies_report():
    results = ablation_checkpoint_policies.run(fast=True)
    report = ablation_checkpoint_policies.format_report(results)
    assert "round-robin" in report
    cells = results["cells"]
    # any checkpointing policy GCs the sender logs vs no checkpoints
    assert (
        cells["round-robin"]["peak_sender_log_bytes"]
        < cells["none"]["peak_sender_log_bytes"]
    )
    # coordinated waves GC best (all receivers checkpoint together)
    assert (
        cells["coordinated"]["peak_sender_log_bytes"]
        <= cells["round-robin"]["peak_sender_log_bytes"]
    )


def test_runner_cli_lists_experiments():
    from repro.experiments import ALL_EXPERIMENTS

    assert {"fig1", "fig6", "fig7", "fig8", "fig9", "fig10"} <= set(ALL_EXPERIMENTS)
    assert "ablation-el" in ALL_EXPERIMENTS


def test_runner_cli_rejects_unknown_experiment():
    from repro.experiments.runner import main

    with pytest.raises(SystemExit):
        main(["-e", "nosuch"])
