"""Integration shape tests: the paper's headline claims on NAS skeletons.

Each test pins one qualitative result of the evaluation section; these are
the assertions behind EXPERIMENTS.md.
"""

import pytest

from repro import Cluster
from repro.workloads.nas import make_app

RUNS = {}


def nas(bench, klass, nprocs, stack, iterations):
    key = (bench, klass, nprocs, stack, iterations)
    if key not in RUNS:
        app, _ = make_app(bench, klass, nprocs, iterations=iterations)
        RUNS[key] = Cluster(nprocs=nprocs, app_factory=app, stack=stack).run(
            max_events=50_000_000
        )
    return RUNS[key]


# --------------------------------------------------------------------- #
# Fig. 7 shapes: piggyback volume

@pytest.mark.parametrize("bench,iters", [("bt", 4), ("cg", 2), ("lu", 2)])
@pytest.mark.parametrize("proto", ["vcausal", "manetho", "logon"])
def test_el_collapses_piggyback_volume(bench, iters, proto):
    """'This outlines the major impact of using an Event Logger on the
    size of piggybacked events.'"""
    with_el = nas(bench, "A", 16, proto, iters)
    without = nas(bench, "A", 16, f"{proto}-noel", iters)
    assert with_el.probes.piggyback_fraction < 0.5 * without.probes.piggyback_fraction


def test_piggyback_volume_grows_with_procs_noel():
    """Fig. 7: exponential-ish growth of piggyback share with node count."""
    fractions = [
        nas("cg", "A", p, "vcausal-noel", 2).probes.piggyback_fraction
        for p in (2, 4, 8, 16)
    ]
    assert fractions == sorted(fractions)
    assert fractions[-1] > 5 * fractions[0]


def test_lu16_el_keeps_large_residue():
    """Fig. 7: at LU/16 the EL saturates and cannot absorb everything."""
    lu = nas("lu", "A", 16, "vcausal", 2)
    bt = nas("bt", "A", 16, "vcausal", 4)
    assert lu.probes.piggyback_fraction > 5 * bt.probes.piggyback_fraction


def test_logon_pays_more_bytes_per_event():
    """§III-C: flat 16-byte events vs factored 12-byte events."""
    lg = nas("lu", "A", 16, "logon-noel", 2).probes
    mn = nas("lu", "A", 16, "manetho-noel", 2).probes
    bytes_per_event_lg = lg.total_piggyback_bytes / max(lg.total("piggyback_events_sent"), 1)
    bytes_per_event_mn = mn.total_piggyback_bytes / max(mn.total("piggyback_events_sent"), 1)
    assert bytes_per_event_lg > bytes_per_event_mn


def test_manetho_reduces_events_vs_vcausal_on_bt():
    """Antecedence-graph inference prunes third-party duplicates."""
    vc = nas("bt", "A", 16, "vcausal-noel", 4).probes
    mn = nas("bt", "A", 16, "manetho-noel", 4).probes
    assert mn.total("piggyback_events_sent") < vc.total("piggyback_events_sent")


# --------------------------------------------------------------------- #
# Fig. 8 shapes: piggyback computation time

@pytest.mark.parametrize("bench,iters", [("cg", 2), ("lu", 2)])
def test_vcausal_serialization_cheapest(bench, iters):
    """'The Vcausal serialization outperforms the other two protocols.'"""
    vc = nas(bench, "A", 16, "vcausal-noel", iters).probes
    mn = nas(bench, "A", 16, "manetho-noel", iters).probes
    lg = nas(bench, "A", 16, "logon-noel", iters).probes
    assert vc.pb_total_time_s < mn.pb_total_time_s
    assert vc.pb_total_time_s < lg.pb_total_time_s


def test_logon_send_heavy_manetho_recv_heavy():
    """'LogOn spends more time to reorder ... during send; as a
    consequence Manetho spends more time during receive.'"""
    mn = nas("cg", "A", 16, "manetho-noel", 2).probes
    lg = nas("cg", "A", 16, "logon-noel", 2).probes
    assert lg.pb_send_time_s / max(lg.pb_recv_time_s, 1e-12) > (
        mn.pb_send_time_s / max(mn.pb_recv_time_s, 1e-12)
    )


def test_el_reduces_pb_computation_time():
    for proto in ("vcausal", "manetho", "logon"):
        with_el = nas("cg", "A", 16, proto, 2).probes
        without = nas("cg", "A", 16, f"{proto}-noel", 2).probes
        assert with_el.pb_total_time_s < without.pb_total_time_s


# --------------------------------------------------------------------- #
# Fig. 9 shapes: application performance

@pytest.mark.parametrize("bench,iters", [("cg", 2), ("lu", 2), ("ft", 4)])
@pytest.mark.parametrize("proto", ["vcausal", "manetho", "logon"])
def test_el_improves_performance(bench, iters, proto):
    """'Whatever the protocol or benchmark is used, performance is
    improved using Event Logger.'"""
    with_el = nas(bench, "A", 16, proto, iters)
    without = nas(bench, "A", 16, f"{proto}-noel", iters)
    assert with_el.mflops >= without.mflops


def test_vdummy_beats_p4_on_duplex_friendly_benchmarks():
    """'Vdummy can benefit from full-duplex communications.'"""
    vd = nas("cg", "A", 16, "vdummy", 2)
    p4 = nas("cg", "A", 16, "p4", 2)
    assert vd.mflops > p4.mflops


def test_causal_with_el_close_to_vdummy():
    vd = nas("bt", "A", 16, "vdummy", 4)
    vc = nas("bt", "A", 16, "vcausal", 4)
    assert vc.mflops > 0.95 * vd.mflops


def test_el_protocols_nearly_equal():
    """'This leads Vcausal to compete with antecedence graph based
    methods when using Event Logger.'"""
    values = [nas("cg", "A", 16, p, 2).mflops for p in ("vcausal", "manetho", "logon")]
    assert (max(values) - min(values)) / max(values) < 0.05


def test_lu16_noel_punishes_logon_hardest():
    """Fig. 9 LU/16: 'the large amount of piggybacked events decreases
    LogOn performance.'"""
    lg = nas("lu", "A", 16, "logon-noel", 2)
    vc = nas("lu", "A", 16, "vcausal-noel", 2)
    mn = nas("lu", "A", 16, "manetho-noel", 2)
    assert lg.mflops < vc.mflops
    assert lg.mflops < mn.mflops
