"""Integration tests: fault injection and recovery correctness.

The defining property of the whole system: an application run under any
fault-tolerant stack, with any fault pattern, must produce results
identical to the fault-free run (replay fidelity / no orphans), and the
run must complete.
"""

import pytest

from repro import Cluster, OneShotFaults, PeriodicFaults

from tests.conftest import CAUSAL_STACKS, LOGGING_STACKS, ring_app, run_ring


@pytest.fixture(scope="module")
def baseline():
    result = run_ring("vcausal", nprocs=4, iterations=25)
    assert result.finished
    return result.results


@pytest.mark.parametrize("stack", LOGGING_STACKS)
def test_single_fault_preserves_results(stack, baseline):
    result = run_ring(
        stack, nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.01, 0)]),
    )
    assert result.finished
    assert result.results == baseline
    assert result.probes.total("restarts") == 1


@pytest.mark.parametrize("stack", ["vcausal", "vcausal-noel", "manetho-noel"])
@pytest.mark.parametrize("victim", [0, 1, 3])
def test_fault_on_any_rank(stack, victim, baseline):
    result = run_ring(
        stack, nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.02, victim)]),
    )
    assert result.finished
    assert result.results == baseline


@pytest.mark.parametrize("stack", ["vcausal", "logon", "pessimistic"])
def test_two_sequential_faults(stack, baseline):
    result = run_ring(
        stack, nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.01, 0), (0.5, 2)]),
    )
    assert result.finished
    assert result.results == baseline
    assert result.probes.total("restarts") == 2


@pytest.mark.parametrize("stack", ["vcausal", "manetho"])
def test_same_rank_killed_twice(stack, baseline):
    result = run_ring(
        stack, nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.01, 1), (0.6, 1)]),
    )
    assert result.finished
    assert result.results == baseline


def test_fault_with_checkpoints_round_robin(baseline):
    result = run_ring(
        "vcausal", nprocs=4, iterations=25,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.05,
        fault_plan=OneShotFaults([(0.3, 0)]),
    )
    assert result.finished
    assert result.results == baseline
    assert result.probes.checkpoints_stored > 0


def test_fault_with_checkpoints_random_policy(baseline):
    result = run_ring(
        "manetho", nprocs=4, iterations=25,
        checkpoint_policy="random", checkpoint_interval_s=0.05,
        fault_plan=OneShotFaults([(0.3, 2)]),
    )
    assert result.finished
    assert result.results == baseline


def test_coordinated_restart_from_scratch(baseline):
    result = run_ring(
        "coordinated", nprocs=4, iterations=25,
        checkpoint_policy="coordinated", checkpoint_interval_s=50.0,
        fault_plan=OneShotFaults([(0.02, 1)]),
    )
    assert result.finished
    assert result.results == baseline
    assert result.cluster.dispatcher.global_restarts == 1


def test_coordinated_restart_from_wave(baseline):
    result = run_ring(
        "coordinated", nprocs=4, iterations=25,
        checkpoint_policy="coordinated", checkpoint_interval_s=0.15,
        fault_plan=OneShotFaults([(0.4, 1)]),
    )
    assert result.finished
    assert result.results == baseline
    assert result.probes.checkpoints_stored >= 4


def test_periodic_faults_until_completion(baseline):
    result = run_ring(
        "vcausal", nprocs=4, iterations=25,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.05,
        fault_plan=PeriodicFaults(per_minute=120, start_s=0.05),
    )
    assert result.finished
    assert result.results == baseline
    assert result.cluster.dispatcher.faults_seen >= 2


def test_recovery_record_captured(baseline):
    result = run_ring(
        "vcausal", nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.05, 0)]),
    )
    rec = result.probes.recoveries[0]
    assert rec.rank == 0
    assert rec.fault_time == pytest.approx(0.05)
    assert rec.detect_time > rec.fault_time
    assert rec.event_collection_s > 0
    assert rec.events_collected > 0
    assert rec.event_sources == 1  # from the EL


def test_recovery_sources_without_el(baseline):
    result = run_ring(
        "vcausal-noel", nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.05, 0)]),
    )
    rec = result.probes.recoveries[0]
    assert rec.event_sources == 3  # every other node


def test_el_collection_faster_than_peers_at_scale():
    base = run_ring("vcausal", nprocs=8, iterations=20)
    with_el = run_ring(
        "vcausal", nprocs=8, iterations=20,
        fault_plan=OneShotFaults([(base.sim_time / 2, 0)]),
    )
    without_el = run_ring(
        "vcausal-noel", nprocs=8, iterations=20,
        fault_plan=OneShotFaults([(base.sim_time / 2, 0)]),
    )
    t_el = with_el.probes.recoveries[0].event_collection_s
    t_no = without_el.probes.recoveries[0].event_collection_s
    assert t_el < t_no


def test_fatal_fault_on_non_ft_stack():
    from repro.runtime.dispatcher import FatalFaultError

    with pytest.raises(FatalFaultError):
        run_ring("vdummy", nprocs=4, iterations=25,
                 fault_plan=OneShotFaults([(0.01, 0)]))


def test_fault_after_completion_is_ignored(baseline):
    base = run_ring("vcausal", nprocs=4, iterations=5)
    result = run_ring(
        "vcausal", nprocs=4, iterations=5,
        fault_plan=OneShotFaults([(base.sim_time * 2, 0)]),
    )
    assert result.finished
    assert result.cluster.dispatcher.faults_seen == 0


@pytest.mark.parametrize("stack", CAUSAL_STACKS)
def test_faulty_time_exceeds_fault_free(stack, baseline):
    base = run_ring(stack, nprocs=4, iterations=25)
    faulty = run_ring(
        stack, nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.05, 0)]),
    )
    assert faulty.sim_time > base.sim_time


def test_replayed_receptions_counted(baseline):
    result = run_ring(
        "vcausal", nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.05, 0)]),
    )
    assert result.probes.total("replayed_receptions") > 0


def test_deterministic_recovery_same_seed(baseline):
    kw = dict(
        nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.05, 0)]),
    )
    r1 = run_ring("vcausal", **kw)
    kw["fault_plan"] = OneShotFaults([(0.05, 0)])
    r2 = run_ring("vcausal", **kw)
    assert r1.sim_time == r2.sim_time
    assert r1.results == r2.results
    assert r1.events_executed == r2.events_executed
