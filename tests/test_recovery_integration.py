"""Integration tests: fault injection and recovery correctness.

The defining property of the whole system: an application run under any
fault-tolerant stack, with any fault pattern, must produce results
identical to the fault-free run (replay fidelity / no orphans), and the
run must complete.
"""

import pytest

from repro import Cluster, ClusterConfig, OneShotFaults, PeriodicFaults

from tests.conftest import CAUSAL_STACKS, LOGGING_STACKS, ring_app, run_ring


@pytest.fixture(scope="module")
def baseline():
    result = run_ring("vcausal", nprocs=4, iterations=25)
    assert result.finished
    return result.results


@pytest.mark.parametrize("stack", LOGGING_STACKS)
def test_single_fault_preserves_results(stack, baseline):
    result = run_ring(
        stack, nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.01, 0)]),
    )
    assert result.finished
    assert result.results == baseline
    assert result.probes.total("restarts") == 1


@pytest.mark.parametrize("stack", ["vcausal", "vcausal-noel", "manetho-noel"])
@pytest.mark.parametrize("victim", [0, 1, 3])
def test_fault_on_any_rank(stack, victim, baseline):
    result = run_ring(
        stack, nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.02, victim)]),
    )
    assert result.finished
    assert result.results == baseline


@pytest.mark.parametrize("stack", ["vcausal", "logon", "pessimistic"])
def test_two_sequential_faults(stack, baseline):
    result = run_ring(
        stack, nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.01, 0), (0.5, 2)]),
    )
    assert result.finished
    assert result.results == baseline
    assert result.probes.total("restarts") == 2


@pytest.mark.parametrize("stack", ["vcausal", "manetho"])
def test_same_rank_killed_twice(stack, baseline):
    result = run_ring(
        stack, nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.01, 1), (0.6, 1)]),
    )
    assert result.finished
    assert result.results == baseline


def test_fault_with_checkpoints_round_robin(baseline):
    result = run_ring(
        "vcausal", nprocs=4, iterations=25,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.05,
        fault_plan=OneShotFaults([(0.3, 0)]),
    )
    assert result.finished
    assert result.results == baseline
    assert result.probes.checkpoints_stored > 0


def test_fault_with_checkpoints_random_policy(baseline):
    result = run_ring(
        "manetho", nprocs=4, iterations=25,
        checkpoint_policy="random", checkpoint_interval_s=0.05,
        fault_plan=OneShotFaults([(0.3, 2)]),
    )
    assert result.finished
    assert result.results == baseline


def test_coordinated_restart_from_scratch(baseline):
    result = run_ring(
        "coordinated", nprocs=4, iterations=25,
        checkpoint_policy="coordinated", checkpoint_interval_s=50.0,
        fault_plan=OneShotFaults([(0.02, 1)]),
    )
    assert result.finished
    assert result.results == baseline
    assert result.cluster.dispatcher.global_restarts == 1


def test_coordinated_restart_from_wave(baseline):
    result = run_ring(
        "coordinated", nprocs=4, iterations=25,
        checkpoint_policy="coordinated", checkpoint_interval_s=0.15,
        fault_plan=OneShotFaults([(0.4, 1)]),
    )
    assert result.finished
    assert result.results == baseline
    assert result.probes.checkpoints_stored >= 4


def test_periodic_faults_until_completion(baseline):
    result = run_ring(
        "vcausal", nprocs=4, iterations=25,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.05,
        fault_plan=PeriodicFaults(per_minute=120, start_s=0.05),
    )
    assert result.finished
    assert result.results == baseline
    assert result.cluster.dispatcher.faults_seen >= 2


#: fast-recovery config for the fault-storm tests below: detection and
#: restart are shrunk so the cluster makes progress between faults, while
#: the fault period stays *shorter* than a full recovery episode — i.e.
#: faults reliably fire while the previous victim is still mid-restart
FAST_RECOVERY = ClusterConfig().with_overrides(
    fault_detection_delay_s=0.03, restart_overhead_s=0.01
)


@pytest.mark.parametrize("victim", ["round-robin", "random"])
def test_faults_faster_than_recovery_skip_unsteady_ranks(victim):
    """Regression: a fault period shorter than detect+restart+replay used
    to let PeriodicFaults pick a rank that was still dead or mid-restart
    from the previous fault — the period's fault was silently swallowed
    (or double-killed a recovery in flight).  Victim selection now probes
    for a steady rank, so every planned fault lands on a live victim: at
    2 ranks and a 10 ms period the old selection lands only 1-2 of the 4
    planned faults."""
    reference = run_ring("vcausal", nprocs=2, iterations=15, config=FAST_RECOVERY)
    period_s = 0.01  # << detection (0.03) + restart (0.01) + replay
    result = run_ring(
        "vcausal", nprocs=2, iterations=15, config=FAST_RECOVERY,
        fault_plan=PeriodicFaults(
            per_minute=60.0 / period_s, start_s=0.02, victim=victim, seed=3,
            max_faults=4,
        ),
    )
    assert result.finished
    assert result.results == reference.results
    # every planned fault landed on a steady rank (none wasted on a dead
    # or restarting one), and each produced exactly one recovery episode
    probes = result.probes
    assert result.cluster.dispatcher.faults_seen == 4
    assert len(probes.recoveries) == 4
    assert probes.total("restarts") == 4


def test_fixed_victim_skipped_while_down():
    """A fixed-rank plan must not re-kill its victim mid-recovery; it
    rearms and fires once the victim is steady again."""
    reference = run_ring("vcausal", nprocs=2, iterations=15, config=FAST_RECOVERY)
    period_s = 0.01
    result = run_ring(
        "vcausal", nprocs=2, iterations=15, config=FAST_RECOVERY,
        fault_plan=PeriodicFaults(
            per_minute=60.0 / period_s, start_s=0.02, victim=1, max_faults=4
        ),
    )
    assert result.finished
    assert result.results == reference.results
    assert all(r.rank == 1 for r in result.probes.recoveries)
    assert result.cluster.dispatcher.faults_seen == 4
    assert len(result.probes.recoveries) == 4


def test_recovery_record_captured(baseline):
    result = run_ring(
        "vcausal", nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.05, 0)]),
    )
    rec = result.probes.recoveries[0]
    assert rec.rank == 0
    assert rec.fault_time == pytest.approx(0.05)
    assert rec.detect_time > rec.fault_time
    assert rec.event_collection_s > 0
    assert rec.events_collected > 0
    assert rec.event_sources == 1  # from the EL


def test_recovery_sources_without_el(baseline):
    result = run_ring(
        "vcausal-noel", nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.05, 0)]),
    )
    rec = result.probes.recoveries[0]
    assert rec.event_sources == 3  # every other node


def test_el_collection_faster_than_peers_at_scale():
    base = run_ring("vcausal", nprocs=8, iterations=20)
    with_el = run_ring(
        "vcausal", nprocs=8, iterations=20,
        fault_plan=OneShotFaults([(base.sim_time / 2, 0)]),
    )
    without_el = run_ring(
        "vcausal-noel", nprocs=8, iterations=20,
        fault_plan=OneShotFaults([(base.sim_time / 2, 0)]),
    )
    t_el = with_el.probes.recoveries[0].event_collection_s
    t_no = without_el.probes.recoveries[0].event_collection_s
    assert t_el < t_no


def test_fatal_fault_on_non_ft_stack():
    from repro.runtime.dispatcher import FatalFaultError

    with pytest.raises(FatalFaultError):
        run_ring("vdummy", nprocs=4, iterations=25,
                 fault_plan=OneShotFaults([(0.01, 0)]))


def test_fault_after_completion_is_ignored(baseline):
    base = run_ring("vcausal", nprocs=4, iterations=5)
    result = run_ring(
        "vcausal", nprocs=4, iterations=5,
        fault_plan=OneShotFaults([(base.sim_time * 2, 0)]),
    )
    assert result.finished
    assert result.cluster.dispatcher.faults_seen == 0


@pytest.mark.parametrize("stack", CAUSAL_STACKS)
def test_faulty_time_exceeds_fault_free(stack, baseline):
    base = run_ring(stack, nprocs=4, iterations=25)
    faulty = run_ring(
        stack, nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.05, 0)]),
    )
    assert faulty.sim_time > base.sim_time


def test_replayed_receptions_counted(baseline):
    result = run_ring(
        "vcausal", nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.05, 0)]),
    )
    assert result.probes.total("replayed_receptions") > 0


def test_deterministic_recovery_same_seed(baseline):
    kw = dict(
        nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.05, 0)]),
    )
    r1 = run_ring("vcausal", **kw)
    kw["fault_plan"] = OneShotFaults([(0.05, 0)])
    r2 = run_ring("vcausal", **kw)
    assert r1.sim_time == r2.sim_time
    assert r1.results == r2.results
    assert r1.events_executed == r2.events_executed
