"""Unit tests for the network model."""

import pytest

from repro.simulator.engine import SimulationError, Simulator
from repro.simulator.network import Network


def make_net(**kw):
    sim = Simulator()
    defaults = dict(
        bandwidth_bps=100e6,
        latency_s=25e-6,
        per_message_overhead_bytes=66,
        goodput_factor=0.93,
    )
    defaults.update(kw)
    return sim, Network(sim, **defaults)


def test_transfer_time_includes_latency_and_serialization():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    done = []
    at = net.transfer("a", "b", 1000, lambda: done.append(sim.now))
    sim.run()
    wire = (1000 + 66) * 8 / (100e6 * 0.93)
    assert done and abs(done[0] - (wire + 25e-6)) < 1e-12
    assert abs(at - done[0]) < 1e-12


def test_messages_on_one_tx_link_serialize():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    times = []
    net.transfer("a", "b", 100_000, lambda: times.append(sim.now))
    net.transfer("a", "b", 100_000, lambda: times.append(sim.now))
    sim.run()
    wire = (100_000 + 66) * 8 / (100e6 * 0.93)
    assert abs(times[0] - (wire + 25e-6)) < 1e-9
    assert abs(times[1] - (2 * wire + 25e-6)) < 1e-9


def test_fifo_per_channel_even_with_different_sizes():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    order = []
    net.transfer("a", "b", 1_000_000, lambda: order.append("big"))
    net.transfer("a", "b", 10, lambda: order.append("small"))
    sim.run()
    assert order == ["big", "small"]


def test_rx_contention_from_two_senders():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    net.attach("c")
    times = []
    net.transfer("a", "c", 100_000, lambda: times.append(("a", sim.now)))
    net.transfer("b", "c", 100_000, lambda: times.append(("b", sim.now)))
    sim.run()
    wire = (100_000 + 66) * 8 / (100e6 * 0.93)
    # both transmit in parallel, but c's RX link serializes them
    assert abs(times[0][1] - (wire + 25e-6)) < 1e-9
    assert abs(times[1][1] - (2 * wire + 25e-6)) < 1e-9


def test_half_duplex_shares_tx_and_rx():
    sim, net = make_net()
    net.attach("a", full_duplex=False)
    net.attach("b", full_duplex=False)
    times = []
    net.transfer("a", "b", 100_000, lambda: times.append(sim.now))
    net.transfer("b", "a", 100_000, lambda: times.append(sim.now))
    sim.run()
    # with half duplex the second transfer cannot overlap the first
    assert times[1] > times[0] * 1.5


def test_full_duplex_overlaps_both_directions():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    times = []
    net.transfer("a", "b", 100_000, lambda: times.append(sim.now))
    net.transfer("b", "a", 100_000, lambda: times.append(sim.now))
    sim.run()
    assert abs(times[0] - times[1]) < 1e-9  # fully overlapped


def test_loopback_costs_only_extra_latency():
    sim, net = make_net()
    net.attach("a")
    done = []
    net.transfer("a", "a", 10_000_000, lambda: done.append(sim.now), extra_latency=1e-6)
    sim.run()
    assert done == [1e-6]


def test_stats_accounting():
    sim, net = make_net()
    a = net.attach("a")
    b = net.attach("b")
    net.transfer("a", "b", 500, lambda: None)
    net.transfer("a", "b", 700, lambda: None)
    sim.run()
    assert a.stats.messages_sent == 2
    assert a.stats.bytes_sent == 1200
    assert b.stats.messages_received == 2
    assert b.stats.bytes_received == 1200
    assert net.total_messages == 2 and net.total_bytes == 1200


def test_negative_size_raises():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    with pytest.raises(SimulationError):
        net.transfer("a", "b", -1, lambda: None)


def test_duplicate_nic_raises():
    sim, net = make_net()
    net.attach("a")
    with pytest.raises(SimulationError):
        net.attach("a")


def test_per_nic_bandwidth_override():
    sim, net = make_net()
    net.attach("a", bandwidth_bps=400e6)
    net.attach("b", bandwidth_bps=400e6)
    done = []
    net.transfer("a", "b", 1_000_000, lambda: done.append(sim.now))
    sim.run()
    wire = (1_000_000 + 66) * 8 / (400e6 * 0.93)
    assert abs(done[0] - (wire + 25e-6)) < 1e-9


def test_chunked_transfer_allows_interleaving():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    done = {}
    # a 4 MB bulk transfer and a small message issued shortly after
    net.transfer_chunked("a", "b", 4 * 1024 * 1024, lambda: done.setdefault("bulk", sim.now))
    sim.schedule(1e-4, lambda: net.transfer("a", "b", 100, lambda: done.setdefault("small", sim.now)))
    sim.run()
    # the small message must NOT wait for the whole 4 MB (≈0.36 s)
    assert done["small"] < 0.05
    assert done["bulk"] > done["small"]


def test_chunked_transfer_small_payload_is_single_message():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    before = net.total_messages
    net.transfer_chunked("a", "b", 1000, lambda: None)
    sim.run()
    assert net.total_messages == before + 1


def test_chunked_transfer_delivers_once_with_full_volume():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    done = []
    net.transfer_chunked("a", "b", 1_000_000, done.append and (lambda: done.append(sim.now)), chunk_bytes=100_000)
    sim.run()
    assert len(done) == 1
    assert net.total_bytes == 1_000_000


def test_chunked_transfer_counts_chunks_and_logical_messages():
    sim, net = make_net()
    a = net.attach("a")
    b = net.attach("b")
    net.transfer_chunked("a", "b", 1_000_000, lambda: None, chunk_bytes=256 * 1024)
    sim.run()
    # 1 MB in 256 KiB chunks: 4 wire messages, 1 logical message
    assert net.total_messages == 4
    assert net.total_chunk_messages == 4
    assert net.total_logical_messages == 1
    assert a.stats.messages_sent == 4 and a.stats.chunks_sent == 4
    assert a.stats.logical_messages_sent == 1
    assert b.stats.messages_received == 4 and b.stats.chunks_received == 4
    assert b.stats.logical_messages_received == 1
    assert a.stats.bytes_sent == 1_000_000

    # a plain transfer is one wire + one logical message and no chunks
    net.transfer("a", "b", 10, lambda: None)
    sim.run()
    assert net.total_messages == 5
    assert net.total_logical_messages == 2
    assert net.total_chunk_messages == 4
    assert a.stats.chunks_sent == 4

    # a chunked transfer below the chunk size is one wire message that
    # still counts as one logical message and one chunk
    net.transfer_chunked("a", "b", 100, lambda: None)
    sim.run()
    assert net.total_messages == 6
    assert net.total_chunk_messages == 5
    assert net.total_logical_messages == 3
    assert a.stats.logical_messages_sent == 3


def test_transfer_args_passed_to_deliver():
    sim, net = make_net()
    net.attach("a")
    net.attach("b")
    got = []
    net.transfer("a", "b", 100, lambda x, y: got.append((x, y, sim.now)), args=(1, "z"))
    sim.run()
    assert len(got) == 1 and got[0][:2] == (1, "z")
