"""Unit tests for generator-coroutine processes and futures."""

import pytest

from repro.simulator.engine import SimulationError, Simulator
from repro.simulator.process import Future, ProcessCrashed, SimProcess, wait_all


def test_process_yields_delays():
    sim = Simulator()
    marks = []

    def gen():
        marks.append(sim.now)
        yield 1.5
        marks.append(sim.now)
        yield 0.5
        marks.append(sim.now)
        return "done"

    proc = SimProcess(sim, "p", gen)
    proc.start()
    sim.run()
    assert marks == [0.0, 1.5, 2.0]
    assert proc.finished and proc.result == "done"


def test_process_blocks_on_future_until_resolved():
    sim = Simulator()
    fut = Future(sim, "f")
    got = []

    def gen():
        value = yield fut
        got.append((sim.now, value))

    SimProcess(sim, "p", gen).start()
    sim.schedule(2.0, fut.resolve, 42)
    sim.run()
    assert got == [(2.0, 42)]


def test_already_resolved_future_resumes_immediately():
    sim = Simulator()
    fut = Future(sim, "f")
    fut.resolve("early")
    got = []

    def gen():
        value = yield fut
        got.append(value)

    SimProcess(sim, "p", gen).start()
    sim.run()
    assert got == ["early"]


def test_future_double_resolve_raises():
    sim = Simulator()
    fut = Future(sim, "f")
    fut.resolve(1)
    with pytest.raises(SimulationError, match="twice"):
        fut.resolve(2)


def test_future_double_await_raises():
    sim = Simulator()
    fut = Future(sim, "f")

    def gen():
        yield fut

    SimProcess(sim, "a", gen).start()
    SimProcess(sim, "b", gen).start()
    with pytest.raises(SimulationError, match="awaited twice"):
        sim.run(check_deadlock=False)


def test_cancelled_future_resolution_is_ignored():
    sim = Simulator()
    fut = Future(sim, "f")
    fut.cancel()
    fut.resolve(1)  # no raise
    assert not fut.resolved


def test_kill_while_waiting():
    sim = Simulator()
    fut = Future(sim, "f")
    cleanup = []

    def gen():
        try:
            yield fut
        except ProcessCrashed:
            cleanup.append("crashed")
            raise

    proc = SimProcess(sim, "p", gen)
    proc.start()
    sim.schedule(1.0, proc.kill)
    sim.schedule(2.0, fut.resolve, "late")  # must be ignored
    sim.run()
    assert cleanup == ["crashed"]
    assert not proc.alive and not proc.finished


def test_restart_after_kill_gets_fresh_generator():
    sim = Simulator()
    runs = []

    def gen():
        runs.append("start")
        yield 10.0
        runs.append("end")
        return len(runs)

    proc = SimProcess(sim, "p", gen)
    proc.start()
    sim.schedule(1.0, proc.kill)
    sim.schedule(2.0, proc.start)
    sim.run()
    assert runs == ["start", "start", "end"]
    assert proc.finished
    assert proc.incarnation == 2


def test_stale_wakeup_from_previous_incarnation_ignored():
    sim = Simulator()
    seen = []

    def gen():
        yield 5.0  # delayed resume scheduled for t=5
        seen.append(sim.now)

    proc = SimProcess(sim, "p", gen)
    proc.start()
    # kill at t=1 and restart at t=2: the t=5 resume of incarnation 1 must
    # not advance incarnation 2 (whose own delay ends at t=7)
    sim.schedule(1.0, proc.kill)
    sim.schedule(2.0, proc.start)
    sim.run()
    assert seen == [7.0]


def test_on_exit_callback():
    sim = Simulator()
    done = []

    def gen():
        yield 1.0
        return "value"

    SimProcess(sim, "p", gen, on_exit=lambda p, r: done.append(r)).start()
    sim.run()
    assert done == ["value"]


def test_yield_from_delegation():
    sim = Simulator()

    def subroutine():
        yield 1.0
        return 10

    def gen():
        a = yield from subroutine()
        b = yield from subroutine()
        return a + b

    proc = SimProcess(sim, "p", gen)
    proc.start()
    sim.run()
    assert proc.result == 20
    assert sim.now == 2.0


def test_unsupported_yield_value_raises():
    sim = Simulator()

    def gen():
        yield "nonsense"

    SimProcess(sim, "p", gen).start()
    with pytest.raises(SimulationError, match="unsupported"):
        sim.run()


def test_wait_all_collects_all_values():
    sim = Simulator()
    futs = [Future(sim, f"f{i}") for i in range(3)]
    got = []

    def gen():
        values = yield from wait_all(sim, futs)
        got.append(values)

    SimProcess(sim, "p", gen).start()
    # resolve out of order
    sim.schedule(3.0, futs[0].resolve, "a")
    sim.schedule(1.0, futs[2].resolve, "c")
    sim.schedule(2.0, futs[1].resolve, "b")
    sim.run()
    assert got == [["a", "b", "c"]]
    assert sim.now == 3.0


def test_start_while_alive_raises():
    sim = Simulator()

    def gen():
        yield 1.0

    proc = SimProcess(sim, "p", gen)
    proc.start()
    with pytest.raises(SimulationError):
        proc.start()


def test_blocked_process_is_reported_on_deadlock():
    sim = Simulator()
    fut = Future(sim, "never")

    def gen():
        yield fut

    SimProcess(sim, "stuck-proc", gen).start()
    from repro.simulator.engine import DeadlockError

    with pytest.raises(DeadlockError, match="stuck-proc"):
        sim.run()
