"""simlint analyzer tests + the repo-wide static-analysis gates.

Three layers:

* fixture tests — every rule has a fixture file under
  ``tests/fixtures/simlint/`` with a positive hit (tagged
  ``# expect: <rule>``), a suppressed hit and a clean negative; the
  analyzer must find exactly the tagged lines and nothing else;
* behavior tests — suppression bookkeeping (unused/unknown ignores),
  ``skip-file``, hot markers, config loading, deterministic discovery;
* gate tests — simlint runs clean on ``src/`` and ``tools/`` (the tier-1
  analogue of ``python -m tools.simlint src tools``), and mypy --strict
  passes on the typed packages when mypy is installed (skipped otherwise;
  the CI image bakes only the runtime toolchain).
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:  # `tools` lives at the repo root
    sys.path.insert(0, str(REPO_ROOT))

from tools.simlint.config import DEFAULT_SCOPES, Config, load_config  # noqa: E402
from tools.simlint.rules import RULES  # noqa: E402
from tools.simlint.runner import iter_python_files, lint_file, lint_paths  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "fixtures" / "simlint"

#: every rule active everywhere, nothing excluded — fixtures opt in to
#: exactly the behavior they exercise
ALL_ON = Config(
    scopes={rule: ["*"] for rule in RULES},
    rng_modules=[],
    exclude=[],
)

_EXPECT_RE = re.compile(r"#\s*expect:\s*([a-z-]+)")

RULE_FIXTURES = [
    "wall_clock.py",
    "raw_random.py",
    "unordered_iter.py",
    "id_order.py",
    "env_read.py",
    "host_thread.py",
    "missing_slots.py",
    "hot_closure.py",
    "mutable_default.py",
]


def expected_hits(path: Path) -> dict[int, str]:
    """line -> rule for every ``# expect: <rule>`` tag in a fixture."""
    hits = {}
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        m = _EXPECT_RE.search(line)
        if m:
            hits[lineno] = m.group(1)
    return hits


# --------------------------------------------------------------------- #
# fixtures: positive / suppressed / clean per rule


@pytest.mark.parametrize("name", RULE_FIXTURES)
def test_rule_fixture(name):
    path = FIXTURES / name
    expected = expected_hits(path)
    assert expected, f"fixture {name} has no # expect tags"
    findings = lint_file(path, REPO_ROOT, ALL_ON)
    unsuppressed = {f.line: f.rule for f in findings if not f.suppressed}
    assert unsuppressed == expected
    # the suppressed hit is really found *and* really suppressed
    suppressed = [f for f in findings if f.suppressed]
    assert suppressed, f"fixture {name} has no suppressed hit"
    # a suppression that fired is not double-reported as unused
    assert all(f.rule != "unused-ignore" for f in findings)


def test_fixture_rules_cover_every_real_rule():
    covered = set()
    for name in RULE_FIXTURES:
        covered.update(expected_hits(FIXTURES / name).values())
    assert covered == set(RULES) - {"unused-ignore", "syntax-error"}


# --------------------------------------------------------------------- #
# suppression bookkeeping, skip-file, syntax errors


def test_unused_and_unknown_ignores_are_findings():
    findings = lint_file(FIXTURES / "unused_ignore.py", REPO_ROOT, ALL_ON)
    by_line = {f.line: f for f in findings}
    assert set(by_line) == {2, 3}
    assert all(f.rule == "unused-ignore" for f in findings)
    assert "matches no finding" in by_line[2].message
    assert "unknown rule" in by_line[3].message


def test_unused_ignores_can_be_waived():
    config = Config(
        scopes={rule: ["*"] for rule in RULES},
        rng_modules=[],
        exclude=[],
        warn_unused_ignores=False,
    )
    assert lint_file(FIXTURES / "unused_ignore.py", REPO_ROOT, config) == []


def test_skip_file_opts_out():
    assert lint_file(FIXTURES / "skip_file.py", REPO_ROOT, ALL_ON) == []


def test_syntax_error_is_a_finding():
    findings = lint_file(FIXTURES / "syntax_error.py", REPO_ROOT, ALL_ON)
    assert len(findings) == 1
    assert findings[0].rule == "syntax-error"
    assert not findings[0].suppressed


def test_wildcard_suppression(tmp_path):
    src = "import time\nx = time.time()  # simlint: ignore[*] - fixture\n"
    f = tmp_path / "wild.py"
    f.write_text(src)
    findings = lint_file(f, tmp_path, ALL_ON)
    assert [f.rule for f in findings if not f.suppressed] == []
    assert any(f.suppressed for f in findings)


# --------------------------------------------------------------------- #
# configuration


def test_scope_restricts_rules(tmp_path):
    (tmp_path / "pkg").mkdir()
    f = tmp_path / "pkg" / "mod.py"
    f.write_text("import time\nx = time.time()\n")
    in_scope = Config(scopes={"wall-clock": ["pkg/*"]}, exclude=[])
    out_of_scope = Config(scopes={"wall-clock": ["other/*"]}, exclude=[])
    assert [x.rule for x in lint_file(f, tmp_path, in_scope)] == ["wall-clock"]
    assert lint_file(f, tmp_path, out_of_scope) == []


def test_pyproject_overlay(tmp_path):
    (tmp_path / "pyproject.toml").write_text(
        "[tool.simlint]\n"
        'exclude = ["generated/*"]\n'
        "[tool.simlint.scopes]\n"
        '"wall-clock" = ["only/here/*"]\n'
    )
    config = load_config(tmp_path)
    assert config.exclude == ["generated/*"]
    assert config.scopes["wall-clock"] == ["only/here/*"]
    # untouched rules keep their defaults
    assert config.scopes["mutable-default"] == DEFAULT_SCOPES["mutable-default"]


def test_repo_config_excludes_fixtures():
    config = load_config(REPO_ROOT)
    files = iter_python_files([REPO_ROOT / "tests"], REPO_ROOT, config)
    assert not [p for p in files if "fixtures" in p.parts]


def test_discovery_is_sorted():
    config = load_config(REPO_ROOT)
    files = iter_python_files([REPO_ROOT / "src", REPO_ROOT / "tools"], REPO_ROOT, config)
    assert files == sorted(files)
    assert any(p.name == "engine.py" for p in files)


# --------------------------------------------------------------------- #
# repo gates


def test_simlint_clean_on_src_and_tools():
    """The tier-1 analogue of ``python -m tools.simlint src tools``."""
    config = load_config(REPO_ROOT)
    findings = lint_paths(
        [REPO_ROOT / "src", REPO_ROOT / "tools"], REPO_ROOT, config
    )
    unsuppressed = [f.render() for f in findings if not f.suppressed]
    assert unsuppressed == []


def test_simlint_cli_entry():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.simlint", "src", "tools"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 finding(s)" in proc.stdout


def test_mypy_strict_on_typed_packages():
    """mypy --strict on the compiled-core on-ramp packages.

    Skipped when mypy is not installed (install via ``pip install -e
    .[dev]``); configuration lives in ``pyproject.toml``.
    """
    pytest.importorskip("mypy")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "pyproject.toml"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
