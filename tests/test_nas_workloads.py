"""NAS skeleton tests: completion, determinism, cross-stack agreement."""

import pytest

from repro import Cluster
from repro.workloads.nas import allowed_procs, make_app, problem_info
from repro.workloads.nas.common import pow2_grid, square_side

BENCHES = ("bt", "sp", "cg", "lu", "mg", "ft")


def run_bench(bench, klass="S", nprocs=4, stack="vdummy", iterations=2, **kw):
    app, info = make_app(bench, klass, nprocs, iterations=iterations)
    result = Cluster(nprocs=nprocs, app_factory=app, stack=stack, **kw).run(
        max_events=20_000_000
    )
    assert result.finished, (bench, stack)
    return result, info


# --------------------------------------------------------------------- #
# grids and class tables

def test_square_side_accepts_squares():
    assert square_side(16) == 4
    with pytest.raises(ValueError):
        square_side(8)


def test_pow2_grid_factorization():
    assert pow2_grid(16) == (4, 4)
    assert pow2_grid(8) == (2, 4)
    assert pow2_grid(2) == (1, 2)
    with pytest.raises(ValueError):
        pow2_grid(6)


def test_problem_info_classes():
    a = problem_info("bt", "A")
    b = problem_info("bt", "B")
    assert b.total_flops > a.total_flops
    assert a.iterations == 200


def test_allowed_procs():
    assert 9 in allowed_procs("bt")
    assert 9 not in allowed_procs("cg")


def test_unknown_bench_raises():
    with pytest.raises(ValueError):
        make_app("nosuch", "A", 4)


# --------------------------------------------------------------------- #
# completion on every benchmark

@pytest.mark.parametrize("bench", BENCHES)
def test_bench_completes_on_vdummy(bench):
    nprocs = 4
    result, info = run_bench(bench, nprocs=nprocs)
    assert result.mflops > 0
    assert info.iterations_used == 2
    assert result.probes.total("flops") > 0


@pytest.mark.parametrize("bench", BENCHES)
def test_bench_completes_on_vcausal(bench):
    result, _ = run_bench(bench, stack="vcausal")
    assert result.probes.total("el_events_logged") > 0


@pytest.mark.parametrize("bench", ("bt", "cg", "lu"))
@pytest.mark.parametrize("nprocs", (4, 16))
def test_bench_scales_proc_counts(bench, nprocs):
    result, _ = run_bench(bench, nprocs=nprocs)
    assert result.finished


def test_bt_runs_on_9_procs():
    result, _ = run_bench("bt", nprocs=9)
    assert result.finished


def test_single_process_degenerate_runs():
    for bench in ("cg", "ft", "mg"):
        result, _ = run_bench(bench, nprocs=1)
        assert result.probes.total("app_messages_sent") == 0


# --------------------------------------------------------------------- #
# determinism and cross-stack agreement

@pytest.mark.parametrize("bench", BENCHES)
def test_results_identical_across_stacks(bench):
    """The fault-tolerance stack must never change application results."""
    reference, _ = run_bench(bench, stack="vdummy")
    for stack in ("p4", "vcausal", "manetho-noel", "pessimistic"):
        result, _ = run_bench(bench, stack=stack)
        assert result.results == reference.results, stack


@pytest.mark.parametrize("bench", BENCHES)
def test_bitwise_reproducible(bench):
    r1, _ = run_bench(bench, stack="vcausal")
    r2, _ = run_bench(bench, stack="vcausal")
    assert r1.sim_time == r2.sim_time
    assert r1.results == r2.results
    assert r1.events_executed == r2.events_executed


# --------------------------------------------------------------------- #
# fault tolerance on real workloads

@pytest.mark.parametrize("bench", ("cg", "lu", "ft"))
def test_bench_survives_fault(bench):
    from repro import OneShotFaults

    base, _ = run_bench(bench, klass="S", nprocs=4, stack="vcausal", iterations=3)
    app, _ = make_app(bench, "S", 4, iterations=3)
    result = Cluster(
        nprocs=4,
        app_factory=app,
        stack="vcausal",
        fault_plan=OneShotFaults([(base.sim_time / 2, 1)]),
    ).run(max_events=20_000_000)
    assert result.finished
    assert result.results == base.results


def test_bt_survives_fault_with_checkpoints():
    from repro import OneShotFaults

    base, _ = run_bench("bt", klass="S", nprocs=4, stack="vcausal", iterations=10)
    app, _ = make_app("bt", "S", 4, iterations=10)
    result = Cluster(
        nprocs=4,
        app_factory=app,
        stack="vcausal",
        checkpoint_policy="round-robin",
        checkpoint_interval_s=base.sim_time / 8,
        fault_plan=OneShotFaults([(base.sim_time * 0.6, 0)]),
    ).run(max_events=20_000_000)
    assert result.finished
    assert result.results == base.results


# --------------------------------------------------------------------- #
# pinned small-rank checksums (BT / SP / FT on vcausal)
#
# These pin the exact simulated image — time, event count, traffic,
# application results — so any change to the delivery pipeline, the
# piggyback algebra or the workload skeletons that moves a single event
# fails loudly.  Both `delivery_fastpath` settings must reproduce the
# same pin: the fused closures (runtime/fastpath.py) are a host-side
# representation change only.

PINNED_IMAGES = {
    # (bench, nprocs): sim_time, events_executed, messages, pb_bytes, fold
    ("bt", 9): (0.007192012311814559, 1108, 124, 1828, 1956590250360878096),
    ("sp", 4): (0.0074528037634408574, 484, 54, 596, 848296323971433027),
    ("ft", 8): (0.07237872496575341, 1272, 154, 1096, 970971711552552355),
}


@pytest.mark.parametrize("bench,nprocs", sorted(PINNED_IMAGES))
@pytest.mark.parametrize("fastpath", (True, False))
def test_pinned_simulation_image(bench, nprocs, fastpath):
    from repro.runtime.config import ClusterConfig

    app, _ = make_app(bench, "S", nprocs, iterations=2)
    r = Cluster(
        nprocs=nprocs,
        app_factory=app,
        stack="vcausal",
        config=ClusterConfig(delivery_fastpath=fastpath),
    ).run(max_events=20_000_000)
    assert r.finished
    fold = 0
    for v in r.results.values():  # int results: hash() is process-stable
        fold = (fold * 1_000_003 + hash(v)) % (2**61 - 1)
    image = (
        r.sim_time,
        r.events_executed,
        r.probes.total("app_messages_sent"),
        r.probes.total("piggyback_bytes_sent"),
        fold,
    )
    assert image == PINNED_IMAGES[(bench, nprocs)]


# --------------------------------------------------------------------- #
# workload character (the properties the paper relies on)

def test_lu_sends_many_small_messages():
    lu, _ = run_bench("lu", klass="A", nprocs=16, iterations=1)
    bt, _ = run_bench("bt", klass="A", nprocs=16, iterations=1)
    lu_msgs = lu.probes.total("app_messages_sent")
    bt_msgs = bt.probes.total("app_messages_sent")
    lu_avg = lu.probes.total_payload_bytes / lu_msgs
    bt_avg = bt.probes.total_payload_bytes / bt_msgs
    assert lu_msgs > 5 * bt_msgs          # "very large number of messages"
    assert lu_avg < bt_avg                # smaller strips vs big faces


def test_ft_is_all_to_all():
    ft, _ = run_bench("ft", klass="S", nprocs=8, iterations=2)
    per_rank = ft.probes.per_rank[0].app_messages_sent
    # each rank talks to all 7 peers each iteration (plus reductions)
    assert per_rank >= 2 * 7


def test_cg_latency_bound_many_small():
    cg, _ = run_bench("cg", klass="A", nprocs=16, iterations=1)
    avg = cg.probes.total_payload_bytes / cg.probes.total("app_messages_sent")
    assert avg < 64 * 1024


def test_nas_info_truncation_fraction():
    _, info = run_bench("bt", klass="A", nprocs=4, iterations=5)
    assert info.truncation == pytest.approx(5 / 200)
