"""Failure domains, correlated fault storms and infrastructure faults.

The defining property carries over from test_recovery_integration: any
fault pattern — whole domains dying at once, restart-triggered cascades,
an EL shard crash, a checkpoint-server outage — must leave the
application results identical to the fault-free run, and the run must
complete.  On top of that, the robustness layer itself is checked: the
retry/timeout/backoff primitive, the skip-unkillable rule, the failover
bookkeeping, and the bit-identity guarantee of the default knobs.
"""

import pytest

from repro import (
    Cluster,
    ClusterConfig,
    CompositeFaults,
    CorrelatedFaults,
    FailureDomains,
    InfraFaults,
    OneShotFaults,
    StormFaults,
)
from repro.runtime.retry import RetryChannel, RetryPolicy, RetryStats

from tests.conftest import ring_app, run_ring


@pytest.fixture(scope="module")
def baseline():
    result = run_ring("vcausal", nprocs=4, iterations=25)
    assert result.finished
    return result.results


# --------------------------------------------------------------------- #
# FailureDomains partition properties


@pytest.mark.parametrize(
    "nprocs,count", [(1, 1), (4, 2), (7, 3), (16, 5), (256, 32), (9, 100), (5, 0)]
)
def test_failure_domains_partition(nprocs, count):
    domains = FailureDomains(nprocs, count)
    expected = nprocs if (count <= 0 or count > nprocs) else count
    assert domains.ndomains == expected
    seen = []
    sizes = []
    for d in range(domains.ndomains):
        members = domains.members(d)
        assert members, "no empty domains"
        # contiguous block, consistent with domain_of
        assert members == list(range(members[0], members[-1] + 1))
        assert all(domains.domain_of(r) == d for r in members)
        seen.extend(members)
        sizes.append(len(members))
    assert seen == list(range(nprocs))  # exact partition, in rank order
    assert max(sizes) - min(sizes) <= 1  # balanced


def test_failure_domains_rejects_empty_cluster():
    with pytest.raises(ValueError):
        FailureDomains(0, 1)


# --------------------------------------------------------------------- #
# satellite: the skip-unkillable rule for planned one-shot faults


def test_oneshot_fault_on_dead_rank_is_skipped(baseline):
    """A second kill landing while the first victim is still dead or
    mid-restart used to double-kill the recovery episode; it is now
    dropped and counted."""
    result = run_ring(
        "vcausal", nprocs=4, iterations=25,
        fault_plan=OneShotFaults([(0.05, 0), (0.051, 0)]),
    )
    assert result.finished
    assert result.results == baseline
    assert result.probes.faults_skipped == 1
    assert result.probes.total("restarts") == 1
    assert len(result.probes.recoveries) == 1


def test_oneshot_fault_after_finish_is_not_counted_as_skip():
    base = run_ring("vcausal", nprocs=4, iterations=5)
    result = run_ring(
        "vcausal", nprocs=4, iterations=5,
        fault_plan=OneShotFaults([(base.sim_time * 2, 0)]),
    )
    assert result.finished
    assert result.probes.faults_skipped == 0  # run over: not a skip


# --------------------------------------------------------------------- #
# satellite: config validation of the new knobs


@pytest.mark.parametrize(
    "overrides",
    [
        {"fault_detection_delay_s": -0.1},
        {"fault_domains": -1},
        {"rpc_timeout_s": -1e-3},
        {"rpc_backoff_base_s": -0.5},
        {"rpc_backoff_factor": 0.5},
        {"rpc_backoff_base_s": 0.2, "rpc_backoff_max_s": 0.1},
        {"rpc_max_attempts": 0},
    ],
)
def test_config_rejects_invalid_fault_and_retry_knobs(overrides):
    with pytest.raises(ValueError):
        ClusterConfig().with_overrides(**overrides)


# --------------------------------------------------------------------- #
# retry primitive (deterministic sim-time unit tests)


def _sim():
    from repro.simulator.engine import make_simulator

    return make_simulator()


def test_retry_policy_backoff_is_capped():
    policy = RetryPolicy(
        timeout_s=0.1, backoff_base_s=0.05, backoff_factor=2.0, backoff_max_s=0.3
    )
    assert policy.enabled
    assert policy.backoff_s(1) == pytest.approx(0.05)
    assert policy.backoff_s(2) == pytest.approx(0.10)
    assert policy.backoff_s(3) == pytest.approx(0.20)
    assert policy.backoff_s(4) == pytest.approx(0.30)  # capped
    assert policy.backoff_s(10) == pytest.approx(0.30)
    assert not RetryPolicy(timeout_s=0.0).enabled


def test_retry_channel_retries_on_timeout_then_completes():
    sim = _sim()
    policy = RetryPolicy(timeout_s=0.1, backoff_base_s=0.05, max_attempts=8)
    stats = RetryStats()
    channel = RetryChannel(sim, policy, stats)
    sends = []

    def send(call):
        sends.append(sim.now)
        if call.attempt == 3:  # the third attempt is finally answered
            sim.schedule(0.01, call.complete)

    channel.call(send)
    sim.run()
    assert len(sends) == 3
    # attempt 1 at t=0, times out at 0.1, backs off 0.05 -> attempt 2 at
    # 0.15, times out at 0.25, backs off 0.1 -> attempt 3 at 0.35
    assert sends == [pytest.approx(0.0), pytest.approx(0.15), pytest.approx(0.35)]
    assert stats.attempts == 3
    assert stats.retries == 2
    assert stats.timeouts == 2
    assert stats.completions == 1
    assert stats.abandoned == 0


def test_retry_channel_abandons_after_max_attempts():
    sim = _sim()
    policy = RetryPolicy(timeout_s=0.05, backoff_base_s=0.01, max_attempts=3)
    stats = RetryStats()
    channel = RetryChannel(sim, policy, stats)
    sends = []
    channel.call(lambda call: sends.append(call.attempt))  # never answered
    sim.run()
    assert sends == [1, 2, 3]
    assert stats.abandoned == 1
    assert stats.timeouts == 3


def test_retry_channel_explicit_failure_skips_timeout():
    sim = _sim()
    policy = RetryPolicy(timeout_s=10.0, backoff_base_s=0.01, max_attempts=2)
    stats = RetryStats()
    channel = RetryChannel(sim, policy, stats)
    sends = []

    def send(call):
        sends.append(sim.now)
        call.fail()  # connection refused: no waiting for the 10 s deadline

    channel.call(send)
    sim.run()
    assert sim.now < 1.0  # both attempts resolved by backoff, not timeout
    assert len(sends) == 2
    assert stats.failures == 2
    assert stats.timeouts == 0
    assert stats.abandoned == 1


def test_retry_call_complete_is_idempotent_and_cancels_timer():
    sim = _sim()
    policy = RetryPolicy(timeout_s=0.1, max_attempts=8)
    stats = RetryStats()
    channel = RetryChannel(sim, policy, stats)
    call = channel.call(lambda c: None)
    call.complete()
    call.complete()  # late duplicate ack: harmless
    sim.run()
    assert stats.completions == 1
    assert stats.timeouts == 0  # the armed deadline was cancelled
    assert stats.attempts == 1


def test_retry_channel_stops_when_inactive():
    sim = _sim()
    policy = RetryPolicy(timeout_s=0.05, backoff_base_s=0.01, max_attempts=8)
    stats = RetryStats()
    state = {"active": True}
    channel = RetryChannel(sim, policy, stats, active=lambda: state["active"])
    sends = []

    def send(call):
        sends.append(call.attempt)
        state["active"] = False  # cluster finishes while the call is in flight

    channel.call(send)
    sim.run()
    assert sends == [1]  # the retry fired but found the channel inactive
    assert stats.abandoned == 0


# --------------------------------------------------------------------- #
# correlated faults and storms: results survive any schedule


@pytest.mark.parametrize("stack", ["vcausal", "manetho", "logon"])
@pytest.mark.parametrize("seed", [0, 1])
def test_storm_schedules_preserve_results(stack, seed):
    reference = run_ring(stack, nprocs=6, iterations=20)
    cfg = ClusterConfig().with_overrides(fault_domains=3)
    result = run_ring(
        stack, nprocs=6, iterations=20, config=cfg,
        fault_plan=StormFaults(
            start_s=0.05, window_s=0.3, kills=2, seed=seed
        ),
    )
    assert result.finished
    assert result.results == reference.results
    # two domains of two ranks each died
    assert len(result.probes.recoveries) + result.probes.faults_skipped == 4


@pytest.mark.parametrize("stack", ["vcausal", "manetho", "logon"])
def test_correlated_domain_kill_preserves_results(stack):
    reference = run_ring(stack, nprocs=6, iterations=20)
    cfg = ClusterConfig().with_overrides(fault_domains=2)
    result = run_ring(
        stack, nprocs=6, iterations=20, config=cfg,
        fault_plan=CorrelatedFaults(at_s=0.1, domain=1),
    )
    assert result.finished
    assert result.results == reference.results
    assert len(result.probes.recoveries) == 3  # the whole 3-rank domain


def test_cascading_restarts_rekill_the_domain(baseline):
    """With cascade_p=1 every restart inside the struck domain re-kills
    the restarted rank, bounded by max_cascades."""
    cfg = ClusterConfig().with_overrides(fault_domains=2)
    result = run_ring(
        "vcausal", nprocs=4, iterations=25, config=cfg,
        fault_plan=CorrelatedFaults(
            at_s=0.05, domain=0, cascade_p=1.0, cascade_delay_s=0.15,
            max_cascades=2,
        ),
    )
    assert result.finished
    assert result.results == baseline
    # 2 ranks in the domain + exactly max_cascades re-kills (the 0.15 s
    # delay lets each restarted rank finish replaying, so the re-kill
    # lands on a steady victim instead of being skipped)
    assert len(result.probes.recoveries) == 4
    assert result.probes.faults_skipped == 0


def test_cascade_disabled_by_default(baseline):
    cfg = ClusterConfig().with_overrides(fault_domains=2)
    result = run_ring(
        "vcausal", nprocs=4, iterations=25, config=cfg,
        fault_plan=CorrelatedFaults(at_s=0.05, domain=0),
    )
    assert result.finished
    assert result.results == baseline
    assert len(result.probes.recoveries) == 2  # no re-kills


# --------------------------------------------------------------------- #
# EL shard failover


EL2 = dict(el_count=2, el_sync_strategy="multicast", el_sync_interval_s=5e-3)


def test_el_failover_knob_is_bit_identical_when_fault_free():
    """Arming ``el_failover`` must add zero simulated events until a shard
    actually dies: the failover machinery is pure host-side state."""
    off = run_ring(
        "vcausal", nprocs=4, iterations=25,
        config=ClusterConfig().with_overrides(**EL2, el_failover=False),
    )
    on = run_ring(
        "vcausal", nprocs=4, iterations=25,
        config=ClusterConfig().with_overrides(**EL2, el_failover=True),
    )
    assert on.events_executed == off.events_executed
    assert on.sim_time == off.sim_time
    assert on.results == off.results


def test_el_shard_crash_with_failover_preserves_results(baseline):
    cfg = ClusterConfig().with_overrides(
        **EL2, el_failover=True, rpc_timeout_s=5e-3
    )
    result = run_ring(
        "vcausal", nprocs=4, iterations=25, config=cfg,
        fault_plan=InfraFaults(el_shard_kills=[(0.2, 0)]),
    )
    assert result.finished
    assert result.results == baseline
    probes = result.probes
    assert probes.el_failovers == 1
    group = result.cluster.event_logger
    assert group.shard_kills == 1
    # the dead shard's key range now routes to the survivor
    assert len({group.shard_index_for(r) for r in range(4)}) == 1


def test_el_shard_crash_then_rank_kill_recovers_from_survivor(baseline):
    """After a failover, a recovering rank must fetch its determinants
    from the surviving shard (disk-absorbed + re-logged ones)."""
    cfg = ClusterConfig().with_overrides(
        **EL2, el_failover=True, rpc_timeout_s=5e-3
    )
    result = run_ring(
        "vcausal", nprocs=4, iterations=25, config=cfg,
        fault_plan=CompositeFaults(plans=[
            InfraFaults(el_shard_kills=[(0.2, 0)]),
            OneShotFaults([(0.3, 0)]),  # rank 0's range lived on shard 0
        ]),
    )
    assert result.finished
    assert result.results == baseline
    assert result.probes.el_failovers == 1
    assert len(result.probes.recoveries) == 1


def test_el_shard_crash_without_failover_strands_the_range():
    """Without the knob a dead shard stays dead: posts to it are dropped.
    The run must still complete (determinant logging is an optimisation,
    not a correctness requirement while no rank dies)."""
    cfg = ClusterConfig().with_overrides(**EL2, el_failover=False)
    result = run_ring(
        "vcausal", nprocs=4, iterations=25, config=cfg,
        fault_plan=InfraFaults(el_shard_kills=[(0.2, 0)]),
    )
    assert result.finished
    assert result.probes.el_failovers == 0
    assert result.probes.el_posts_dropped > 0


# --------------------------------------------------------------------- #
# checkpoint-server outages


def test_ckpt_outage_aborts_inflight_stores_and_retries(baseline):
    """An outage mid-wave aborts the in-flight store transactions; armed
    retries re-store after the restore and a later fault still recovers
    with correct results."""
    cfg = ClusterConfig().with_overrides(
        ckpt_server_failover=True, rpc_timeout_s=5e-3
    )
    result = run_ring(
        "vcausal", nprocs=4, iterations=25, config=cfg,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.05,
        fault_plan=CompositeFaults(plans=[
            InfraFaults(ckpt_outages=[(0.12, 0.3)]),
            OneShotFaults([(0.6, 1)]),
        ]),
    )
    assert result.finished
    assert result.results == baseline
    probes = result.probes
    assert probes.ckpt_outages == 1
    assert probes.ckpt_stores_aborted + probes.rpc_channels[
        "ckpt_store"
    ].failures > 0
    assert len(probes.recoveries) == 1


def test_ckpt_unrestored_outage_still_completes(baseline):
    """The server never comes back: stores are abandoned after the attempt
    budget, checkpoint ticks are skipped, and a fault-free run finishes."""
    cfg = ClusterConfig().with_overrides(
        ckpt_server_failover=True, rpc_timeout_s=5e-3, rpc_max_attempts=3
    )
    result = run_ring(
        "vcausal", nprocs=4, iterations=25, config=cfg,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.05,
        fault_plan=InfraFaults(ckpt_outages=[(0.1, None)]),
    )
    assert result.finished
    assert result.results == baseline
    assert result.cluster.scheduler.ticks_skipped > 0


def test_ckpt_outage_unit_transactional_abort():
    """Unit-level transactional contract: a store in flight when the
    server fails aborts at delivery; complete waves survive the outage
    and remain retrievable after the restore."""
    from repro.metrics.probes import ClusterProbes
    from repro.runtime.checkpoint_server import CheckpointServer
    from repro.simulator.engine import make_simulator
    from repro.simulator.network import Network

    sim = make_simulator()
    config = ClusterConfig()
    network = Network(sim, bandwidth_bps=config.bandwidth_bps)
    network.attach("n0")
    network.attach("ckpt", bandwidth_bps=config.checkpoint_server_bandwidth_bps)
    server = CheckpointServer(sim, network, config, ClusterProbes(), nprocs=1)
    log = []

    # wave 1 commits fully before the crash
    server.store(0, 4096, {"w": 1}, "n0",
                 on_commit=lambda img: log.append("commit1"), wave=1)
    sim.run()
    assert log == ["commit1"]
    assert server.wave_complete(1, nprocs=1)

    # wave 2's store is in flight when the server dies
    accepted = server.store(0, 4096, {"w": 2}, "n0",
                            on_commit=lambda img: log.append("commit2"),
                            on_abort=lambda: log.append("abort2"), wave=2)
    assert accepted
    server.fail()
    sim.run()
    assert log == ["commit1", "abort2"]  # transaction aborted at delivery
    assert 2 not in server.waves  # the aborted wave is never resurrected

    # while down: connection refused, nothing sent
    assert not server.store(0, 4096, {"w": 3}, "n0", wave=3)
    assert not server.retrieve(0, "n0", lambda img: None)

    # after the restore the *complete* wave is still there
    server.restore()
    assert server.latest_complete_wave(nprocs=1) == 1
    got = []
    assert server.retrieve_wave(0, 1, "n0", lambda img: got.append(img))
    sim.run()
    assert got and got[0].snapshot == {"w": 1}


# --------------------------------------------------------------------- #
# default-knob bit-identity of the whole robustness layer


def test_default_knobs_add_no_events():
    """The seed configuration must be bit-identical to a run with the
    whole robustness layer compiled in but disabled (the default knobs):
    no retry timers, no failover bookkeeping events."""
    r = run_ring("vcausal", nprocs=4, iterations=25)
    cfg = ClusterConfig()
    assert cfg.rpc_timeout_s == 0.0
    assert not cfg.el_failover
    assert not cfg.ckpt_server_failover
    assert cfg.fault_domains == 0
    assert r.probes.rpc_channels == {}  # no channel ever instantiated
