"""Shared fixtures and helper applications for the test suite."""

from __future__ import annotations

import os
import random
import zlib

import pytest

from repro import Cluster
from repro.runtime.config import ClusterConfig


def pytest_configure(config):
    """Deterministic-reseed guard for parallel runs (pytest-xdist).

    The tier-1 suite may run sharded across processes (``-n auto``; see
    pytest.ini — xdist is optional, serial runs are unaffected).  The
    simulation itself never touches global RNG state (the ``raw-random``
    simlint rule), but test helpers could; seed each worker's global RNGs
    from its stable worker id so any such use is reproducible run to run
    instead of inheriting whatever entropy the worker started with.
    """
    worker = os.environ.get("PYTEST_XDIST_WORKER")
    if worker is not None:
        seed = zlib.crc32(worker.encode())
        random.seed(seed)
        try:
            import numpy as np

            np.random.seed(seed)
        except ImportError:  # pragma: no cover - numpy is a core dep
            pass


@pytest.fixture
def config() -> ClusterConfig:
    return ClusterConfig()


def ring_app(iterations: int = 10, nbytes: int = 512, flops: float = 5e6):
    """Ring sendrecv + allreduce application with a verification value.

    Written in restartable style: all durable state lives in ``ctx.state``
    and a checkpoint poll happens once per iteration.
    """

    def app(ctx):
        s = ctx.state
        s.setdefault("it", 0)
        s.setdefault("acc", 0)
        while s["it"] < iterations:
            yield from ctx.checkpoint_poll()
            right = (ctx.rank + 1) % ctx.size
            left = (ctx.rank - 1) % ctx.size
            msg = yield from ctx.sendrecv(
                right, nbytes, left, tag=5, payload=(ctx.rank, s["it"])
            )
            assert msg.payload == (left, s["it"])
            s["acc"] = (s["acc"] * 31 + msg.payload[0] * (s["it"] + 1)) % 1000003
            total = yield from ctx.allreduce(8, s["acc"])
            s["last"] = total
            yield from ctx.compute_flops(flops)
            s["it"] += 1
        return s["last"]

    return app


def run_ring(
    stack: str,
    nprocs: int = 4,
    iterations: int = 10,
    nbytes: int = 512,
    **cluster_kw,
):
    """Run the ring app on a fresh cluster; returns the RunResult."""
    cluster = Cluster(
        nprocs=nprocs,
        app_factory=ring_app(iterations=iterations, nbytes=nbytes),
        stack=stack,
        **cluster_kw,
    )
    return cluster.run(max_events=20_000_000)


LOGGING_STACKS = (
    "vcausal",
    "manetho",
    "logon",
    "vcausal-noel",
    "manetho-noel",
    "logon-noel",
    "pessimistic",
)

CAUSAL_STACKS = (
    "vcausal",
    "manetho",
    "logon",
    "vcausal-noel",
    "manetho-noel",
    "logon-noel",
)

ALL_STACKS = ("p4", "vdummy") + LOGGING_STACKS + ("coordinated",)
