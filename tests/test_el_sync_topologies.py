"""Shard-sync topology tests for the distributed Event Logger.

Two families:

* **equivalence** — on a quiesced system (no new determinants arriving),
  every topology must converge every shard's merged view to the same
  fixed point the all-to-all multicast reaches: the elementwise max over
  all shards' authoritative clocks;
* **regression** — the ``"multicast"``/``"broadcast"`` strategies predate
  the tree/gossip topologies and are the recorded-benchmark compatibility
  mode: their message counts, sync bytes and simulation results must stay
  bit-identical (reference values captured on the pre-topology code).
"""

from __future__ import annotations

import random

import pytest

from repro.metrics.probes import ClusterProbes
from repro.core.distributed_el import EventLoggerGroup
from repro.runtime.config import ClusterConfig
from repro.simulator.engine import Simulator
from repro.simulator.network import Network

from tests.conftest import run_ring


def dcfg(count, strategy="multicast", interval=2e-3, **kw):
    return ClusterConfig().with_overrides(
        el_count=count, el_sync_strategy=strategy, el_sync_interval_s=interval,
        **kw
    )


def make_group(count, strategy, nprocs=32, seed=7, rounds=None, **group_kw):
    """A standalone shard group, quiesced, with pseudo-random seeded
    per-shard authoritative clocks; runs ``rounds`` sync rounds."""
    sim = Simulator()
    net = Network(sim)
    from repro.core.distributed_el import shard_host

    for k in range(count):
        net.attach(shard_host(k))
    group = EventLoggerGroup(
        sim, net, ClusterConfig(), ClusterProbes(), nprocs,
        count=count, sync_strategy=strategy, **group_kw
    )
    rng = random.Random(seed)
    for rank in range(nprocs):
        group.shard_for(rank).stable_clock[rank] = rng.randrange(1, 1000)
    if rounds is None:
        rounds = group.staleness_bound_rounds + 1
    deadline = group.sync_interval_s * (rounds + 0.5)
    group.active_check = lambda: sim.now < deadline
    sim.run()
    return group


def fixed_point(group):
    """The multicast fixed point: elementwise max over every shard's
    authoritative clocks (== what ``merged_stable`` reports)."""
    return group.merged_stable()


@pytest.mark.parametrize(
    "count,strategy,kw",
    [
        (2, "tree", {"tree_fanout": 2}),
        (4, "tree", {"tree_fanout": 1}),   # degenerate chain
        (8, "tree", {"tree_fanout": 2}),
        (8, "tree", {"tree_fanout": 3}),
        (16, "tree", {"tree_fanout": 4}),
        (2, "gossip", {"gossip_fanout": 1}),
        (8, "gossip", {"gossip_fanout": 1}),
        (8, "gossip", {"gossip_fanout": 2}),
        (16, "gossip", {"gossip_fanout": 3}),
    ],
)
def test_topologies_converge_to_multicast_fixed_point(count, strategy, kw):
    """Property: on a quiesced system every shard's merged view reaches
    the multicast fixed point within the staleness bound."""
    group = make_group(count, strategy, **kw)
    reference = make_group(count, "multicast", rounds=1)
    want = fixed_point(group)
    assert want == fixed_point(reference)  # same seeded state, same union
    for shard in group.shards:
        assert shard.merged_view().as_list(group.nprocs) == want, shard.index
    for shard in reference.shards:
        assert shard.merged_view().as_list(group.nprocs) == want, shard.index


@pytest.mark.parametrize("count,fanout", [(4, 2), (5, 2), (8, 3)])
def test_tree_converges_in_one_round(count, fanout):
    group = make_group(count, "tree", rounds=1, tree_fanout=fanout)
    want = fixed_point(group)
    for shard in group.shards:
        assert shard.merged_view().as_list(group.nprocs) == want
    # reduce + broadcast: exactly 2 (count - 1) messages per round
    assert group.sync_messages == group.sync_rounds * 2 * (count - 1)


@pytest.mark.parametrize("count,fanout", [(4, 1), (8, 2), (16, 3)])
def test_gossip_message_budget_and_staleness_bound(count, fanout):
    group = make_group(count, "gossip", gossip_fanout=fanout)
    assert group.sync_messages == group.sync_rounds * count * fanout
    bound = -(-(count - 1) // fanout)
    assert group.staleness_bound_rounds == bound


def test_staleness_bound_surfaced_in_probes():
    result = run_ring(
        "vcausal", nprocs=4, iterations=5,
        config=dcfg(4, "gossip", el_gossip_fanout=1),
    )
    assert result.probes.el_sync_staleness_bound_rounds == 3
    result = run_ring("vcausal", nprocs=4, iterations=5, config=dcfg(4, "tree"))
    assert result.probes.el_sync_staleness_bound_rounds == 1
    result = run_ring("vcausal", nprocs=4, iterations=5)
    assert result.probes.el_sync_staleness_bound_rounds == 0  # single EL


@pytest.mark.parametrize(
    "strategy,kw",
    [
        ("tree", {"el_tree_fanout": 2}),
        ("tree", {"el_tree_fanout": 3}),
        ("gossip", {"el_gossip_fanout": 1}),
        ("gossip", {"el_gossip_fanout": 2}),
    ],
)
def test_topologies_end_to_end_results_match_reference(strategy, kw):
    """Application results are invariant under the sync topology."""
    reference = run_ring("vcausal", nprocs=4, iterations=20)
    result = run_ring(
        "vcausal", nprocs=4, iterations=20, config=dcfg(4, strategy, **kw)
    )
    assert result.finished
    assert result.results == reference.results
    group = result.cluster.event_logger
    assert group.sync_rounds > 0
    assert group.sync_messages > 0


def test_tree_uses_fewer_messages_than_multicast():
    runs = {}
    for strategy in ("multicast", "tree"):
        result = run_ring(
            "vcausal", nprocs=8, iterations=20, config=dcfg(8, strategy)
        )
        runs[strategy] = result.cluster.event_logger
    per_round_mc = runs["multicast"].sync_messages / runs["multicast"].sync_rounds
    per_round_tree = runs["tree"].sync_messages / runs["tree"].sync_rounds
    assert per_round_mc == 8 * 7
    assert per_round_tree == 2 * 7
    assert per_round_tree < per_round_mc


def test_invalid_fanouts_rejected():
    with pytest.raises(ValueError):
        make_group(4, "tree", tree_fanout=0)
    with pytest.raises(ValueError):
        make_group(4, "gossip", gossip_fanout=0)
    with pytest.raises(ValueError):
        ClusterConfig().with_overrides(el_tree_fanout=0)
    with pytest.raises(ValueError):
        ClusterConfig().with_overrides(el_gossip_fanout=0)


# --------------------------------------------------------------------- #
# multicast/broadcast compatibility regression

def test_multicast_checksums_unchanged():
    """Reference values captured on the pre-topology implementation
    (PR 2, commit f959ebf): the multicast sync path must stay
    bit-identical — it is what every recorded BENCH checksum ran on."""
    r = run_ring("vcausal", nprocs=4, iterations=20, config=dcfg(2))
    g = r.cluster.event_logger
    assert repr(r.sim_time) == "0.3280317012800131"
    assert r.probes.total_piggyback_bytes == 3300
    assert (g.sync_rounds, g.sync_bytes) == (164, 10496)
    assert g.sync_messages == g.sync_rounds * 2 * 1

    r = run_ring("vcausal", nprocs=4, iterations=20, config=dcfg(4))
    g = r.cluster.event_logger
    assert repr(r.sim_time) == "0.32790708666629925"
    assert r.probes.total_piggyback_bytes == 3620
    assert (g.sync_rounds, g.sync_bytes) == (163, 62592)
    assert g.sync_messages == g.sync_rounds * 4 * 3


def test_broadcast_checksums_unchanged():
    r = run_ring("vcausal", nprocs=4, iterations=20, config=dcfg(2, "broadcast"))
    g = r.cluster.event_logger
    assert repr(r.sim_time) == "0.32807737554242145"
    assert r.probes.total_piggyback_bytes == 3280
    assert (g.sync_rounds, g.sync_bytes) == (164, 52480)
    # shard-to-shard messages exclude the per-node pushes
    assert g.sync_messages == g.sync_rounds * 2 * 1
    assert g.node_push_messages == g.sync_rounds * 2 * 4
