"""NetPIPE perturbation mode and raw-TCP reference tests."""

import pytest

from repro.workloads.netpipe import (
    DEFAULT_SIZES,
    measure_bandwidth,
    pingpong_app,
    raw_tcp_bandwidth,
)
from repro import Cluster


def test_default_sizes_cover_paper_sweep():
    assert DEFAULT_SIZES[0] == 1
    assert DEFAULT_SIZES[-1] == 8 << 20
    assert len(DEFAULT_SIZES) >= 20


def test_perturbations_average_neighbouring_sizes():
    plain = measure_bandwidth("vdummy", sizes=(4096,), reps=3)
    perturbed = measure_bandwidth("vdummy", sizes=(4096,), reps=3, perturbations=64)
    # close, but not the same measurement
    assert perturbed[4096] == pytest.approx(plain[4096], rel=0.05)
    assert perturbed[4096] != plain[4096]


def test_perturbation_near_one_byte_stays_positive():
    out = measure_bandwidth("vdummy", sizes=(1,), reps=2, perturbations=3)
    assert out[1] > 0


def test_raw_tcp_monotone_and_bounded():
    bw = raw_tcp_bandwidth((64, 1024, 65536, 1 << 20))
    values = list(bw.values())
    assert values == sorted(values)
    assert values[-1] < 93.5  # goodput ceiling of 100 Mbit/s Ethernet


def test_pingpong_app_warmup_excluded():
    """Measured latency must not include the first (cold) exchanges."""
    app = pingpong_app(1, reps=50, warmup=5)
    result = Cluster(nprocs=2, app_factory=app, stack="vdummy").run()
    lat_warm = result.results[0]
    app2 = pingpong_app(1, reps=50, warmup=0)
    result2 = Cluster(nprocs=2, app_factory=app2, stack="vdummy").run()
    lat_cold = result2.results[0]
    # steady-state latency is stable regardless of warmup in our
    # deterministic model
    assert lat_warm == pytest.approx(lat_cold, rel=0.02)


def test_pingpong_rank1_returns_none():
    app = pingpong_app(64, reps=4)
    result = Cluster(nprocs=2, app_factory=app, stack="vdummy").run()
    assert result.results[1] is None
    assert result.results[0] > 0
