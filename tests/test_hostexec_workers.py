"""Conformance and robustness suite for the multiprocess worker backend.

``partition_workers = W`` forks the wired cluster into W shared-nothing
worker processes (``repro/hostexec``), advanced through the same
conservative lookahead windows as the in-process partitioned facade,
with cross-worker deliveries exchanged at window barriers.  The claim is
the same as ``tests/test_partition_conformance.py`` one level up: **bit
identity** — results, sim_time, event counts and every probe counter
match ``partition_workers=0`` exactly.

Beyond identity, this file pins down the two failure contracts:

* knobs outside the worker envelope (fault plans, checkpoint waves,
  multi-shard EL sync, RPC retry timers, until-slicing, half-duplex
  NICs) are rejected loudly at ``run()`` instead of risking a silently
  diverging run;
* a worker killed mid-run (signal, OOM) fails the run with an error
  naming the worker and its partitions instead of hanging the barrier —
  and the ``--jobs`` benchmark pool does the same per scenario.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro import Cluster
from repro.hostexec.sim import WorkerSimulator
from repro.runtime.config import ClusterConfig
from repro.runtime.failure import OneShotFaults
from repro.simulator.engine import SimulationError

from test_partition_conformance import (
    LOGGING_STACKS,
    run_image,
    schedule_app,
)

OPS = [("ring", 16_384), ("allreduce", 64), ("bcast", 1, 512), ("compute", 0.001)]


# --------------------------------------------------------------------- #
# bit identity


@pytest.mark.parametrize("stack", LOGGING_STACKS)
def test_worker_backend_bit_identical(stack):
    """W ∈ {1, 2, K} all reproduce the in-process image exactly."""
    ref = run_image(stack, OPS, 2, 5, partition_ranks=4)
    for workers in (1, 2, 4):
        img = run_image(
            stack, OPS, 2, 5, partition_ranks=4, partition_workers=workers
        )
        assert img == ref, (stack, workers)


def test_worker_backend_matches_single_engine():
    """The full chain: single engine == partitioned == multiprocess."""
    single = run_image("vcausal", OPS, 2, 5, partition_ranks=0)
    assert single["finished"]
    workers = run_image(
        "vcausal", OPS, 2, 5, partition_ranks=4, partition_workers=2
    )
    assert workers == single


def test_worker_backend_composes_with_engine_knobs():
    for knobs in (
        {"engine_coalesce": False},
        {"delivery_fastpath": False},
        {"pb_cost_model": "sparse"},
    ):
        ref = run_image("vcausal", OPS, 2, 4, partition_ranks=4, **knobs)
        img = run_image(
            "vcausal", OPS, 2, 4, partition_ranks=4, partition_workers=4, **knobs
        )
        assert img == ref, knobs


def test_worker_simulator_is_installed():
    """partition_workers>0 swaps in the worker-aware facade (inert until
    activated inside a forked child) and clamps W to the partition count."""
    cfg = ClusterConfig(partition_ranks=4, partition_workers=9)
    cluster = Cluster(
        nprocs=4, app_factory=schedule_app(OPS, 1), stack="vcausal", config=cfg
    )
    assert isinstance(cluster.sim, WorkerSimulator)
    assert cluster.partition_workers == 4
    cfg0 = ClusterConfig(partition_ranks=4)
    cluster0 = Cluster(
        nprocs=4, app_factory=schedule_app(OPS, 1), stack="vcausal", config=cfg0
    )
    assert not isinstance(cluster0.sim, WorkerSimulator)


# --------------------------------------------------------------------- #
# envelope rejection


def _cluster(stack="vcausal", nprocs=4, workers=2, **kw):
    cfg_kw = dict(partition_ranks=4, partition_workers=workers)
    cfg_kw.update(kw.pop("config_kw", {}))
    return Cluster(
        nprocs=nprocs,
        app_factory=schedule_app(OPS, 1),
        stack=stack,
        config=ClusterConfig(**cfg_kw),
        **kw,
    )


def test_envelope_rejects_until():
    with pytest.raises(SimulationError, match="until-slicing"):
        _cluster().run(until=0.5)


def test_envelope_rejects_fault_plans():
    with pytest.raises(SimulationError, match="fault plans"):
        _cluster(fault_plan=OneShotFaults([(0.001, 0)])).run()


def test_envelope_rejects_checkpoint_waves():
    with pytest.raises(SimulationError, match="checkpoint policy"):
        _cluster(
            checkpoint_policy="round-robin", checkpoint_interval_s=0.02
        ).run()


def test_envelope_rejects_multi_shard_el():
    with pytest.raises(SimulationError, match="el_count > 1"):
        _cluster(config_kw={"el_count": 2}).run()


def test_envelope_rejects_rpc_retry():
    with pytest.raises(SimulationError, match="rpc_timeout_s"):
        _cluster(config_kw={"rpc_timeout_s": 0.01}).run()


def test_envelope_rejects_half_duplex():
    with pytest.raises(SimulationError, match="half-duplex"):
        _cluster(stack="p4").run()


# --------------------------------------------------------------------- #
# worker-death robustness


def _suicide_app(victim: int, after_iterations: int):
    """Ring app whose ``victim`` rank SIGKILLs its own worker process
    mid-window — the simulated analogue of an OOM kill."""

    def app(ctx):
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        for i in range(4):
            yield from ctx.sendrecv(right, 1024, left, tag=1, payload=ctx.rank)
            if i == after_iterations and ctx.rank == victim:
                os.kill(os.getpid(), signal.SIGKILL)
        return ctx.rank

    return app


def test_dead_worker_fails_the_run_with_a_named_error():
    """Rank 3 lives in partition 3, owned by worker 1 of 2: killing it
    must fail the run naming that worker — not hang the barrier."""
    cfg = ClusterConfig(partition_ranks=4, partition_workers=2)
    cluster = Cluster(
        nprocs=4, app_factory=_suicide_app(3, 1), stack="vcausal", config=cfg
    )
    with pytest.raises(SimulationError, match=r"worker 1 \(partitions 2\.\.3\)"):
        cluster.run()


def test_worker_exception_carries_the_traceback():
    """A callback raising inside a worker surfaces the worker's own
    traceback in the parent, not a bare pipe error."""

    def bad_app(ctx):
        yield from ctx.compute_seconds(0.001)
        if ctx.rank == 2:
            raise ZeroDivisionError("boom in worker")
        return ctx.rank

    cfg = ClusterConfig(partition_ranks=4, partition_workers=2)
    cluster = Cluster(
        nprocs=4, app_factory=lambda ctx: bad_app(ctx), stack="vcausal", config=cfg
    )
    with pytest.raises(SimulationError, match="ZeroDivisionError"):
        cluster.run()


def test_bench_pool_names_lost_scenarios(monkeypatch):
    """A benchmark worker dying mid-scenario fails the --jobs sweep with
    an error naming the lost scenarios (BrokenProcessPool breaks every
    outstanding future; the pool maps them back to names)."""
    from benchmarks.perf import pool, run_bench

    def fake_scenarios(quick):
        def ok():
            return 1, {"events": 1}

        def die():
            os.kill(os.getpid(), signal.SIGKILL)

        return {"pool_ok": ok, "pool_suicide": die}

    monkeypatch.setattr(run_bench, "scenarios", fake_scenarios)
    with pytest.raises(RuntimeError, match="pool_suicide"):
        pool.run_parallel(quick=True, repeats=1, jobs=1, verbose=False)
