"""Dirty-creator worklist equivalence (PR 4 tentpole).

The worklist build loop (``ClusterConfig.pb_build_worklist``) is a host
wall-clock optimisation: it must never change *what* is simulated.  These
tests drive every causal protocol through random send / receive / prune /
checkpoint-restore interleavings twice — worklist and full-scan reference
— and assert byte-identical piggybacks (events, order, run table, bytes)
and identical charged costs at every step, plus the two regressions the
refactor is most likely to break:

* a checkpoint restore must repopulate the dirty sets, or the first
  post-restore piggyback on a previously-synced channel ships stale
  (under-full) causality and orphans the receiver;
* the LogOn accept path must consume whole runs on the contiguous-run
  fast path (probe-counted), not merge per determinant.
"""

from __future__ import annotations

import copy

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster, ClusterConfig, OneShotFaults, PeriodicFaults
from repro.core.events import Determinant
from repro.core.logon import LogOnProtocol
from repro.core.manetho import ManethoProtocol
from repro.core.vcausal import VcausalProtocol
from repro.metrics.probes import ProcessProbes
from tests.conftest import ring_app, run_ring

CFG_WORKLIST = ClusterConfig().with_overrides(pb_build_worklist=True)
CFG_FULLSCAN = ClusterConfig().with_overrides(pb_build_worklist=False)
PROTOCOLS = [VcausalProtocol, ManethoProtocol, LogOnProtocol]


class TwinWorlds:
    """Drive one protocol class twice — worklist and full-scan reference —
    through an identical schedule, asserting piggyback equivalence at every
    send."""

    def __init__(self, cls, n: int):
        self.cls = cls
        self.n = n
        self.wl = [cls(r, n, CFG_WORKLIST, ProcessProbes(rank=r)) for r in range(n)]
        self.fs = [cls(r, n, CFG_FULLSCAN, ProcessProbes(rank=r)) for r in range(n)]
        self.clocks = [0] * n
        self.ssn: dict[tuple[int, int], int] = {}
        self.stable = [0] * n

    def send(self, src: int, dst: int):
        pb_wl = self.wl[src].build_piggyback(dst)
        pb_fs = self.fs[src].build_piggyback(dst)
        # byte-identical: same events in the same order, same run table,
        # same wire bytes, same charged simulated cost
        assert pb_wl.events == pb_fs.events
        assert pb_wl.runs == pb_fs.runs
        assert pb_wl.nbytes == pb_fs.nbytes
        assert pb_wl.build_cost_s == pb_fs.build_cost_s
        ssn = self.ssn.get((src, dst), 0) + 1
        self.ssn[(src, dst)] = ssn
        dep = self.clocks[src]
        cost_wl = self.wl[dst].accept_piggyback(src, pb_wl, dep)
        cost_fs = self.fs[dst].accept_piggyback(src, pb_fs, dep)
        assert cost_wl == cost_fs
        self.clocks[dst] += 1
        det = Determinant(dst, self.clocks[dst], src, ssn, dep)
        self.wl[dst].on_local_event(det)
        self.fs[dst].on_local_event(det)
        assert self.wl[dst].events_held() == self.fs[dst].events_held()
        return pb_wl

    def ack(self, advance_to: dict[int, int], recipients: list[int]):
        for c, k in advance_to.items():
            self.stable[c] = max(self.stable[c], min(k, self.clocks[c]))
        for r in recipients:
            self.wl[r].on_el_ack(list(self.stable))
            self.fs[r].on_el_ack(list(self.stable))

    def restore(self, rank: int, in_place: bool = False):
        """Checkpoint-restore ``rank`` mid-stream in both worlds (the
        worklist side must repopulate its dirty sets from the image).

        ``in_place`` restores into the *used* instance instead of a fresh
        one — the case where stale per-channel worklist cursors would
        out-tick the repopulated growth log and mark everything clean.
        """
        for protos, cfg in ((self.wl, CFG_WORKLIST), (self.fs, CFG_FULLSCAN)):
            state = copy.deepcopy(protos[rank].export_state())
            if in_place:
                protos[rank].restore_state(state)
                continue
            fresh = self.cls(rank, self.n, cfg, ProcessProbes(rank=rank))
            fresh.restore_state(state)
            protos[rank] = fresh


@pytest.mark.parametrize("cls", PROTOCOLS)
@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_worklist_piggybacks_byte_identical_to_full_scan(cls, data):
    """Random send/receive/prune/restore interleavings: the worklist and
    full-scan paths must stay bit-for-bit equivalent throughout."""
    n = data.draw(st.integers(2, 4), label="nprocs")
    world = TwinWorlds(cls, n)
    steps = data.draw(st.integers(1, 50), label="steps")
    for _ in range(steps):
        kind = data.draw(
            st.sampled_from(["send", "send", "send", "send", "ack", "restore"])
        )
        if kind == "send":
            src = data.draw(st.integers(0, n - 1))
            dst = data.draw(st.integers(0, n - 1).filter(lambda r: r != src))
            world.send(src, dst)
        elif kind == "ack":
            advance = {
                c: data.draw(st.integers(0, max(world.clocks[c], 0)))
                for c in range(n)
            }
            recips = data.draw(
                st.lists(st.integers(0, n - 1), unique=True, max_size=n)
            )
            world.ack(advance, recips)
        else:
            world.restore(
                data.draw(st.integers(0, n - 1), label="victim"),
                in_place=data.draw(st.booleans(), label="in_place"),
            )


@pytest.mark.parametrize("in_place", [False, True])
@pytest.mark.parametrize("cls", PROTOCOLS)
def test_restore_repopulates_dirty_sets(cls, in_place):
    """The stale-piggyback regression: after traffic has marked a channel
    clean, a checkpoint-restore must re-dirty every restored sequence —
    otherwise the next build on that channel ships an under-full piggyback
    (here: empty) while the reference path ships the held causality.  The
    in-place variant additionally requires the per-channel cursors to
    reset: the repopulated growth log restarts its ticks at 1, so a
    surviving cursor would out-tick every creator and mark them clean."""
    n = 3
    world = TwinWorlds(cls, n)
    for _ in range(4):
        world.send(0, 1)
        world.send(1, 0)
        world.send(1, 2)
    # channel 0->1 is fully synced at this point; restore rank 0 from its
    # own image and immediately build for rank 2 (a fresh channel: every
    # unstable event must ship) and for rank 1 (the synced channel)
    world.restore(0, in_place=in_place)
    pb_fresh = world.send(0, 2)
    assert pb_fresh.n_events > 0  # restored state must actually ship
    world.send(2, 0)
    world.send(0, 1)  # the synced channel stays equivalent post-restore


@pytest.mark.parametrize("cls", PROTOCOLS)
def test_worklist_scans_fewer_sequences(cls):
    """The point of the refactor: on a quiet channel the worklist build
    touches only grown sequences, while the reference rescans every held
    one; both ship the same (empty) piggyback."""
    n = 4
    world = TwinWorlds(cls, n)
    for _ in range(6):
        world.send(1, 0)
        world.send(2, 0)
        world.send(3, 0)
    # rank 0 now holds sequences for every creator; repeated sends on the
    # same quiet channel scan nothing new after the first
    for _ in range(5):
        world.send(0, 1)
    wl = world.wl[0].probes.pb_build_seqs_scanned
    fs = world.fs[0].probes.pb_build_seqs_scanned
    assert wl < fs


def test_logon_accept_consumes_runs_not_determinants():
    """Acceptance criterion: on the contiguous-run fast path the LogOn
    accept loop merges whole runs (pb_accept_runs) with zero
    per-determinant fallback merges (pb_accept_fallback_dets)."""
    n = 3
    world = TwinWorlds(LogOnProtocol, n)
    for _ in range(8):
        world.send(0, 1)
        world.send(1, 2)
        world.send(2, 0)
    for proto in world.wl:
        if proto.probes.pb_recv_ops:
            assert proto.probes.pb_accept_runs > 0
        assert proto.probes.pb_accept_fallback_dets == 0
    # and the run table itself must ride on every LogOn piggyback
    pb = world.send(0, 2)
    from repro.core.piggyback import creator_runs, flat_bytes

    assert list(pb.runs) == creator_runs(pb.events)
    assert pb.nbytes == flat_bytes(pb.events, CFG_WORKLIST)  # wire unchanged


# --------------------------------------------------------------------- #
# full-cluster regressions (checkpoint + kill/replay through the daemon)

def _ring_results(stack: str, config: ClusterConfig, fault_plan=None):
    result = run_ring(
        stack,
        nprocs=4,
        iterations=25,
        config=config,
        checkpoint_policy="round-robin",
        checkpoint_interval_s=0.03,
        fault_plan=fault_plan,
    )
    assert result.finished
    return result


@pytest.mark.parametrize("stack", ["vcausal", "vcausal-noel", "manetho-noel", "logon-noel"])
def test_kill_replay_identical_across_build_modes(stack):
    """Kill/replay at a 10 ms fault period with checkpoints: the worklist
    run must match the full-scan reference (results, simulated time,
    piggyback totals) and the fault-free baseline results.  A restore that
    forgot to re-dirty the worklist would diverge here: the restarted rank
    would piggyback stale causality into the replay traffic."""
    baseline = _ring_results(stack, CFG_WORKLIST).results
    # 10 ms period, starting after the first checkpoint waves have
    # committed so at least one recovery restores a real snapshot (the
    # restore_state path) rather than restarting from scratch
    plan = PeriodicFaults(per_minute=6000.0, start_s=0.15, max_faults=3)
    runs = {}
    for name, cfg in (("worklist", CFG_WORKLIST), ("fullscan", CFG_FULLSCAN)):
        r = _ring_results(stack, cfg, fault_plan=plan)
        assert r.probes.total("restarts") >= 1
        assert r.probes.checkpoints_stored > 0
        runs[name] = r
    wl, fs = runs["worklist"], runs["fullscan"]
    assert wl.results == baseline
    assert wl.results == fs.results
    assert wl.sim_time == fs.sim_time
    for probe in (
        "piggyback_events_sent",
        "piggyback_bytes_sent",
        "app_messages_sent",
        "replayed_receptions",
    ):
        assert wl.probes.total(probe) == fs.probes.total(probe), probe
