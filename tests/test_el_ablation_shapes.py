"""Shape tests for the two ablations (distributed EL, checkpoint policies)."""

import pytest

from repro import Cluster, ClusterConfig
from repro.experiments import ablation_distributed_el
from repro.workloads.nas import make_app


@pytest.fixture(scope="module")
def lu_cells():
    """LU/16 at 1 and 4 EL shards (the ablation's extremes)."""
    out = {}
    for count in (1, 4):
        out[count] = ablation_distributed_el.run_lu(count, "multicast", iterations=2)
    return out


def test_single_el_saturates_on_lu(lu_cells):
    single = lu_cells[1]
    assert single.probes.el_peak_queue > 20  # deep service queue


def test_sharding_removes_saturation(lu_cells):
    quad = lu_cells[4]
    assert quad.probes.el_peak_queue < lu_cells[1].probes.el_peak_queue / 4


def test_sharding_cuts_residual_piggyback(lu_cells):
    assert (
        lu_cells[4].probes.piggyback_fraction
        < 0.5 * lu_cells[1].probes.piggyback_fraction
    )


def test_sharding_recovers_performance(lu_cells):
    assert lu_cells[4].mflops > lu_cells[1].mflops


def test_broadcast_strategy_costs_more_sync_traffic():
    multi = ablation_distributed_el.run_lu(2, "multicast", iterations=1)
    broad = ablation_distributed_el.run_lu(2, "broadcast", iterations=1)
    assert (
        broad.cluster.event_logger.sync_bytes
        > multi.cluster.event_logger.sync_bytes
    )


def test_el_sync_interval_configurable():
    cfg = ClusterConfig().with_overrides(
        el_count=2, el_sync_interval_s=0.5e-3
    )
    app, _ = make_app("cg", "S", 4, iterations=2)
    fast_sync = Cluster(nprocs=4, app_factory=app, stack="vcausal", config=cfg).run()
    cfg2 = ClusterConfig().with_overrides(el_count=2, el_sync_interval_s=50e-3)
    app2, _ = make_app("cg", "S", 4, iterations=2)
    slow_sync = Cluster(nprocs=4, app_factory=app2, stack="vcausal", config=cfg2).run()
    assert (
        fast_sync.cluster.event_logger.sync_rounds
        > slow_sync.cluster.event_logger.sync_rounds
    )
