"""Tests for the optional timeline recorder."""

from repro import Cluster, OneShotFaults
from repro.metrics.trace import Timeline

from tests.conftest import ring_app


def run_traced(**kw):
    cluster = Cluster(nprocs=2, app_factory=ring_app(8), stack="vcausal", **kw)
    timeline = Timeline.attach(cluster)
    result = cluster.run(max_events=20_000_000)
    assert result.finished
    return timeline, result


def test_records_sends_and_deliveries():
    timeline, result = run_traced()
    sends = timeline.of_kind("send")
    delivers = timeline.of_kind("deliver")
    assert len(sends) == result.probes.total("app_messages_sent")
    assert len(delivers) > 0
    # times are monotone
    times = [e.time_s for e in timeline]
    assert times == sorted(times)


def test_records_fault_and_restart():
    timeline, result = run_traced(fault_plan=OneShotFaults([(0.05, 1)]))
    faults = timeline.of_kind("fault")
    restarts = timeline.of_kind("restart")
    assert len(faults) == 1 and faults[0].rank == 1
    assert len(restarts) == 1 and restarts[0].rank == 1
    assert restarts[0].time_s > faults[0].time_s


def test_records_checkpoints():
    timeline, _ = run_traced(
        checkpoint_policy="round-robin", checkpoint_interval_s=0.05
    )
    assert len(timeline.of_kind("checkpoint")) >= 1


def test_filters_and_summary():
    timeline, _ = run_traced()
    assert all(e.rank == 0 for e in timeline.for_rank(0))
    window = timeline.between(0.0, 0.001)
    assert all(0.0 <= e.time_s <= 0.001 for e in window)
    summary = timeline.summary()
    assert summary["send"] == len(timeline.of_kind("send"))


def test_entry_format():
    timeline, _ = run_traced()
    text = str(timeline.of_kind("send")[0])
    assert "rank" in text and "send" in text


def test_tracing_does_not_change_results():
    plain = Cluster(nprocs=2, app_factory=ring_app(8), stack="vcausal").run()
    traced_cluster = Cluster(nprocs=2, app_factory=ring_app(8), stack="vcausal")
    Timeline.attach(traced_cluster)
    traced = traced_cluster.run()
    assert traced.results == plain.results
    assert traced.sim_time == plain.sim_time
