"""MpiContext state management: export/restore, tag counters, queues."""

import pytest

from repro import Cluster
from repro.mpi.api import MpiContext

from tests.conftest import ring_app


def test_restore_swaps_state_and_queue():
    c = Cluster(nprocs=2, app_factory=ring_app(2))
    ctx = c.contexts[0]
    ctx.restore({"x": 1, "_coll_seq": 5}, None)
    assert ctx.state == {"x": 1, "_coll_seq": 5}
    assert ctx._coll_seq == 5
    ctx.restore(None, None)
    assert ctx.state == {}
    assert ctx._coll_seq == 0
    c.run()


def test_export_pending_returns_copy():
    c = Cluster(nprocs=2, app_factory=ring_app(2))
    c.run()
    ctx = c.contexts[0]
    pending = ctx.export_pending()
    pending.append("sentinel")
    assert "sentinel" not in ctx._queue


def test_note_collective_seq_persists():
    c = Cluster(nprocs=2, app_factory=ring_app(2))
    c.run()
    ctx = c.contexts[0]
    ctx._coll_seq = 42
    ctx.note_collective_seq()
    assert ctx.state["_coll_seq"] == 42


def test_collective_tags_unique_and_spaced():
    c = Cluster(nprocs=2, app_factory=ring_app(1))
    ctx = c.contexts[0]
    t1 = ctx.next_collective_tag()
    t2 = ctx.next_collective_tag()
    assert t2 - t1 == 64          # room for 64 phases per collective
    assert t1 > (1 << 20)         # outside the application tag space
    c.run()


def test_state_nbytes_declared_by_app():
    def app(ctx):
        ctx.state_nbytes = 7 * 1024 * 1024
        yield from ctx.compute_seconds(0.001)
        return ctx.state_nbytes

    c = Cluster(nprocs=1, app_factory=app)
    result = c.run()
    assert result.results[0] == 7 * 1024 * 1024


def test_checkpoint_uses_declared_state_size():
    def app(ctx):
        s = ctx.state
        s.setdefault("it", 0)
        ctx.state_nbytes = 3 * 1024 * 1024
        while s["it"] < 10:
            yield from ctx.checkpoint_poll()
            yield from ctx.compute_seconds(0.01)
            s["it"] += 1
        return 0

    c = Cluster(
        nprocs=1, app_factory=app, stack="vcausal",
        checkpoint_policy="round-robin", checkpoint_interval_s=0.03,
    )
    c.run()
    image = c.checkpoint_server.images[0]
    assert image.nbytes >= 3 * 1024 * 1024


def test_matching_prefers_earliest_queued():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 8, tag=1, payload="first")
            yield from ctx.send(1, 8, tag=1, payload="second")
            return None
        yield from ctx.compute_seconds(0.01)   # both queued by now
        a = yield from ctx.recv(0, tag=1)
        b = yield from ctx.recv(0, tag=1)
        return (a.payload, b.payload)

    result = Cluster(nprocs=2, app_factory=app).run()
    assert result.results[1] == ("first", "second")


def test_two_pending_recvs_resolve_in_post_order():
    def app(ctx):
        if ctx.rank == 0:
            req_a = ctx.irecv(1, tag=1)
            req_b = ctx.irecv(1, tag=1)
            a = yield from req_a.wait()
            b = yield from req_b.wait()
            return (a.payload, b.payload)
        yield from ctx.send(0, 8, tag=1, payload="x")
        yield from ctx.send(0, 8, tag=1, payload="y")
        return None

    result = Cluster(nprocs=2, app_factory=app).run()
    assert result.results[0] == ("x", "y")
