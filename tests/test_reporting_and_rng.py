"""Tests for report formatting and seeded RNG streams."""

import numpy as np

from repro.metrics.reporting import format_series, format_table
from repro.simulator.rng import SeedSequenceStream


def test_format_table_alignment_and_content():
    out = format_table(
        ["name", "value"],
        [["alpha", 1.2345], ["b", 12345.6]],
        title="My table",
    )
    lines = out.splitlines()
    assert lines[0] == "My table"
    assert "name" in lines[1] and "value" in lines[1]
    assert "alpha" in out
    assert "12,346" in out  # thousands formatting


def test_format_table_without_title():
    out = format_table(["a"], [["x"]])
    assert out.splitlines()[0].startswith("a")


def test_format_numbers_ranges():
    out = format_table(["v"], [[0], [0.00123], [3.14159], [42.42], [1e6]])
    assert "0.00123" in out
    assert "3.14" in out
    assert "42.4" in out
    assert "1,000,000" in out


def test_format_series_pivots_by_x():
    out = format_series(
        "size", [1, 2], {"a": [10, 20], "b": [30, 40]}, title="S"
    )
    lines = out.splitlines()
    assert "size" in lines[1]
    assert "a" in lines[1] and "b" in lines[1]
    assert "10" in lines[3] and "30" in lines[3]


def test_rng_streams_deterministic_per_name():
    s = SeedSequenceStream(42)
    a1 = s.generator("alpha").random(5)
    a2 = SeedSequenceStream(42).generator("alpha").random(5)
    assert np.allclose(a1, a2)


def test_rng_streams_independent_across_names():
    s = SeedSequenceStream(42)
    a = s.generator("alpha").random(5)
    b = s.generator("beta").random(5)
    assert not np.allclose(a, b)


def test_rng_streams_change_with_seed():
    a = SeedSequenceStream(1).generator("x").random(5)
    b = SeedSequenceStream(2).generator("x").random(5)
    assert not np.allclose(a, b)
