"""Differential property suite for the fused delivery fast paths.

The `delivery_fastpath` knob compiles the per-message send/receive
pipelines into flat closures at cluster wiring time
(``runtime/fastpath.py``).  The claim is *bit identity*: the fused
closures issue exactly the same engine calls with exactly the same
timestamps as the layered reference stack, so every observable of a run
— application results, simulated completion time, event count, every
probe counter, piggyback bytes — is identical with the knob on or off.

This suite is that claim's correctness argument (recorded BENCH
checksums only witness the scenarios that were run): random schedules of
sends, receives, collectives, checkpoints and faults are executed twice,
once per knob setting, across all five protocols, and the full probe
images are compared field for field.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.runtime.config import ClusterConfig
from repro.runtime.failure import OneShotFaults

#: the five fault-tolerance protocols (stack spelling)
PROTOCOL_STACKS = ("vcausal", "manetho", "logon", "pessimistic", "coordinated")
#: message-logging subset (replay-based recovery; cheap mid-run faults)
LOGGING_STACKS = ("vcausal", "manetho", "logon", "pessimistic")


def schedule_app(ops, iterations):
    """SPMD application executing one random op schedule per iteration.

    Durable state only (restartable style) so checkpoint/recovery
    schedules replay it exactly; the returned value folds every payload
    the rank consumed, making delivery-order divergence visible in
    ``results``.
    """

    def app(ctx):
        s = ctx.state
        s.setdefault("it", 0)
        s.setdefault("acc", ctx.rank + 1)
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        while s["it"] < iterations:
            yield from ctx.checkpoint_poll()
            for op in ops:
                kind = op[0]
                if kind == "ring":
                    msg = yield from ctx.sendrecv(
                        right, op[1], left, tag=3, payload=(ctx.rank, s["acc"])
                    )
                    s["acc"] = (s["acc"] * 31 + msg.payload[1] + 7) % 1_000_003
                elif kind == "allreduce":
                    total = yield from ctx.allreduce(op[1], s["acc"] % 9973)
                    s["acc"] = (s["acc"] * 17 + total) % 1_000_003
                elif kind == "bcast":
                    root = op[1] % ctx.size
                    v = yield from ctx.bcast(root, op[2], payload=s["acc"] % 131)
                    if v is not None:
                        s["acc"] = (s["acc"] * 13 + v) % 1_000_003
                elif kind == "compute":
                    yield from ctx.compute_seconds(op[1])
            s["it"] += 1
        return s["acc"]

    return app


def run_image(stack, ops, iterations, nprocs, *, fastpath, fault_at=None,
              checkpoint_policy="none", checkpoint_interval_s=None,
              event_logger=None):
    """One run's complete observable image as plain data."""
    config = ClusterConfig(delivery_fastpath=fastpath)
    kw = {}
    if fault_at is not None:
        kw["fault_plan"] = OneShotFaults(fault_at)
    result = Cluster(
        nprocs=nprocs,
        app_factory=schedule_app(ops, iterations),
        stack=stack,
        config=config,
        checkpoint_policy=checkpoint_policy,
        checkpoint_interval_s=checkpoint_interval_s,
        **kw,
    ).run(max_events=30_000_000)
    probes = dataclasses.asdict(result.probes)
    return {
        "finished": result.finished,
        "results": result.results,
        "sim_time": result.sim_time,
        "events_executed": result.events_executed,
        "probes": probes,
    }


def assert_identical(stack, ops, iterations, nprocs, **kw):
    fast = run_image(stack, ops, iterations, nprocs, fastpath=True, **kw)
    ref = run_image(stack, ops, iterations, nprocs, fastpath=False, **kw)
    assert fast["finished"] and ref["finished"]
    assert fast["results"] == ref["results"]
    assert fast["sim_time"] == ref["sim_time"]
    assert fast["events_executed"] == ref["events_executed"]
    if fast["probes"] != ref["probes"]:
        diffs = {
            k: (fast["probes"][k], ref["probes"][k])
            for k in fast["probes"]
            if fast["probes"][k] != ref["probes"][k]
        }
        raise AssertionError(f"{stack}: probe image diverged: {diffs}")


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("ring"), st.integers(1, 200_000)),
        st.tuples(st.just("allreduce"), st.integers(8, 4096)),
        st.tuples(st.just("bcast"), st.integers(0, 7), st.integers(1, 65_536)),
        st.tuples(st.just("compute"), st.floats(0.0, 0.01, allow_nan=False)),
    ),
    min_size=1,
    max_size=5,
)


@settings(max_examples=6, deadline=None)
@given(ops=OPS, data=st.data())
def test_differential_random_schedules(ops, data):
    """Random op schedules: fused and layered runs are bit-identical."""
    stack = data.draw(st.sampled_from(PROTOCOL_STACKS))
    nprocs = data.draw(st.integers(2, 5))
    iterations = data.draw(st.integers(1, 3))
    assert_identical(stack, ops, iterations, nprocs)


@settings(max_examples=4, deadline=None)
@given(ops=OPS, data=st.data())
def test_differential_random_faults(ops, data):
    """A mid-run crash + recovery stays bit-identical across the knob."""
    stack = data.draw(st.sampled_from(LOGGING_STACKS))
    nprocs = data.draw(st.integers(3, 5))
    victim = data.draw(st.integers(0, nprocs - 1))
    frac = data.draw(st.floats(0.15, 0.85))
    base = run_image(stack, ops, 3, nprocs, fastpath=True)
    fault_at = [(base["sim_time"] * frac, victim)]
    assert_identical(stack, ops, 3, nprocs, fault_at=fault_at)


@settings(max_examples=4, deadline=None)
@given(ops=OPS, data=st.data())
def test_differential_random_checkpoints(ops, data):
    """Checkpoint waves (and restart-from-checkpoint) across the knob."""
    stack = data.draw(st.sampled_from(PROTOCOL_STACKS))
    policy = (
        "coordinated"
        if stack == "coordinated"
        else data.draw(st.sampled_from(["round-robin", "coordinated"]))
    )
    nprocs = data.draw(st.integers(2, 4))
    interval = data.draw(st.floats(0.005, 0.05))
    assert_identical(
        stack, ops, 3, nprocs,
        checkpoint_policy=policy, checkpoint_interval_s=interval,
    )


def test_differential_fault_under_checkpointing():
    """Pinned deep schedule: checkpoints + a crash + replay, both knobs."""
    ops = [("ring", 4096), ("allreduce", 64), ("compute", 0.002)]
    base = run_image(
        "vcausal", ops, 6, 4, fastpath=True,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.02,
    )
    fault_at = [(base["sim_time"] * 0.5, 1)]
    assert_identical(
        "vcausal", ops, 6, 4, fault_at=fault_at,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.02,
    )


def test_differential_every_protocol_pinned():
    """One fixed mixed schedule through every protocol (no hypothesis
    luck involved: this is the guaranteed-coverage floor)."""
    ops = [("ring", 32_768), ("bcast", 1, 512), ("allreduce", 8)]
    for stack in PROTOCOL_STACKS:
        assert_identical(stack, ops, 2, 4)


def test_fastpath_is_installed_and_reference_is_not():
    """The knob actually swaps the seams it claims to swap."""
    cfg_on = ClusterConfig(delivery_fastpath=True)
    cfg_off = ClusterConfig(delivery_fastpath=False)
    on = Cluster(nprocs=2, app_factory=schedule_app([("ring", 64)], 1),
                 stack="vcausal", config=cfg_on)
    off = Cluster(nprocs=2, app_factory=schedule_app([("ring", 64)], 1),
                  stack="vcausal", config=cfg_off)
    for d in on.daemons.values():
        assert d.wire_sink.__name__ == "fused_on_wire"
    for ctx in on.contexts.values():
        assert "send" in vars(ctx) and ctx.send.__name__ == "fused_send"
        assert ctx.isend is ctx.send
    for d in off.daemons.values():
        assert d.wire_sink.__func__ is type(d).on_wire
    for ctx in off.contexts.values():
        assert "send" not in vars(ctx)
