"""Round-trip tests for the hostexec cross-worker wire codec.

The codec's contract (``repro/hostexec/codec.py``): plain payload data
travels by value and compares equal after a round trip; identity-bearing
callbacks (wire sinks, daemon/shard bound methods) resolve to the
*destination replica's* objects; ElAck journal handles ship only the
unseen journal tail and splice it into the destination's mirror journal
at the same absolute positions; anything unshippable raises instead of
silently forking a replica.

Two identically-wired clusters stand in for two forked workers: their
object graphs are equal by construction (exactly the fork guarantee),
so encoding against one and decoding against the other is the
production situation minus the pipe.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.core.bounds import BoundVector
from repro.core.event_logger import ElAck
from repro.core.events import Determinant
from repro.core.piggyback import Piggyback
from repro.hostexec.codec import HostCodec
from repro.runtime.config import ClusterConfig
from repro.runtime.daemon import WireMessage
from repro.simulator.engine import SimulationError


def make_cluster(nprocs: int = 3) -> Cluster:
    cfg = ClusterConfig(partition_ranks=2)
    return Cluster(
        nprocs=nprocs,
        app_factory=lambda ctx: iter(()),
        stack="vcausal",
        config=cfg,
    )


@pytest.fixture()
def pair():
    """(source cluster+codec, destination cluster+codec) replica pair."""
    a, b = make_cluster(), make_cluster()
    return (a, HostCodec.for_cluster(a)), (b, HostCodec.for_cluster(b))


def roundtrip(pair, deliver, args, dst_worker: int = 1):
    (_, enc), (_, dec) = pair
    return dec.decode(enc.encode(dst_worker, deliver, args))


# --------------------------------------------------------------------- #
# identity tokens


def test_wire_sink_resolves_to_destination_replica(pair):
    (src, _), (dst, _) = pair
    deliver, args = roundtrip(pair, src.daemons[2].wire_sink, ())
    assert deliver is dst.daemons[2].wire_sink
    assert args == ()


def test_bound_methods_resolve_on_registered_instances(pair):
    (src, _), (dst, _) = pair
    shard = src.event_logger.shards[0]
    deliver, _ = roundtrip(pair, shard.receive_log, ())
    assert deliver.__self__ is dst.event_logger.shards[0]
    assert deliver.__func__.__name__ == "receive_log"
    deliver, _ = roundtrip(pair, src.daemons[0]._el_ack, ())
    assert deliver.__self__ is dst.daemons[0]


def test_daemon_instance_in_args_resolves_to_replica(pair):
    (src, _), (dst, _) = pair
    _, args = roundtrip(pair, src.daemons[0].wire_sink, (src.daemons[1],))
    assert args[0] is dst.daemons[1]


def test_closures_and_foreign_methods_raise(pair):
    (src, enc), _ = pair
    x = []

    def local_fn():  # a closure over x: meaningless in another process
        x.append(1)

    with pytest.raises(SimulationError, match="closure"):
        enc.encode(1, local_fn, ())
    with pytest.raises(SimulationError, match="unregistered"):
        enc.encode(1, src.network.nics["n0"].reserve_rx, ())


def test_identity_bearing_infrastructure_raises(pair):
    (src, enc), _ = pair
    with pytest.raises(SimulationError, match="identity-bearing"):
        enc.encode(1, src.daemons[0].wire_sink, (src.sim,))
    with pytest.raises(SimulationError, match="identity-bearing"):
        enc.encode(1, src.daemons[0].wire_sink, (src.network,))


# --------------------------------------------------------------------- #
# plain-data round trips (property)

determinants = st.builds(
    Determinant,
    creator=st.integers(0, 2),
    clock=st.integers(1, 1 << 20),
    sender=st.integers(0, 2),
    ssn=st.integers(0, 1 << 20),
    dep=st.integers(0, 1 << 20),
)

sparse_vectors = st.dictionaries(
    st.integers(0, 4095), st.integers(1, 1 << 30), max_size=8
).map(lambda d: BoundVector(d))

piggybacks = st.builds(
    Piggyback,
    events=st.lists(determinants, max_size=6).map(tuple),
    nbytes=st.integers(0, 1 << 16),
    build_cost_s=st.floats(0, 1e-3, allow_nan=False),
    runs=st.lists(
        st.tuples(st.integers(0, 7), st.integers(0, 7), st.integers(0, 7)),
        max_size=3,
    ).map(tuple),
)


@settings(max_examples=50, deadline=None)
@given(pb=piggybacks, payload=st.integers() | st.text(max_size=20) | st.none())
def test_wire_message_roundtrip(pb, payload):
    a, b = make_cluster(), make_cluster()
    enc, dec = HostCodec.for_cluster(a), HostCodec.for_cluster(b)
    msg = WireMessage(
        kind="app", src=0, dst=2, ssn=7, tag=3, nbytes=512, payload=payload, pb=pb
    )
    det = Determinant(2, 1, 0, 7, 0)
    deliver, args = dec.decode(enc.encode(1, a.daemons[2].wire_sink, (msg, det)))
    out, out_det = args
    assert out_det == det
    assert (out.kind, out.src, out.dst, out.ssn, out.tag, out.nbytes) == (
        "app", 0, 2, 7, 3, 512,
    )
    assert out.payload == payload
    assert out.pb.events == pb.events
    assert out.pb.runs == pb.runs
    assert out.pb.nbytes == pb.nbytes


@settings(max_examples=50, deadline=None)
@given(vec=sparse_vectors)
def test_sparse_bound_vector_roundtrip(vec):
    a, b = make_cluster(), make_cluster()
    enc, dec = HostCodec.for_cluster(a), HostCodec.for_cluster(b)
    _, args = dec.decode(enc.encode(1, a.daemons[0].wire_sink, (vec,)))
    out = args[0]
    assert type(out) is BoundVector
    assert out.data == vec.data
    # dict iteration order is part of determinism: pickle preserves it
    assert list(out.data.items()) == list(vec.data.items())


# --------------------------------------------------------------------- #
# ElAck journal handles


def ack_from(shard, upto: int) -> ElAck:
    vec = BoundVector({i: c for i, (_cr, c) in enumerate(shard._ack_log[:upto])})
    return ElAck(vec, shard, shard._ack_log, upto)


def test_elack_ships_only_the_unseen_tail(pair):
    (src, enc), (dst, dec) = pair
    shard = src.event_logger.shards[0]
    mirror = dst.event_logger.shards[0]._ack_log
    shard._ack_log.extend([(0, 1), (1, 1), (0, 2)])

    first = dec.decode(enc.encode(1, src.daemons[0]._el_ack, (ack_from(shard, 2),)))
    ack1 = first[1][0]
    assert type(ack1) is ElAck
    assert ack1.src is dst.event_logger.shards[0]
    assert ack1.log is mirror  # the replica's own journal is the mirror
    assert ack1.upto == 2
    assert mirror == [(0, 1), (1, 1)]

    # second ack to the same worker: only entries past the first's upto
    shard._ack_log.append((2, 1))
    second = dec.decode(enc.encode(1, src.daemons[0]._el_ack, (ack_from(shard, 4),)))
    ack2 = second[1][0]
    assert ack2.upto == 4
    assert mirror == shard._ack_log  # spliced to the exact absolute positions
    assert ack2.log[ack1.upto : ack2.upto] == [(0, 2), (2, 1)]
    # vcausal's journal-fold fast path requires a stable src identity
    assert ack2.src is ack1.src


def test_elack_tail_state_is_per_destination_worker(pair):
    (src, enc), _ = pair
    shard = src.event_logger.shards[0]
    shard._ack_log.extend([(0, 1), (1, 1)])
    enc.encode(1, src.daemons[0]._el_ack, (ack_from(shard, 2),))
    # a different destination worker has seen nothing: full tail again
    blob = enc.encode(2, src.daemons[0]._el_ack, (ack_from(shard, 2),))
    fresh = make_cluster()
    dec = HostCodec.for_cluster(fresh)
    ack = dec.decode(blob)[1][0]
    assert fresh.event_logger.shards[0]._ack_log == [(0, 1), (1, 1)]
    assert ack.upto == 2


def test_elack_regressed_journal_raises(pair):
    (src, enc), _ = pair
    shard = src.event_logger.shards[0]
    shard._ack_log.extend([(0, 1), (1, 1)])
    enc.encode(1, src.daemons[0]._el_ack, (ack_from(shard, 2),))
    with pytest.raises(SimulationError, match="regressed"):
        enc.encode(1, src.daemons[0]._el_ack, (ack_from(shard, 1),))


def test_elack_out_of_step_mirror_raises(pair):
    (src, enc), (dst, dec) = pair
    shard = src.event_logger.shards[0]
    shard._ack_log.extend([(0, 1), (1, 1)])
    blob = enc.encode(1, src.daemons[0]._el_ack, (ack_from(shard, 2),))
    # the destination replica's journal was written locally: the splice
    # positions no longer line up, which must fail loudly
    dst.event_logger.shards[0]._ack_log.append((9, 9))
    with pytest.raises(SimulationError, match="out of step"):
        dec.decode(blob)
