"""MPI point-to-point semantics: matching, wildcards, ordering."""

import pytest

from repro import Cluster
from repro.mpi.api import ANY_SOURCE, ANY_TAG


def run_app(app, nprocs=2, stack="vdummy"):
    result = Cluster(nprocs=nprocs, app_factory=app, stack=stack).run()
    assert result.finished
    return result


def test_send_recv_payload_roundtrip():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 128, tag=7, payload={"k": [1, 2]})
            return None
        msg = yield from ctx.recv(0, tag=7)
        return (msg.src, msg.tag, msg.nbytes, msg.payload)

    result = run_app(app)
    assert result.results[1] == (0, 7, 128, {"k": [1, 2]})


def test_tag_matching_skips_non_matching():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 64, tag=1, payload="first")
            yield from ctx.send(1, 64, tag=2, payload="second")
            return None
        msg2 = yield from ctx.recv(0, tag=2)
        msg1 = yield from ctx.recv(0, tag=1)
        return (msg1.payload, msg2.payload)

    result = run_app(app)
    assert result.results[1] == ("first", "second")


def test_any_source_receives_from_either():
    def app(ctx):
        if ctx.rank == 0:
            msgs = []
            for _ in range(2):
                m = yield from ctx.recv(ANY_SOURCE, tag=3)
                msgs.append(m.src)
            return sorted(msgs)
        yield from ctx.send(0, 64, tag=3, payload=ctx.rank)
        return None

    result = run_app(app, nprocs=3)
    assert result.results[0] == [1, 2]


def test_any_tag_matches_first_delivered():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 64, tag=42, payload="x")
            return None
        msg = yield from ctx.recv(0, ANY_TAG)
        return msg.tag

    result = run_app(app)
    assert result.results[1] == 42


def test_per_channel_fifo_order():
    def app(ctx):
        if ctx.rank == 0:
            for i in range(10):
                yield from ctx.send(1, 64, tag=1, payload=i)
            return None
        got = []
        for _ in range(10):
            m = yield from ctx.recv(0, tag=1)
            got.append(m.payload)
        return got

    result = run_app(app)
    assert result.results[1] == list(range(10))


def test_irecv_posted_before_send():
    def app(ctx):
        if ctx.rank == 1:
            req = ctx.irecv(0, tag=5)
            yield from ctx.send(0, 8, tag=6, payload="go")
            msg = yield from req.wait()
            return msg.payload
        yield from ctx.recv(1, tag=6)
        yield from ctx.send(1, 8, tag=5, payload="answer")
        return None

    result = run_app(app)
    assert result.results[1] == "answer"


def test_irecv_matches_queued_message():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 8, tag=5, payload="queued")
            return None
        # let the message arrive and sit in the unexpected queue
        yield from ctx.compute_seconds(0.01)
        req = ctx.irecv(0, tag=5)
        msg = yield from req.wait()
        return msg.payload

    result = run_app(app)
    assert result.results[1] == "queued"


def test_sendrecv_simultaneous_exchange():
    def app(ctx):
        other = 1 - ctx.rank
        msg = yield from ctx.sendrecv(other, 256, other, tag=9, payload=ctx.rank)
        return msg.payload

    result = run_app(app)
    assert result.results == {0: 1, 1: 0}


def test_compute_flops_accounts_probes():
    def app(ctx):
        yield from ctx.compute_flops(3.2e6)
        return ctx.sim.now

    result = run_app(app, nprocs=1)
    assert result.probes.rank(0).flops == 3.2e6
    # 3.2e6 flops at 320e6 flop/s = 10 ms
    assert abs(result.results[0] - 0.01) < 1e-9


def test_negative_compute_raises():
    def app(ctx):
        yield from ctx.compute_seconds(-1)

    with pytest.raises(ValueError):
        Cluster(nprocs=1, app_factory=app).run()


def test_deadlock_detected_for_missing_message():
    def app(ctx):
        if ctx.rank == 1:
            yield from ctx.recv(0, tag=99)  # never sent
        return None

    from repro.simulator.engine import DeadlockError

    with pytest.raises(DeadlockError):
        Cluster(nprocs=2, app_factory=app).run()


def test_message_ordering_across_sources_is_deterministic():
    def app(ctx):
        if ctx.rank == 0:
            got = []
            for _ in range(4):
                m = yield from ctx.recv(ANY_SOURCE, ANY_TAG)
                got.append((m.src, m.payload))
            return got
        yield from ctx.send(0, 64, tag=1, payload=f"a{ctx.rank}")
        yield from ctx.send(0, 64, tag=1, payload=f"b{ctx.rank}")
        return None

    r1 = run_app(app, nprocs=3)
    r2 = run_app(app, nprocs=3)
    assert r1.results[0] == r2.results[0]  # bit-reproducible


def test_large_message_uses_rendezvous_and_arrives():
    def app(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, 2 * 1024 * 1024, tag=1, payload="big")
            return None
        msg = yield from ctx.recv(0, tag=1)
        return (msg.nbytes, msg.payload)

    result = run_app(app)
    assert result.results[1] == (2 * 1024 * 1024, "big")
