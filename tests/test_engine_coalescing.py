"""Property test: the macro-event engine is bit-identical to the reference.

Random schedules of ``schedule`` / ``at`` / ``post`` / ``call_soon`` /
``schedule_bulk`` with interleaved cancellations — including callbacks that
schedule and cancel from inside the run — must produce identical
``(time, label)`` traces, ``events_executed`` counters and clocks on the
coalescing :class:`Simulator` and the one-heap-entry-per-event
:class:`ReferenceSimulator`, across the plain, ``until``, ``max_events``
and deadlock execution paths.

The random stream is consumed *inside* the callbacks, so any ordering
divergence immediately snowballs into different programs — a much stronger
check than comparing externally generated schedules.
"""

import random

import pytest

from repro.simulator.engine import (
    DeadlockError,
    ReferenceSimulator,
    SimulationError,
    Simulator,
    make_simulator,
)

SEEDS = range(12)


def _build_program(sim, seed, trace):
    """Install a self-extending random program on ``sim``.

    Callbacks record ``(now, label)`` and randomly schedule/cancel more
    work through every scheduling API.
    """
    rng = random.Random(seed)
    handles = []
    counter = [0]

    def make_cb(label, budget):
        def cb():
            trace.append((round(sim.now, 12), label))
            if budget > 0:
                for _ in range(rng.randint(0, 2)):
                    counter[0] += 1
                    child = make_cb(f"{label}.{counter[0]}", budget - 1)
                    delay = rng.choice(
                        [0.0, 0.0, 0.25, rng.uniform(0.0, 1.5)]
                    )
                    op = rng.random()
                    if op < 0.30:
                        handles.append(sim.schedule(delay, child))
                    elif op < 0.50:
                        sim.post(sim.now + delay, child)
                    elif op < 0.65:
                        handles.append(sim.call_soon(child))
                    elif op < 0.80:
                        sim.schedule_bulk([(delay, child, ())])
                    else:
                        handles.append(sim.at(sim.now + delay, child))
            if handles and rng.random() < 0.25:
                handles.pop(rng.randrange(len(handles))).cancel()

        return cb

    for i in range(10):
        delay = rng.choice([0.0, 0.25, 0.5, 1.0, rng.uniform(0.0, 2.0)])
        handles.append(sim.schedule(delay, make_cb(f"r{i}", 3)))
    # a bulk batch and a couple of same-time events to seed wide buckets
    sim.schedule_bulk(
        [(0.5, make_cb("b0", 2), ()), (0.5, make_cb("b1", 2), ()),
         (1.0, make_cb("b2", 2), ())]
    )


def _run_both(seed, driver):
    results = []
    for coalesce in (True, False):
        sim = make_simulator(coalesce=coalesce)
        assert sim.coalesced is coalesce
        trace = []
        _build_program(sim, seed, trace)
        outcome = driver(sim)
        results.append(
            {
                "trace": trace,
                "events": sim.events_executed,
                "now": sim.now,
                "outcome": outcome,
            }
        )
    coal, ref = results
    assert coal == ref, f"engines diverged for seed {seed}"
    return coal


def test_factory_selects_engines():
    assert type(make_simulator()) is Simulator
    assert type(make_simulator(coalesce=False)) is ReferenceSimulator


@pytest.mark.parametrize("seed", SEEDS)
def test_full_runs_identical(seed):
    result = _run_both(seed, lambda sim: sim.run())
    assert result["events"] == len(result["trace"])
    assert result["events"] > 10


@pytest.mark.parametrize("seed", SEEDS)
def test_until_segments_identical(seed):
    def driver(sim):
        sim.run(until=0.5)
        mid = list(sim.now for _ in range(1))
        sim.run(until=1.25)
        sim.run()
        return mid

    _run_both(seed, driver)


@pytest.mark.parametrize("seed", SEEDS)
def test_max_events_path_identical(seed):
    def driver(sim):
        outcomes = []
        try:
            sim.run(max_events=7)
            outcomes.append("completed")
        except SimulationError as exc:
            outcomes.append(str(exc))
        # resume to completion: the parked remainder must survive the raise
        sim.run()
        outcomes.append("done")
        return outcomes

    _run_both(seed, driver)


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_deadlock_path_identical(seed):
    def driver(sim):
        sim.mark_blocked("actor", f"actor waiting (seed {seed})")
        try:
            sim.run()
            return "no deadlock"
        except DeadlockError as exc:
            return str(exc)

    result = _run_both(seed, driver)
    assert "actor waiting" in result["outcome"]


@pytest.mark.parametrize("engine", [Simulator, ReferenceSimulator])
def test_max_events_runs_exactly_max_before_error(engine):
    sim = engine()
    fired = []
    for i in range(5):
        sim.schedule(float(i + 1), fired.append, i)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=3)
    # exactly max_events events ran, and the excess stayed scheduled
    assert fired == [0, 1, 2]
    assert sim.events_executed == 3
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


@pytest.mark.parametrize("engine", [Simulator, ReferenceSimulator])
def test_max_events_exact_budget_completes(engine):
    sim = engine()
    for _ in range(3):
        sim.schedule(1.0, lambda: None)
    sim.run(max_events=3)  # exactly enough: no error
    assert sim.events_executed == 3


@pytest.mark.parametrize("engine", [Simulator, ReferenceSimulator])
def test_serial_drain_orders_like_individual_posts(engine):
    """SerialDrain executes entries exactly where individually posted
    events with the claimed seqs would run."""
    from repro.simulator.engine import SerialDrain

    sim = engine()
    order = []
    drain = SerialDrain(sim) if sim.coalesced else None

    def deliver(tag):
        order.append((sim.now, tag))

    def enqueue(when, tag):
        if drain is not None:
            drain.enqueue(when, deliver, tag)
        else:
            sim.post(when, deliver, tag)

    sim.schedule(0.0, enqueue, 1.0, "a")       # queued first
    sim.schedule(0.0, sim.post, 1.0, deliver, "x")  # competes at t=1.0
    sim.schedule(0.0, enqueue, 2.0, "b")
    sim.schedule(1.5, enqueue, 2.0, "c")       # joins pending queue
    sim.run()
    assert order == [(1.0, "a"), (1.0, "x"), (2.0, "b"), (2.0, "c")]
    assert sim.events_executed >= 5
