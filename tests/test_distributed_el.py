"""Tests for the distributed Event Logger (paper §VI future work)."""

import pytest

from repro import Cluster, ClusterConfig, OneShotFaults
from repro.core.distributed_el import EventLoggerGroup, shard_host
from repro.workloads.nas import make_app

from tests.conftest import ring_app, run_ring


def dcfg(count, strategy="multicast", interval=2e-3):
    return ClusterConfig().with_overrides(
        el_count=count, el_sync_strategy=strategy, el_sync_interval_s=interval
    )


def test_invalid_shard_count_rejected():
    import repro.simulator.engine as eng
    from repro.metrics.probes import ClusterProbes
    from repro.simulator.network import Network

    sim = eng.Simulator()
    net = Network(sim)
    with pytest.raises(ValueError):
        EventLoggerGroup(sim, net, ClusterConfig(), ClusterProbes(), 4, count=0)
    with pytest.raises(ValueError):
        EventLoggerGroup(
            sim, net, ClusterConfig(), ClusterProbes(), 4,
            count=2, sync_strategy="bogus",
        )


def test_shard_assignment_is_static_modulo():
    result = run_ring("vcausal", nprocs=4, iterations=3, config=dcfg(2))
    group = result.cluster.event_logger
    assert group.shard_index_for(0) == 0
    assert group.shard_index_for(1) == 1
    assert group.shard_index_for(2) == 0
    assert group.host_for(3) == shard_host(1)


@pytest.mark.parametrize("count", [1, 2, 4])
def test_results_independent_of_shard_count(count):
    reference = run_ring("vcausal", nprocs=4, iterations=10)
    result = run_ring("vcausal", nprocs=4, iterations=10, config=dcfg(count))
    assert result.finished
    assert result.results == reference.results


@pytest.mark.parametrize("strategy", ["multicast", "broadcast"])
def test_sync_strategies_run(strategy):
    result = run_ring(
        "vcausal", nprocs=4, iterations=15, config=dcfg(2, strategy)
    )
    assert result.finished
    group = result.cluster.event_logger
    assert group.sync_rounds > 0
    assert group.sync_bytes > 0


def test_each_shard_stores_only_its_creators():
    result = run_ring("vcausal", nprocs=4, iterations=10, config=dcfg(2))
    group = result.cluster.event_logger
    for creator in range(4):
        own = group.shard_for(creator)
        other = group.shards[1 - group.shard_index_for(creator)]
        assert len(own.store[creator]) > 0
        assert len(other.store[creator]) == 0


def test_merged_stable_covers_all_creators():
    result = run_ring("vcausal", nprocs=4, iterations=10, config=dcfg(2))
    group = result.cluster.event_logger
    merged = group.merged_stable()
    assert all(v > 0 for v in merged)


def test_shards_learn_peer_clocks_via_multicast():
    result = run_ring(
        "vcausal", nprocs=4, iterations=20, config=dcfg(2, "multicast")
    )
    group = result.cluster.event_logger
    # shard 0 owns creators 0 and 2; it must have learned 1's and 3's
    # clocks from shard 1 through the periodic multicast
    shard0 = group.shards[0]
    assert shard0.global_view[1] > 0
    assert shard0.global_view[3] > 0


def test_recovery_with_sharded_el():
    base = run_ring("vcausal", nprocs=4, iterations=25, config=dcfg(2))
    result = run_ring(
        "vcausal", nprocs=4, iterations=25, config=dcfg(2),
        fault_plan=OneShotFaults([(base.sim_time / 2, 1)]),
    )
    assert result.finished
    assert result.results == base.results
    rec = result.probes.recoveries[0]
    assert rec.event_sources == 1  # one bulk fetch from the owning shard


def test_sharding_desaturates_the_el_on_lu():
    """The point of §VI: more shards → lower residual piggyback volume."""
    def run_lu(count):
        app, _ = make_app("lu", "A", 16, iterations=2)
        return Cluster(
            nprocs=16, app_factory=app, stack="vcausal", config=dcfg(count)
        ).run()

    single = run_lu(1)
    quad = run_lu(4)
    assert quad.probes.piggyback_fraction < single.probes.piggyback_fraction
    assert quad.mflops >= single.mflops


def test_single_shard_matches_legacy_behaviour():
    """count=1 must be byte-identical to the paper's single EL."""
    r1 = run_ring("vcausal", nprocs=4, iterations=10)
    r2 = run_ring("vcausal", nprocs=4, iterations=10, config=dcfg(1))
    assert r1.sim_time == r2.sim_time
    assert r1.probes.total_piggyback_bytes == r2.probes.total_piggyback_bytes
