"""Cluster assembly, dispatcher and failure-plan unit tests."""

import pytest

from repro import Cluster, OneShotFaults, PeriodicFaults
from repro.runtime.config import STACKS, ClusterConfig, StackSpec

from tests.conftest import ring_app, run_ring


def test_cluster_requires_positive_nprocs():
    with pytest.raises(ValueError):
        Cluster(nprocs=0, app_factory=ring_app(1))


def test_stack_accepts_spec_instance():
    spec = StackSpec(name="custom", daemon=True, protocol="vcausal",
                     event_logger=True, sender_based_logging=True)
    result = Cluster(nprocs=2, app_factory=ring_app(3), stack=spec).run()
    assert result.finished
    assert result.stack == "custom"


def test_unknown_stack_raises():
    with pytest.raises(KeyError):
        Cluster(nprocs=2, app_factory=ring_app(1), stack="nosuch")


def test_cluster_cannot_start_twice():
    c = Cluster(nprocs=2, app_factory=ring_app(1))
    c.start()
    with pytest.raises(RuntimeError):
        c.start()
    c.sim.run()


def test_run_result_fields():
    result = run_ring("vcausal", nprocs=2, iterations=3)
    assert result.stack == "vcausal"
    assert result.nprocs == 2
    assert result.finished
    assert result.sim_time > 0
    assert result.events_executed > 0
    assert set(result.results) == {0, 1}
    assert result.mflops > 0


def test_el_only_present_for_el_stacks():
    c1 = Cluster(nprocs=2, app_factory=ring_app(1), stack="vcausal")
    c2 = Cluster(nprocs=2, app_factory=ring_app(1), stack="vcausal-noel")
    c3 = Cluster(nprocs=2, app_factory=ring_app(1), stack="vdummy")
    assert c1.event_logger is not None
    assert c2.event_logger is None
    assert c3.event_logger is None


def test_custom_config_propagates():
    cfg = ClusterConfig().with_overrides(node_flops=1e9)
    c = Cluster(nprocs=2, app_factory=ring_app(1), config=cfg)
    assert c.contexts[0].config.node_flops == 1e9


def test_host_naming_and_nics():
    c = Cluster(nprocs=3, app_factory=ring_app(1), stack="vcausal")
    assert c.host_of(2) == "n2"
    assert set(c.network.nics) == {"n0", "n1", "n2", "el0", "ckpt"}


def test_p4_gets_half_duplex_nics():
    c = Cluster(nprocs=2, app_factory=ring_app(1), stack="p4")
    assert not c.network.nics["n0"].full_duplex
    c2 = Cluster(nprocs=2, app_factory=ring_app(1), stack="vdummy")
    assert c2.network.nics["n0"].full_duplex


def test_inject_fault_on_dead_rank_is_noop():
    c = Cluster(
        nprocs=2,
        app_factory=ring_app(30),
        stack="vcausal",
        fault_plan=OneShotFaults([(0.01, 0), (0.012, 0)]),  # double-kill
    )
    result = c.run(max_events=20_000_000)
    assert result.finished
    assert c.dispatcher.faults_seen == 1  # second injection ignored


CKPT = dict(checkpoint_policy="round-robin", checkpoint_interval_s=0.05)


def test_periodic_fault_plan_round_robin_victims():
    # the fault period must exceed the worst-case recovery time, or the
    # system (realistically) stops making progress
    plan = PeriodicFaults(per_minute=90, start_s=0.1, victim="round-robin")
    result = run_ring("vcausal", nprocs=4, iterations=40, fault_plan=plan, **CKPT)
    assert result.finished
    victims = [rec.rank for rec in result.probes.recoveries]
    assert victims == [i % 4 for i in range(len(victims))]
    assert victims  # at least one fault landed


def test_periodic_fault_plan_fixed_victim():
    plan = PeriodicFaults(per_minute=90, start_s=0.1, victim=2)
    result = run_ring("vcausal", nprocs=4, iterations=40, fault_plan=plan, **CKPT)
    assert result.finished
    assert result.probes.recoveries
    assert all(rec.rank == 2 for rec in result.probes.recoveries)


def test_periodic_fault_plan_random_seeded():
    plan1 = PeriodicFaults(per_minute=90, start_s=0.1, victim="random", seed=7)
    r1 = run_ring("vcausal", nprocs=4, iterations=40, fault_plan=plan1, **CKPT)
    plan2 = PeriodicFaults(per_minute=90, start_s=0.1, victim="random", seed=7)
    r2 = run_ring("vcausal", nprocs=4, iterations=40, fault_plan=plan2, **CKPT)
    assert [rec.rank for rec in r1.probes.recoveries] == [
        rec.rank for rec in r2.probes.recoveries
    ]


def test_fault_plan_descriptions():
    assert "one-shot" in OneShotFaults([(1.0, 0)]).description
    assert "round-robin" in PeriodicFaults(victim="round-robin").description


def test_zero_frequency_plan_installs_nothing():
    plan = PeriodicFaults(per_minute=0)
    result = run_ring("vcausal", nprocs=2, iterations=3, fault_plan=plan)
    assert result.finished
    assert result.cluster.dispatcher.faults_seen == 0


def test_detection_delay_respected():
    result = run_ring(
        "vcausal", nprocs=2, iterations=30,
        fault_plan=OneShotFaults([(0.05, 0)]),
    )
    rec = result.probes.recoveries[0]
    cfg = ClusterConfig()
    assert rec.detect_time == pytest.approx(0.05 + cfg.fault_detection_delay_s)


def test_seed_changes_random_scheduler_only():
    r1 = run_ring("vcausal", nprocs=2, iterations=5, seed=1)
    r2 = run_ring("vcausal", nprocs=2, iterations=5, seed=2)
    # without stochastic components the runs are identical
    assert r1.sim_time == r2.sim_time
