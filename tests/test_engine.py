"""Unit tests for the discrete-event engine."""

import math

import pytest

from repro.simulator.engine import DeadlockError, SimulationError, Simulator


def test_events_execute_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(3.0, order.append, "c")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(2.0, order.append, "b")
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_execute_in_scheduling_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(1.0, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_call_soon_runs_at_current_instant():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.call_soon(seen.append, sim.now))
    sim.run()
    assert seen == [1.0]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    sim.schedule(0.5, handle.cancel)
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_nan_delay_raises():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(math.nan, lambda: None)


def test_scheduling_into_the_past_raises():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(1.0, lambda: None)


def test_run_until_stops_the_clock():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(10.0, fired.append, 2)
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0
    sim.run()
    assert fired == [1, 2]


def test_run_until_executes_events_at_exactly_until():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, 1)
    sim.run(until=5.0)
    assert fired == [1]


def test_max_events_guard():
    sim = Simulator()

    def reschedule():
        sim.schedule(1.0, reschedule)

    sim.schedule(1.0, reschedule)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_deadlock_detection_reports_blocked_actors():
    sim = Simulator()
    sim.mark_blocked("actor-1", "waiting on recv from rank 3")
    sim.schedule(1.0, lambda: None)
    with pytest.raises(DeadlockError) as exc:
        sim.run()
    assert "rank 3" in str(exc.value)


def test_unblocked_actor_clears_deadlock():
    sim = Simulator()
    sim.mark_blocked("a", "r")
    sim.mark_unblocked("a")
    sim.run()  # no raise


def test_deadlock_check_can_be_disabled():
    sim = Simulator()
    sim.mark_blocked("a", "r")
    sim.run(check_deadlock=False)


def test_events_executed_counter():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_executed == 7


def test_peek_time_skips_cancelled():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    assert sim.peek_time() == 2.0


def test_trace_hook_invoked():
    traced = []
    sim = Simulator(trace=lambda t, label: traced.append(t))
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert traced == [1.0, 2.0]


def test_post_schedules_without_handle():
    sim = Simulator()
    order = []
    sim.post(2.0, order.append, "b")
    sim.post(1.0, order.append, "a")
    assert sim.post(1.5, order.append, "m") is None
    sim.run()
    assert order == ["a", "m", "b"]
    assert sim.events_executed == 3


def test_post_into_the_past_raises():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.post(1.0, lambda: None)


def test_schedule_bulk_matches_sequential_semantics():
    order_bulk, order_seq = [], []

    sim = Simulator()
    sim.schedule_bulk(
        [(3.0, order_bulk.append, ("c",)), (1.0, order_bulk.append, ("a",)),
         (1.0, order_bulk.append, ("b",))]
    )
    sim.run()

    sim2 = Simulator()
    for delay, label in ((3.0, "c"), (1.0, "a"), (1.0, "b")):
        sim2.schedule(delay, order_seq.append, label)
    sim2.run()

    assert order_bulk == order_seq == ["a", "b", "c"]
    assert sim.events_executed == sim2.events_executed == 3


def test_schedule_bulk_interleaves_with_existing_heap():
    sim = Simulator()
    order = []
    sim.schedule(2.0, order.append, "x")        # small heap, bulk >= heap
    sim.schedule_bulk([(1.0, order.append, ("a",)), (3.0, order.append, ("b",))])
    sim.run()
    assert order == ["a", "x", "b"]


def test_schedule_bulk_smaller_than_heap_uses_pushes():
    sim = Simulator()
    order = []
    for k in range(5):
        sim.schedule(float(k + 10), order.append, f"h{k}")
    sim.schedule_bulk([(1.0, order.append, ("bulk",))])
    sim.run()
    assert order[0] == "bulk"
    assert len(order) == 6


def test_schedule_bulk_rejects_negative_and_nan():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_bulk([(-1.0, lambda: None, ())])
    with pytest.raises(SimulationError):
        sim.schedule_bulk([(math.nan, lambda: None, ())])


def test_run_fast_path_counts_events_when_callback_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)

    def boom():
        raise RuntimeError("boom")

    sim.schedule(2.0, boom)
    with pytest.raises(RuntimeError):
        sim.run()
    # both the successful and the raising event were counted
    assert sim.events_executed == 2


def test_nested_scheduling_from_callbacks():
    sim = Simulator()
    order = []

    def outer():
        order.append("outer")
        sim.schedule(1.0, inner)

    def inner():
        order.append("inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 2.0
