"""Unit tests for the channel protocol layer and configuration."""

import pytest

from repro.runtime.channel import ENVELOPE_BYTES, plan_send
from repro.runtime.config import CAUSAL_PROTOCOLS, FIGURE_STACKS, STACKS, ClusterConfig, StackSpec

CFG = ClusterConfig()


# --------------------------------------------------------------------- #
# channel

def test_short_mode_for_tiny_messages():
    plan = plan_send(1, CFG)
    assert plan.mode == "short"
    assert plan.handshake_latency_s == 0.0
    assert not plan.receiver_copy
    assert plan.header_bytes == ENVELOPE_BYTES


def test_eager_mode_copies_at_receiver():
    plan = plan_send(CFG.short_threshold_bytes + 1, CFG)
    assert plan.mode == "eager"
    assert plan.receiver_copy


def test_rendezvous_above_threshold():
    plan = plan_send(CFG.eager_threshold_bytes + 1, CFG)
    assert plan.mode == "rendezvous"
    assert plan.handshake_latency_s > 0
    assert plan.header_bytes == 2 * ENVELOPE_BYTES
    assert not plan.receiver_copy


def test_thresholds_are_inclusive():
    assert plan_send(CFG.short_threshold_bytes, CFG).mode == "short"
    assert plan_send(CFG.eager_threshold_bytes, CFG).mode == "eager"


# --------------------------------------------------------------------- #
# config

def test_all_figure_stacks_exist():
    for name in FIGURE_STACKS:
        assert name in STACKS


def test_causal_stacks_use_sender_based_logging():
    for name in CAUSAL_PROTOCOLS:
        assert STACKS[name].sender_based_logging
        assert STACKS[name].event_logger
        assert STACKS[f"{name}-noel"].sender_based_logging
        assert not STACKS[f"{name}-noel"].event_logger


def test_p4_has_no_daemon_and_half_duplex():
    spec = STACKS["p4"]
    assert not spec.daemon
    assert not spec.full_duplex
    assert spec.protocol == "none"


def test_vdummy_has_daemon_but_no_protocol():
    spec = STACKS["vdummy"]
    assert spec.daemon
    assert spec.protocol == "none"
    assert spec.full_duplex


def test_pessimistic_uses_event_logger():
    assert STACKS["pessimistic"].event_logger


def test_coordinated_has_no_logging():
    spec = STACKS["coordinated"]
    assert not spec.event_logger
    assert not spec.sender_based_logging


def test_with_overrides_returns_modified_copy():
    cfg2 = CFG.with_overrides(node_flops=1e9)
    assert cfg2.node_flops == 1e9
    assert CFG.node_flops != 1e9
    assert cfg2.bandwidth_bps == CFG.bandwidth_bps


def test_stack_labels():
    assert STACKS["p4"].label == "MPICH-P4"
    assert STACKS["vdummy"].label == "MPICH-Vdummy"
    assert "EL" in STACKS["vcausal"].label
    assert "no EL" in STACKS["vcausal-noel"].label


def test_is_causal_property():
    assert STACKS["manetho"].is_causal
    assert not STACKS["pessimistic"].is_causal
    assert not STACKS["vdummy"].is_causal
