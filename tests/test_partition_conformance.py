"""Cross-engine conformance suite for partitioned simulation.

The ``partition_ranks`` knob shards the ranks into contiguous blocks,
each advanced by its own engine store inside conservative lookahead
windows, with cross-partition messages exchanged at window barriers
(``simulator/partition.py``).  The claim is *bit identity*: the facade
executes the union of the partition queues in exactly the global
``(time, seq)`` order of the single engine, so every observable of a run
— application results, simulated completion time, event count, every
probe counter — is identical at any partition count, including 0 (the
verbatim single-engine path).

This suite is that claim's correctness argument (recorded BENCH
checksums only witness the scenarios that were run): random schedules of
sends, receives, collectives, checkpoints and faults are executed at
``partition_ranks`` 0, 2 and 4 across all five protocols, and the full
probe images are compared field for field.  It mirrors
``tests/test_dispatch_fastpath.py``, the same differential methodology
applied to the delivery-dispatch knob.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Cluster
from repro.runtime.config import ClusterConfig
from repro.runtime.failure import OneShotFaults
from repro.simulator.engine import Simulator
from repro.simulator.partition import (
    PartitionedSimulator,
    derive_lookahead,
    partition_of_rank,
)

#: the five fault-tolerance protocols (stack spelling)
PROTOCOL_STACKS = ("vcausal", "manetho", "logon", "pessimistic", "coordinated")
#: message-logging subset (replay-based recovery; cheap mid-run faults)
LOGGING_STACKS = ("vcausal", "manetho", "logon", "pessimistic")
#: the partition counts every schedule is checked at (0 = single engine)
PARTITION_COUNTS = (0, 2, 4)


def schedule_app(ops, iterations):
    """SPMD application executing one random op schedule per iteration.

    Durable state only (restartable style) so checkpoint/recovery
    schedules replay it exactly; the returned value folds every payload
    the rank consumed, making delivery-order divergence visible in
    ``results``.
    """

    def app(ctx):
        s = ctx.state
        s.setdefault("it", 0)
        s.setdefault("acc", ctx.rank + 1)
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        while s["it"] < iterations:
            yield from ctx.checkpoint_poll()
            for op in ops:
                kind = op[0]
                if kind == "ring":
                    msg = yield from ctx.sendrecv(
                        right, op[1], left, tag=3, payload=(ctx.rank, s["acc"])
                    )
                    s["acc"] = (s["acc"] * 31 + msg.payload[1] + 7) % 1_000_003
                elif kind == "allreduce":
                    total = yield from ctx.allreduce(op[1], s["acc"] % 9973)
                    s["acc"] = (s["acc"] * 17 + total) % 1_000_003
                elif kind == "bcast":
                    root = op[1] % ctx.size
                    v = yield from ctx.bcast(root, op[2], payload=s["acc"] % 131)
                    if v is not None:
                        s["acc"] = (s["acc"] * 13 + v) % 1_000_003
                elif kind == "compute":
                    yield from ctx.compute_seconds(op[1])
            s["it"] += 1
        return s["acc"]

    return app


def run_image(stack, ops, iterations, nprocs, *, partition_ranks,
              fault_at=None, checkpoint_policy="none",
              checkpoint_interval_s=None, el_count=1, **config_kw):
    """One run's complete observable image as plain data."""
    config = ClusterConfig(
        partition_ranks=partition_ranks, el_count=el_count, **config_kw
    )
    kw = {}
    if fault_at is not None:
        kw["fault_plan"] = OneShotFaults(fault_at)
    result = Cluster(
        nprocs=nprocs,
        app_factory=schedule_app(ops, iterations),
        stack=stack,
        config=config,
        checkpoint_policy=checkpoint_policy,
        checkpoint_interval_s=checkpoint_interval_s,
        **kw,
    ).run(max_events=30_000_000)
    probes = dataclasses.asdict(result.probes)
    return {
        "finished": result.finished,
        "results": result.results,
        "sim_time": result.sim_time,
        "events_executed": result.events_executed,
        "probes": probes,
    }


def assert_identical(stack, ops, iterations, nprocs, **kw):
    """The single-engine image must survive every partition count."""
    ref = run_image(stack, ops, iterations, nprocs, partition_ranks=0, **kw)
    assert ref["finished"]
    for k in PARTITION_COUNTS[1:]:
        part = run_image(stack, ops, iterations, nprocs, partition_ranks=k, **kw)
        assert part["finished"]
        assert part["results"] == ref["results"], (stack, k)
        assert part["sim_time"] == ref["sim_time"], (stack, k)
        assert part["events_executed"] == ref["events_executed"], (stack, k)
        if part["probes"] != ref["probes"]:
            diffs = {
                f: (part["probes"][f], ref["probes"][f])
                for f in part["probes"]
                if part["probes"][f] != ref["probes"][f]
            }
            raise AssertionError(
                f"{stack} @ partition_ranks={k}: probe image diverged: {diffs}"
            )


OPS = st.lists(
    st.one_of(
        st.tuples(st.just("ring"), st.integers(1, 200_000)),
        st.tuples(st.just("allreduce"), st.integers(8, 4096)),
        st.tuples(st.just("bcast"), st.integers(0, 7), st.integers(1, 65_536)),
        st.tuples(st.just("compute"), st.floats(0.0, 0.01, allow_nan=False)),
    ),
    min_size=1,
    max_size=5,
)


@settings(max_examples=4, deadline=None)
@given(ops=OPS, data=st.data())
def test_differential_random_schedules(ops, data):
    """Random op schedules: every partition count is bit-identical."""
    stack = data.draw(st.sampled_from(PROTOCOL_STACKS))
    nprocs = data.draw(st.integers(2, 5))
    iterations = data.draw(st.integers(1, 3))
    assert_identical(stack, ops, iterations, nprocs)


@settings(max_examples=3, deadline=None)
@given(ops=OPS, data=st.data())
def test_differential_random_faults(ops, data):
    """A mid-run crash + recovery stays bit-identical when partitioned."""
    stack = data.draw(st.sampled_from(LOGGING_STACKS))
    nprocs = data.draw(st.integers(3, 5))
    victim = data.draw(st.integers(0, nprocs - 1))
    frac = data.draw(st.floats(0.15, 0.85))
    base = run_image(stack, ops, 3, nprocs, partition_ranks=0)
    fault_at = [(base["sim_time"] * frac, victim)]
    assert_identical(stack, ops, 3, nprocs, fault_at=fault_at)


@settings(max_examples=3, deadline=None)
@given(ops=OPS, data=st.data())
def test_differential_random_checkpoints(ops, data):
    """Checkpoint waves (and restart-from-checkpoint) stay identical."""
    stack = data.draw(st.sampled_from(PROTOCOL_STACKS))
    policy = (
        "coordinated"
        if stack == "coordinated"
        else data.draw(st.sampled_from(["round-robin", "coordinated"]))
    )
    nprocs = data.draw(st.integers(2, 4))
    interval = data.draw(st.floats(0.005, 0.05))
    assert_identical(
        stack, ops, 3, nprocs,
        checkpoint_policy=policy, checkpoint_interval_s=interval,
    )


def test_differential_fault_under_checkpointing():
    """Pinned deep schedule: checkpoints + a crash + replay, all counts."""
    ops = [("ring", 4096), ("allreduce", 64), ("compute", 0.002)]
    base = run_image(
        "vcausal", ops, 6, 4, partition_ranks=0,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.02,
    )
    fault_at = [(base["sim_time"] * 0.5, 1)]
    assert_identical(
        "vcausal", ops, 6, 4, fault_at=fault_at,
        checkpoint_policy="round-robin", checkpoint_interval_s=0.02,
    )


def test_differential_every_protocol_pinned():
    """One fixed mixed schedule through every protocol (no hypothesis
    luck involved: this is the guaranteed-coverage floor)."""
    ops = [("ring", 32_768), ("bcast", 1, 512), ("allreduce", 8)]
    for stack in PROTOCOL_STACKS:
        assert_identical(stack, ops, 2, 4)


def test_differential_sharded_el_pinning():
    """EL shards pinned to different partitions (shard_partition): the
    exchange now carries daemon→EL and shard→shard sync traffic too."""
    ops = [("ring", 2048), ("allreduce", 64)]
    assert_identical(
        "vcausal", ops, 3, 4,
        el_count=4, el_sync_strategy="tree", el_sync_interval_s=10e-3,
    )


def test_differential_composes_with_engine_knobs():
    """partition_ranks composes with the other engine-level knobs."""
    ops = [("ring", 8192), ("allreduce", 32)]
    for knobs in (
        {"engine_coalesce": False},
        {"delivery_fastpath": False},
        {"engine_coalesce": False, "delivery_fastpath": False},
    ):
        assert_identical("vcausal", ops, 2, 4, **knobs)


@pytest.mark.parametrize("stack", LOGGING_STACKS)
@pytest.mark.parametrize("ranks,workers", [(2, 2), (4, 2), (4, 4)])
def test_differential_multiprocess_workers(stack, ranks, workers):
    """partition_workers × partition_ranks × protocol: the forked
    shared-nothing backend (repro.hostexec) reproduces the in-process
    facade bit for bit.  tests/test_hostexec_workers.py carries the
    deeper worker-specific suite (envelope rejection, worker death)."""
    ops = [("ring", 32_768), ("bcast", 1, 512), ("allreduce", 8)]
    ref = run_image(stack, ops, 2, 4, partition_ranks=ranks)
    img = run_image(
        stack, ops, 2, 4, partition_ranks=ranks, partition_workers=workers
    )
    assert img == ref, (stack, ranks, workers)


# --------------------------------------------------------------------- #
# the knob installs what it claims to install

def test_partitioned_facade_is_installed_and_windows_advance():
    """partition_ranks>0 selects the facade; windows and cross-partition
    crossings actually happen (i.e. the conformance above is not
    vacuously exercising the single-engine path)."""
    ops = [("ring", 4096), ("allreduce", 64)]
    cluster = Cluster(
        nprocs=4, app_factory=schedule_app(ops, 2), stack="vcausal",
        config=ClusterConfig(partition_ranks=4),
    )
    sim = cluster.sim
    assert isinstance(sim, PartitionedSimulator)
    assert sim.partitioned and sim.partitions == 4
    assert sim.lookahead_s == derive_lookahead(cluster.config)
    # every rank host is registered in its contiguous block
    for r in range(4):
        assert sim.partition_of_host(cluster.host_of(r)) == partition_of_rank(
            r, 4, 4
        )
    result = cluster.run(max_events=30_000_000)
    assert result.finished
    assert sim.windows > 0
    assert sim.cross_messages > 0


def test_partition_counters_stay_out_of_probes():
    """windows/cross_messages live on the facade, not in the probe image
    (the full probe image must stay comparable across partition counts)."""
    probe_fields = {
        f.name
        for f in dataclasses.fields(
            Cluster(nprocs=2, app_factory=schedule_app([("ring", 64)], 1),
                    stack="vcausal").probes
        )
    }
    assert "windows" not in probe_fields
    assert "cross_messages" not in probe_fields


def test_single_engine_default_is_verbatim():
    """partition_ranks=0 keeps the plain engine — no facade in the path."""
    cluster = Cluster(
        nprocs=2, app_factory=schedule_app([("ring", 64)], 1), stack="vcausal",
    )
    assert type(cluster.sim) is Simulator
    assert not cluster.sim.partitioned


def test_partitions_clamped_to_nprocs():
    """More partitions than ranks would leave empty stores; the cluster
    clamps (results are identical either way by the merge argument)."""
    cluster = Cluster(
        nprocs=2, app_factory=schedule_app([("ring", 64)], 1), stack="vcausal",
        config=ClusterConfig(partition_ranks=8),
    )
    assert cluster.partitions == 2
    assert cluster.sim.partitions == 2


# --------------------------------------------------------------------- #
# unit corners of the partition module

def test_partition_of_rank_blocks_are_contiguous_and_balanced():
    for nprocs, k in ((8, 4), (10, 4), (512, 4), (7, 3), (5, 5)):
        pids = [partition_of_rank(r, nprocs, k) for r in range(nprocs)]
        assert pids == sorted(pids)  # contiguous blocks
        assert set(pids) == set(range(k))  # no empty partition
        sizes = [pids.count(p) for p in range(k)]
        assert max(sizes) - min(sizes) <= 1  # balanced


def test_partition_of_rank_validates():
    with pytest.raises(ValueError):
        partition_of_rank(8, 8, 4)
    with pytest.raises(ValueError):
        partition_of_rank(-1, 8, 4)
    with pytest.raises(ValueError):
        partition_of_rank(0, 8, 0)


def test_derive_lookahead_is_min_link_latency():
    cfg = ClusterConfig()
    assert derive_lookahead(cfg) == cfg.network_latency_s
    assert derive_lookahead(cfg.with_overrides(network_latency_s=1e-3)) == 1e-3


def test_conservative_violation_is_detected():
    """A crossing scheduled inside the open window is a model bug the
    facade refuses to merge silently."""
    from repro.simulator.engine import SimulationError

    sim = PartitionedSimulator(2, 1.0)
    sim.register_host("a", 0)
    sim.register_host("b", 1)

    def violate():
        # now=1.0, window end = 2.0; a crossing at 1.5 breaks lookahead
        sim.exchange_post("b", 1.5, lambda: None, ())

    sim.schedule(1.0, violate)
    with pytest.raises(SimulationError, match="conservative lookahead"):
        sim.run()
