"""Unit tests for the Event Logger stable server."""

from repro.core.event_logger import EL_HOST, EventLogger
from repro.core.events import Determinant
from repro.metrics.probes import ClusterProbes
from repro.runtime.config import ClusterConfig
from repro.simulator.engine import Simulator
from repro.simulator.network import Network


def make_el(nprocs=3, **cfg_kw):
    sim = Simulator()
    cfg = ClusterConfig().with_overrides(**cfg_kw) if cfg_kw else ClusterConfig()
    net = Network(sim, bandwidth_bps=cfg.bandwidth_bps, latency_s=cfg.network_latency_s)
    net.attach(EL_HOST)
    for r in range(nprocs):
        net.attach(f"n{r}")
    probes = ClusterProbes()
    el = EventLogger(sim, net, cfg, probes, nprocs)
    return sim, net, el, probes


def det(creator, clock, sender=0):
    return Determinant(creator, clock, sender, clock, 0)


def test_log_and_ack_carries_stable_vector():
    sim, net, el, probes = make_el()
    acks = []
    el.receive_log(1, (det(1, 1),), lambda v: acks.append(v), "n1")
    sim.run()
    assert [v.as_list(3) for v in acks] == [[0, 1, 0]]
    assert el.stable_clock.as_list(3) == [0, 1, 0]
    assert probes.el_determinants_stored == 1


def test_stability_advances_contiguously():
    sim, net, el, _ = make_el()
    el.receive_log(0, (det(0, 1),), lambda v: None, "n0")
    el.receive_log(0, (det(0, 2),), lambda v: None, "n0")
    el.receive_log(0, (det(0, 3),), lambda v: None, "n0")
    sim.run()
    assert el.stable_clock[0] == 3
    assert el.stored_count() == 3


def test_duplicate_determinants_discarded():
    """Replayed re-executions re-post the same determinants."""
    sim, net, el, _ = make_el()
    el.receive_log(0, (det(0, 1), det(0, 2)), lambda v: None, "n0")
    el.receive_log(0, (det(0, 1), det(0, 2)), lambda v: None, "n0")
    sim.run()
    assert el.stored_count() == 2
    assert el.stable_clock[0] == 2


def test_service_queue_serializes_under_load():
    """The single-threaded EL saturates: acks queue behind service."""
    sim, net, el, probes = make_el(nprocs=2)
    ack_times = []
    n = 50
    for k in range(1, n + 1):
        el.receive_log(0, (det(0, k),), lambda v, t=None: ack_times.append(sim.now), "n0")
    sim.run()
    assert len(ack_times) == n
    cfg = ClusterConfig()
    # the last ack must wait behind ~n service slots
    assert ack_times[-1] - ack_times[0] >= (n - 1) * cfg.el_service_time_s * 0.9
    assert probes.el_peak_queue > 1


def test_fetch_events_returns_clock_filtered():
    sim, net, el, _ = make_el()
    el.receive_log(2, tuple(det(2, k) for k in range(1, 11)), lambda v: None, "n2")
    sim.run()
    got = []
    el.fetch_events(2, clock_after=4, reply_to=got.extend, reply_host="n2")
    sim.run()
    assert [d.clock for d in got] == [5, 6, 7, 8, 9, 10]


def test_fetch_events_empty_when_nothing_stored():
    sim, net, el, _ = make_el()
    got = []
    el.fetch_events(1, 0, got.extend, "n1")
    sim.run()
    assert got == []


def test_hole_keeps_stability_at_contiguous_prefix():
    sim, net, el, _ = make_el()
    el.receive_log(0, (det(0, 1), det(0, 3)), lambda v: None, "n0")
    sim.run()
    assert el.stable_clock[0] == 1  # 3 stored but not stable past the hole


def test_ack_vector_covers_nprocs():
    sim, net, el, _ = make_el(nprocs=5)
    acks = []
    el.receive_log(4, (det(4, 1),), lambda v: acks.append(v), "n0")
    sim.run()
    assert acks[0].as_list(5) == [0, 0, 0, 0, 1]


def test_ack_wire_bytes_dense_vs_sparse():
    """The dense compatibility format grows with nprocs; the sparse format
    grows only with the creators that have actually logged something."""
    cfg = ClusterConfig()
    sim, net, el, _ = make_el(nprocs=64)
    el.receive_log(0, (det(0, 1),), lambda v: None, "n0")
    sim.run()
    dense = el.ack_vector_bytes(el.stable_clock)
    assert dense == 4 * 64

    sim, net, el, _ = make_el(nprocs=64, pb_cost_model="sparse")
    el.receive_log(0, (det(0, 1),), lambda v: None, "n0")
    sim.run()
    sparse = el.ack_vector_bytes(el.stable_clock)
    assert sparse == cfg.el_ack_entry_bytes * 1
    assert sparse < dense
