#!/usr/bin/env python
"""Quickstart: write an MPI-style app, run it on a fault-tolerant stack.

Applications are Python generators over an mpi4py-flavoured context:
``yield from ctx.send(...)``, ``msg = yield from ctx.recv(...)``,
collectives, and ``ctx.compute_flops(...)`` for computation.  The cluster
simulates the full MPICH-V runtime: communication daemons, the causal
message logging protocol, and the Event Logger stable server.

Run:  python examples/quickstart.py
"""

from repro import Cluster


def app(ctx):
    """Each rank: exchange halos around a ring, then reduce a checksum."""
    s = ctx.state                       # durable state (restartable style)
    s.setdefault("it", 0)
    s.setdefault("acc", 0)
    while s["it"] < 20:
        yield from ctx.checkpoint_poll()        # safe point for checkpoints
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        msg = yield from ctx.sendrecv(
            right, 4096, left, tag=1, payload=(ctx.rank, s["it"])
        )
        s["acc"] += msg.payload[0] * (s["it"] + 1)
        yield from ctx.compute_flops(2e6)       # 2 Mflop of local work
        s["it"] += 1
    total = yield from ctx.allreduce(8, s["acc"])
    return total


def main():
    print(f"{'stack':14s} {'time':>9s} {'piggyback':>10s} {'result':>8s}")
    for stack in ("vdummy", "vcausal", "vcausal-noel"):
        result = Cluster(nprocs=8, app_factory=app, stack=stack).run()
        assert result.finished
        print(
            f"{stack:14s} {result.sim_time*1e3:8.2f}ms "
            f"{result.probes.piggyback_fraction:9.3f}% "
            f"{result.results[0]:8d}"
        )
    print("\nAll stacks produce identical results; the causal protocol "
          "adds piggyback traffic, and the Event Logger removes most of it.")


if __name__ == "__main__":
    main()
