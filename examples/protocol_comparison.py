#!/usr/bin/env python
"""Compare the three causal protocols, with and without the Event Logger.

Reproduces the paper's comparison methodology on one workload (the NAS LU
skeleton — the most communication-intensive pattern): for each protocol it
reports the four criteria of the paper:

  (a) piggyback computation cost (send + receive),
  (b) piggyback size (% of exchanged data, events carried),
  (c) application performance (Mflop/s),
  (d) fault recovery performance (event collection after a mid-run kill).

Run:  python examples/protocol_comparison.py
"""

from repro import Cluster, OneShotFaults
from repro.metrics.reporting import format_table
from repro.workloads.nas import make_app

STACKS = (
    "vcausal", "manetho", "logon",
    "vcausal-noel", "manetho-noel", "logon-noel",
)


def measure(stack: str):
    app, _ = make_app("lu", "A", nprocs=16, iterations=2)
    result = Cluster(nprocs=16, app_factory=app, stack=stack).run()
    assert result.finished

    # recovery: kill rank 0 halfway and measure event collection
    app2, _ = make_app("lu", "A", nprocs=16, iterations=2)
    faulty = Cluster(
        nprocs=16, app_factory=app2, stack=stack,
        fault_plan=OneShotFaults([(result.sim_time / 2, 0)]),
    ).run()
    rec = faulty.probes.recoveries[0]
    assert faulty.results == result.results

    p = result.probes
    return [
        stack,
        f"{(p.pb_send_time_s + p.pb_recv_time_s) / 16 * 1e3:.2f} ms",
        f"{p.piggyback_fraction:.2f} %",
        f"{p.total('piggyback_events_sent'):.0f}",
        f"{result.mflops:.0f}",
        f"{rec.event_collection_s * 1e3:.3f} ms",
    ]


def main():
    rows = [measure(stack) for stack in STACKS]
    print(
        format_table(
            ["protocol", "(a) pb compute", "(b) pb size", "events",
             "(c) Mflop/s", "(d) recovery"],
            rows,
            title="Causal protocol comparison on NAS LU class A, 16 processes",
        )
    )
    print(
        "\nReadings (paper §V): the Event Logger collapses piggyback volume"
        "\nand computation for every protocol, levels the three protocols'"
        "\napplication performance, and makes recovery a single bulk fetch."
    )


if __name__ == "__main__":
    main()
