#!/usr/bin/env python
"""Regenerate the Fig. 6(b) NetPIPE bandwidth curves as a text table.

Sweeps the ping-pong message size from 1 byte to 4 MiB for RAW TCP,
MPICH-P4, MPICH-Vdummy and Vcausal with/without Event Logger, printing
the Mbit/s series the paper plots.  Note the rendezvous-protocol dip just
above the 128 KiB eager threshold and the sender-based-logging bandwidth
cost of the causal stacks.

Run:  python examples/netpipe_curves.py
"""

from repro.metrics.reporting import format_series
from repro.workloads.netpipe import (
    measure_bandwidth,
    raw_tcp_bandwidth,
)

SIZES = (1, 64, 1 << 10, 8 << 10, 64 << 10, 128 << 10, 192 << 10,
         512 << 10, 1 << 20, 4 << 20)
STACKS = ("p4", "vdummy", "vcausal", "vcausal-noel")


def main():
    series = {"raw-tcp": raw_tcp_bandwidth(SIZES)}
    for stack in STACKS:
        series[stack] = measure_bandwidth(stack, sizes=SIZES, reps=4)
    table = {
        name: [f"{bw[s]:.1f}" for s in SIZES] for name, bw in series.items()
    }
    print(
        format_series(
            "bytes",
            list(SIZES),
            table,
            title="Fig. 6(b) — ping-pong bandwidth (Mbit/s) over Fast Ethernet",
        )
    )
    top = max(SIZES)
    print(
        f"\npeak: raw TCP {series['raw-tcp'][top]:.1f}, "
        f"P4 {series['p4'][top]:.1f}, Vdummy {series['vdummy'][top]:.1f}, "
        f"Vcausal {series['vcausal'][top]:.1f} Mbit/s "
        "(sender-based copying costs the causal stacks a visible slice)"
    )


if __name__ == "__main__":
    main()
