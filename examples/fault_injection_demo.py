#!/usr/bin/env python
"""Fault injection demo: kill a rank mid-run and watch causal recovery.

Runs the NAS CG skeleton under the Vcausal protocol, kills rank 1 halfway
through, and prints the recovery timeline: detection, checkpoint fetch,
event collection (from the Event Logger or from every peer), replay, and
the total cost of the fault.  The application result is verified against
the fault-free run — the whole point of message logging is that nobody can
tell the difference afterwards.

Run:  python examples/fault_injection_demo.py
"""

from repro import Cluster, OneShotFaults
from repro.workloads.nas import make_app


def run(stack: str, fault_at: float | None):
    app, _ = make_app("cg", "A", nprocs=8, iterations=3)
    plan = OneShotFaults([(fault_at, 1)]) if fault_at else None
    cluster = Cluster(
        nprocs=8,
        app_factory=app,
        stack=stack,
        checkpoint_policy="round-robin",
        checkpoint_interval_s=0.05,
        fault_plan=plan,
    )
    return cluster.run()


def main():
    base = run("vcausal", None)
    print(f"fault-free execution: {base.sim_time*1e3:.1f} ms, "
          f"result = {base.results[0]}")

    for stack, label in (("vcausal", "with Event Logger"),
                         ("vcausal-noel", "without Event Logger")):
        ref = run(stack, None)
        result = run(stack, fault_at=ref.sim_time / 2)
        rec = result.probes.recoveries[0]
        assert result.results == base.results, "recovery corrupted the run!"
        print(f"\n--- {label} ---")
        print(f"  fault injected at      {rec.fault_time*1e3:9.2f} ms (rank {rec.rank})")
        print(f"  detected at            {rec.detect_time*1e3:9.2f} ms")
        print(f"  restarted at           {rec.restart_time*1e3:9.2f} ms")
        print(f"  event collection took  {rec.event_collection_s*1e3:9.3f} ms "
              f"({rec.events_collected} determinants from {rec.event_sources} "
              f"source{'s' if rec.event_sources != 1 else ''})")
        print(f"  replay finished at     {rec.replay_end_time*1e3:9.2f} ms "
              f"({result.probes.total('replayed_receptions'):.0f} receptions replayed)")
        print(f"  total run time         {result.sim_time*1e3:9.2f} ms "
              f"(+{100*(result.sim_time/ref.sim_time-1):.1f}% vs fault-free)")
        print(f"  results identical to fault-free run: "
              f"{result.results == base.results}")


if __name__ == "__main__":
    main()
