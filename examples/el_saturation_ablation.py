#!/usr/bin/env python
"""Ablation: Event Logger saturation and the distributed-EL question.

The paper's conclusion: "Using only one Event Logger ... will lead to a
bottleneck as the number of processes grows" and proposes distributing the
log over several Event Loggers as future work.  This ablation measures the
single-EL bottleneck directly by sweeping the EL's per-determinant service
time on the LU skeleton (the workload that saturates it, Fig. 7), showing
how the residual piggyback volume and application performance degrade as
the EL slows — equivalently, as the cluster grows relative to EL capacity.

Run:  python examples/el_saturation_ablation.py
"""

from repro import Cluster, ClusterConfig
from repro.metrics.reporting import format_table
from repro.workloads.nas import make_app


def measure(service_us: float):
    config = ClusterConfig().with_overrides(el_service_time_s=service_us * 1e-6)
    app, _ = make_app("lu", "A", nprocs=16, iterations=2)
    result = Cluster(nprocs=16, app_factory=app, stack="vcausal", config=config).run()
    p = result.probes
    acked = p.total("el_acks_received")
    logged = p.total("el_events_logged")
    return [
        f"{service_us:.0f} µs",
        f"{p.piggyback_fraction:.2f} %",
        f"{result.mflops:.0f}",
        f"{p.el_peak_queue}",
        f"{100 * acked / max(logged, 1):.0f} %",
    ]


def measure_topology(strategy: str, count: int = 8):
    """The distributed fix: ``count`` shards under one sync topology."""
    config = ClusterConfig().with_overrides(
        el_count=count, el_sync_strategy=strategy
    )
    app, _ = make_app("lu", "A", nprocs=16, iterations=2)
    result = Cluster(
        nprocs=16, app_factory=app, stack="vcausal", config=config
    ).run()
    group = result.cluster.event_logger
    return [
        strategy,
        f"{result.probes.piggyback_fraction:.2f} %",
        f"{result.mflops:.0f}",
        f"{group.sync_messages / max(group.sync_rounds, 1):.0f}",
        f"{group.node_push_messages / max(group.sync_rounds, 1):.0f}",
        f"{group.sync_bytes / 1024:.0f} KiB",
        f"{group.staleness_bound_rounds}",
    ]


def main():
    rows = [measure(us) for us in (5, 15, 30, 60, 120, 240)]
    # reference: no EL at all
    app, _ = make_app("lu", "A", nprocs=16, iterations=2)
    noel = Cluster(nprocs=16, app_factory=app, stack="vcausal-noel").run()
    rows.append(["(no EL)", f"{noel.probes.piggyback_fraction:.2f} %",
                 f"{noel.mflops:.0f}", "-", "-"])
    print(
        format_table(
            ["EL service", "piggyback %", "Mflop/s", "peak EL queue", "acks recvd"],
            rows,
            title=(
                "Event Logger saturation ablation — NAS LU A, 16 processes, "
                "Vcausal (slower EL ≈ more nodes per EL)"
            ),
        )
    )
    print(
        "\nAs the EL saturates, acknowledgments lag, processes cannot prune"
        "\nbefore their next send, and the piggyback volume climbs back"
        "\ntoward the no-EL level — the motivation for distributing the EL."
    )

    topo_rows = [
        measure_topology(s) for s in ("multicast", "broadcast", "tree", "gossip")
    ]
    print(
        format_table(
            [
                "sync topology",
                "piggyback %",
                "Mflop/s",
                "sync msgs/round",
                "node pushes/round",
                "sync traffic",
                "staleness bound",
            ],
            topo_rows,
            title=(
                "The fix — 8 EL shards, sync topology sweep (multicast is "
                "O(shards²) msgs/round; tree 2(shards-1); gossip shards×fanout; "
                "sync traffic includes broadcast's node pushes)"
            ),
        )
    )
    print(
        "\nSharding removes the saturation; the tree topology keeps the"
        "\nshard-to-shard sync from becoming the next bottleneck as el_count"
        "\ngrows (gossip trades a bounded view staleness for even flatter"
        "\nper-shard fan-out)."
    )


if __name__ == "__main__":
    main()
