"""Developer tooling for the repository (not shipped with the package).

Currently one tool lives here: :mod:`tools.simlint`, the determinism &
hot-path static analyzer that gates ``src/`` (see ``docs/ANALYSIS.md``).
"""
