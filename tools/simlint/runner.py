"""simlint driver: file discovery, suppression comments, reporting.

Suppression syntax (per physical line, justification required)::

    x = time.time()  # simlint: ignore[wall-clock] - host-side timer only
    y = foo()        # simlint: ignore[rule-a,rule-b] - spans two rules
    z = bar()        # simlint: ignore[*] - everything on this line

A whole file opts out with ``# simlint: skip-file`` in its first ten
lines (used by test fixtures).  Functions are marked hot with a
``# simlint: hot`` comment on (or immediately above) their ``def`` line.

Unused suppressions are themselves findings (rule ``unused-ignore``)
unless ``warn_unused_ignores`` is disabled — a justification must not
outlive the violation it excuses.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from pathlib import Path

from tools.simlint.config import Config
from tools.simlint.rules import RULES, Finding, RuleVisitor

_IGNORE_RE = re.compile(r"#\s*simlint:\s*ignore\[([^\]]+)\]")
_HOT_RE = re.compile(r"#\s*simlint:\s*hot\b")
_SKIP_RE = re.compile(r"#\s*simlint:\s*skip-file\b")


def _parse_markers(
    source: str,
) -> tuple[dict[int, set[str]], set[int], bool]:
    """(ignores per line, hot-marker lines, skip-file) from raw source."""
    ignores: dict[int, set[str]] = {}
    hot_lines: set[int] = set()
    skip = False
    # real COMMENT tokens only: the marker regexes must not fire on
    # docstrings *about* the marker syntax (this module's, for one)
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT or "simlint" not in tok.string:
                continue
            lineno = tok.start[0]
            m = _IGNORE_RE.search(tok.string)
            if m is not None:
                rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
                ignores[lineno] = rules
            if _HOT_RE.search(tok.string):
                hot_lines.add(lineno)
            if lineno <= 10 and _SKIP_RE.search(tok.string):
                skip = True
    except tokenize.TokenError:
        pass  # ast.parse will report the real syntax error
    return ignores, hot_lines, skip


def lint_file(path: Path, root: Path, config: Config) -> list[Finding]:
    """Lint one file; returns every finding, suppressed ones included."""
    relpath = path.resolve().relative_to(root.resolve()).as_posix()
    active = config.active_rules(relpath)
    if not active:
        return []
    source = path.read_text(encoding="utf-8")
    ignores, hot_lines, skip = _parse_markers(source)
    if skip:
        return []
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(relpath, exc.lineno or 1, 1, "syntax-error", exc.msg or "?")
        ]
    visitor = RuleVisitor(
        relpath,
        active,
        hot_lines,
        rng_module=config.is_rng_module(relpath),
    )
    visitor.visit(tree)

    findings: list[Finding] = []
    used_ignores: dict[int, set[str]] = {}
    for f in visitor.findings:
        allowed = ignores.get(f.line, set())
        if f.rule in allowed or "*" in allowed:
            findings.append(
                Finding(f.path, f.line, f.col, f.rule, f.message, suppressed=True)
            )
            used_ignores.setdefault(f.line, set()).add(
                f.rule if f.rule in allowed else "*"
            )
        else:
            findings.append(f)
    if config.warn_unused_ignores:
        for lineno, rules in sorted(ignores.items()):
            used = used_ignores.get(lineno, ())
            for rule in sorted(rules):
                if rule != "*" and rule not in RULES:
                    msg = f"unknown rule `{rule}` in suppression"
                elif rule not in used:
                    msg = f"suppression of `{rule}` matches no finding on this line"
                else:
                    continue
                findings.append(Finding(relpath, lineno, 1, "unused-ignore", msg))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: list[Path], root: Path, config: Config) -> list[Path]:
    """Python files under ``paths``, sorted for deterministic output."""
    files: list[Path] = []
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                files.append(path)
            continue
        for dirpath, dirnames, filenames in sorted(os.walk(path)):
            dirnames.sort()
            reldir = Path(dirpath).resolve().relative_to(root.resolve()).as_posix()
            if config.excluded(reldir):
                dirnames.clear()
                continue
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                rel = f"{reldir}/{name}" if reldir != "." else name
                if not config.excluded(rel):
                    files.append(Path(dirpath) / name)
    return sorted(set(files))


def lint_paths(
    paths: list[Path], root: Path, config: Config
) -> list[Finding]:
    """Lint every python file under ``paths`` (files or directories)."""
    findings: list[Finding] = []
    for path in iter_python_files(paths, root, config):
        findings.extend(lint_file(path, root, config))
    return findings
