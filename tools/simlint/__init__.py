"""simlint — determinism & hot-path static analysis for the simulator.

Every claim this reproduction makes rests on the simulation being
*deterministic by construction*: recorded BENCH checksums must be
bit-identical across runs, and fault runs must fold to their fault-free
references.  A stray wall-clock read, an unseeded random draw or an
unordered ``set`` iteration feeding event scheduling would break that
silently.  ``simlint`` is an AST-based analyzer (stdlib :mod:`ast`, no
runtime dependencies) that enforces those properties, plus the
allocation-discipline rules the compiled-core roadmap item needs
(``__slots__`` on hot-state classes, no closure allocation in functions
marked ``# simlint: hot``, no mutable default arguments).

Usage::

    python -m tools.simlint src/ tools/          # lint, exit 1 on findings
    python -m tools.simlint --rules              # list the rule catalogue

Per-line suppression (requires a justification after the ``-``)::

    t0 = time.time()  # simlint: ignore[wall-clock] - host-side progress timer

See ``docs/ANALYSIS.md`` for the rule catalogue and the relationship to
the reference-pair/checksum methodology in ``docs/BENCHMARKING.md``.
"""

from tools.simlint.config import Config, load_config
from tools.simlint.rules import RULES, Finding
from tools.simlint.runner import lint_file, lint_paths

__all__ = [
    "Config",
    "Finding",
    "RULES",
    "lint_file",
    "lint_paths",
    "load_config",
]
