"""CLI entry point: ``python -m tools.simlint [paths...]``.

Exits 0 when every finding is suppressed (or none exist), 1 otherwise —
the same contract the tier-1 meta-test and ``run_bench.py
--check-static`` rely on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from tools.simlint.config import load_config
from tools.simlint.rules import RULES
from tools.simlint.runner import lint_paths


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.simlint",
        description="determinism & hot-path static analysis (docs/ANALYSIS.md)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tools"],
        help="files or directories to lint (default: src tools)",
    )
    parser.add_argument(
        "--root", default=".",
        help="repo root: config + scope globs resolve against it (default: .)",
    )
    parser.add_argument(
        "--rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="also print suppressed findings",
    )
    args = parser.parse_args(argv)

    if args.rules:
        width = max(len(r) for r in RULES)
        for rule, desc in RULES.items():
            print(f"{rule:<{width}}  {desc}")
        return 0

    root = Path(args.root)
    config = load_config(root)
    findings = lint_paths([Path(p) for p in args.paths], root, config)
    unsuppressed = [f for f in findings if not f.suppressed]
    shown = findings if args.show_suppressed else unsuppressed
    for finding in shown:
        print(finding.render())
    n_sup = sum(1 for f in findings if f.suppressed)
    print(f"simlint: {len(unsuppressed)} finding(s), {n_sup} suppressed")
    return 1 if unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main())
