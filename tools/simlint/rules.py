"""simlint rule catalogue and the AST visitor that applies it.

Two rule families (see ``docs/ANALYSIS.md`` for the full catalogue):

**Determinism** — violations here break the bit-identical checksum
methodology of ``docs/BENCHMARKING.md``:

* ``wall-clock``      — host clock reads (``time.time``, ``datetime.now``, …)
* ``raw-random``      — randomness outside :mod:`repro.simulator.rng`
* ``unordered-iter``  — iterating a ``set`` (hash order) or unsorted
  filesystem listings
* ``id-order``        — ``id()`` (CPython address, varies across runs)
* ``env-read``        — ``os.environ`` / ``os.getenv`` inside sim paths
* ``host-thread``     — host concurrency machinery (``threading``,
  ``multiprocessing``, ``concurrent``, ``asyncio``, ``_thread``,
  ``os.fork``) in simulated code; simulations are single-threaded by
  contract, and host parallelism runs whole simulations in separate
  processes outside ``src/repro`` (``benchmarks/perf/pool.py``)

**Hot path** — allocation discipline for the compiled-core on-ramp:

* ``missing-slots``   — classes in hot modules must declare ``__slots__``
  (dataclasses must pass ``slots=True``)
* ``hot-closure``     — no ``lambda`` / nested ``def`` inside functions
  marked ``# simlint: hot``
* ``mutable-default`` — mutable default argument values (repo-wide; they
  are shared across calls and across *ranks*, a cross-rank
  state-bleed hazard on top of the classic footgun)

The visitor is a single pass per file; rule activation per file is
decided by :class:`tools.simlint.config.Config` scopes before the walk.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

#: rule id -> one-line description (the ``--rules`` catalogue; ids are the
#: names accepted inside an ignore suppression's brackets)
RULES: dict[str, str] = {
    "wall-clock": "host clock read (time.time/monotonic/perf_counter, datetime.now)",
    "raw-random": "randomness not routed through repro.simulator.rng",
    "unordered-iter": "iteration over a set or unsorted filesystem listing",
    "id-order": "id() used in simulation code (address-dependent ordering)",
    "env-read": "environment read inside a simulated path",
    "host-thread": "host thread/process/async machinery inside simulated code",
    "missing-slots": "class in a hot module without __slots__",
    "hot-closure": "closure/lambda allocated inside a `# simlint: hot` function",
    "mutable-default": "mutable default argument value",
    "unused-ignore": "simlint suppression that suppresses nothing",
    "syntax-error": "file does not parse",
}

DETERMINISM_RULES = frozenset(
    ["wall-clock", "raw-random", "unordered-iter", "id-order", "env-read",
     "host-thread"]
)
HOTPATH_RULES = frozenset(["missing-slots", "hot-closure", "mutable-default"])


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    suppressed: bool = False

    def render(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}{tag}"


# --------------------------------------------------------------------- #
# name tables

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: call targets that are nondeterministic however they are used
_RAW_RANDOM_CALLS = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}
_RAW_RANDOM_PREFIXES = ("random.", "secrets.")

#: numpy.random callables that are deterministic *only when seeded*
_NUMPY_SEEDED_OK = {"numpy.random.default_rng", "numpy.random.SeedSequence"}

_FS_ORDER = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}

_ENV_READS = {"os.environ", "os.getenv", "os.environb", "os.putenv"}

#: top-level modules that introduce host concurrency — any import inside
#: simulated code is a violation (simulations are single-threaded by
#: contract; host parallelism runs whole simulations in separate
#: processes, outside src/repro)
_HOST_THREAD_MODULES = {
    "threading",
    "_thread",
    "multiprocessing",
    "concurrent",
    "asyncio",
}

#: call targets that spawn host threads/processes without an import of
#: the modules above
_HOST_THREAD_CALLS = {"os.fork", "os.forkpty", "os.posix_spawn", "os.spawnv"}

#: class bases that manage their own layout (no __slots__ expected)
_SLOTS_EXEMPT_BASES = {
    "NamedTuple",
    "Protocol",
    "TypedDict",
    "Enum",
    "IntEnum",
    "StrEnum",
    "Flag",
    "IntFlag",
}

_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "deque",
    "defaultdict",
    "Counter",
    "OrderedDict",
}

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)


class _Scope:
    """One lexical scope: tracks names bound to set-valued expressions."""

    __slots__ = ("set_names", "hot")

    def __init__(self, hot: bool = False):
        self.set_names: set[str] = set()
        self.hot = hot


class RuleVisitor(ast.NodeVisitor):
    """Single-pass visitor; collects findings for the active rules."""

    def __init__(
        self,
        relpath: str,
        active: set[str],
        hot_lines: set[int],
        rng_module: bool = False,
    ):
        self.relpath = relpath
        self.active = active
        #: physical lines carrying a `# simlint: hot` marker
        self.hot_lines = hot_lines
        self.rng_module = rng_module
        self.findings: list[Finding] = []
        #: import alias -> real dotted module (e.g. np -> numpy)
        self.modules: dict[str, str] = {}
        #: from-import alias -> real dotted name (e.g. datetime -> datetime.datetime)
        self.from_names: dict[str, str] = {}
        self.scopes: list[_Scope] = [_Scope()]

    # -- plumbing ------------------------------------------------------- #

    def report(self, node: ast.AST, rule: str, message: str) -> None:
        if rule in self.active:
            self.findings.append(
                Finding(
                    self.relpath,
                    getattr(node, "lineno", 1),
                    getattr(node, "col_offset", 0) + 1,
                    rule,
                    message,
                )
            )

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted name of ``node`` with import aliases substituted.

        Only resolves chains rooted at an imported module or from-imported
        name — ``self.anything`` and local variables resolve to ``None``,
        which is what keeps e.g. ``self.sim.now`` out of the wall-clock
        rule's reach.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self.modules:
            base = self.modules[root]
        elif root in self.from_names:
            base = self.from_names[root]
        else:
            return None
        return ".".join([base, *reversed(parts)]) if parts else base

    # -- imports -------------------------------------------------------- #

    def _check_host_thread_import(self, node: ast.AST, module: str) -> None:
        if module.split(".")[0] in _HOST_THREAD_MODULES:
            self.report(
                node,
                "host-thread",
                f"import of `{module}` introduces host concurrency; "
                "simulations are single-threaded — host parallelism belongs "
                "outside src/repro (one whole simulation per worker process)",
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name.split(".")[0]] = alias.name
            if alias.name == "random" and not self.rng_module:
                self.report(
                    node,
                    "raw-random",
                    "import of stdlib `random` — use repro.simulator.rng streams",
                )
            self._check_host_thread_import(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        for alias in node.names:
            self.from_names[alias.asname or alias.name] = f"{module}.{alias.name}"
        if module == "random" and not self.rng_module:
            self.report(
                node,
                "raw-random",
                "import from stdlib `random` — use repro.simulator.rng streams",
            )
        self._check_host_thread_import(node, module)
        self.generic_visit(node)

    # -- determinism: name-table rules ---------------------------------- #

    def _check_resolved_use(self, node: ast.AST, dotted: str) -> None:
        if dotted in _WALL_CLOCK:
            self.report(
                node,
                "wall-clock",
                f"`{dotted}` reads the host clock; simulated time lives on "
                "`Simulator.now`",
            )
        elif dotted in _ENV_READS or dotted.startswith("os.environ."):
            self.report(
                node,
                "env-read",
                f"`{dotted}`: simulation behavior must be a pure function of "
                "(config, seed), not the environment",
            )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        dotted = self.resolve(node)
        if dotted is not None:
            self._check_resolved_use(node, dotted)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            dotted = self.resolve(node)
            if dotted is not None:
                self._check_resolved_use(node, dotted)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        dotted = self.resolve(func)
        if dotted is not None:
            self._check_random_call(node, dotted)
            if dotted in _HOST_THREAD_CALLS:
                self.report(
                    node,
                    "host-thread",
                    f"`{dotted}` spawns a host process from inside simulated "
                    "code; fork whole simulations outside src/repro instead",
                )
            if dotted in _FS_ORDER:
                self.report(
                    node,
                    "unordered-iter",
                    f"`{dotted}` returns entries in unsorted filesystem order; "
                    "wrap in sorted(...)",
                )
        if isinstance(func, ast.Name) and func.id == "id":
            self.report(
                node,
                "id-order",
                "id() is a CPython address — any ordering or keying derived "
                "from it varies across runs",
            )
        # list(s)/tuple(s)/iter(s)/enumerate(s) over a set expression
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple", "iter", "enumerate")
            and node.args
            and self._is_set_expr(node.args[0])
        ):
            self.report(
                node,
                "unordered-iter",
                f"{func.id}() over a set iterates in hash order; sort first",
            )
        self.generic_visit(node)

    def _check_random_call(self, node: ast.Call, dotted: str) -> None:
        if self.rng_module:
            return
        if dotted in _RAW_RANDOM_CALLS or dotted.startswith(_RAW_RANDOM_PREFIXES):
            self.report(
                node,
                "raw-random",
                f"`{dotted}` is nondeterministic; draw from a named "
                "repro.simulator.rng stream",
            )
        elif dotted.startswith("numpy.random."):
            if dotted in _NUMPY_SEEDED_OK:
                if not node.args and not node.keywords:
                    self.report(
                        node,
                        "raw-random",
                        f"unseeded `{dotted}()` draws OS entropy; pass an "
                        "explicit seed (or use repro.simulator.rng)",
                    )
            else:
                self.report(
                    node,
                    "raw-random",
                    f"`{dotted}` uses numpy's global RNG state; construct a "
                    "seeded Generator instead",
                )

    # -- determinism: set iteration ------------------------------------- #

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return any(node.id in scope.set_names for scope in reversed(self.scopes))
        return False

    def _track_assignment(self, target: ast.AST, value: ast.AST | None) -> None:
        if value is None or not isinstance(target, ast.Name):
            return
        scope = self.scopes[-1]
        if self._is_set_expr(value):
            scope.set_names.add(target.id)
        else:
            scope.set_names.discard(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._track_assignment(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._track_assignment(node.target, node.value)
        self.generic_visit(node)

    def _check_iter(self, iter_node: ast.AST) -> None:
        if self._is_set_expr(iter_node):
            self.report(
                iter_node,
                "unordered-iter",
                "iterating a set: order is hash-dependent (and seed-dependent "
                "for str members); iterate sorted(...) or an ordered structure",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for comp in node.generators:  # type: ignore[attr-defined]
            self._check_iter(comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # -- hot path ------------------------------------------------------- #

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if "missing-slots" in self.active and not self._slots_exempt(node):
            if not self._declares_slots(node):
                self.report(
                    node,
                    "missing-slots",
                    f"class `{node.name}` in a hot module must declare "
                    "__slots__ (dataclasses: @dataclass(slots=True))",
                )
        self.scopes.append(_Scope())
        self.generic_visit(node)
        self.scopes.pop()

    def _slots_exempt(self, node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else None
            )
            if name is None:
                continue
            if name in _SLOTS_EXEMPT_BASES:
                return True
            if name.endswith(("Exception", "Error", "Warning")):
                return True
        return False

    def _declares_slots(self, node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            if isinstance(deco, ast.Call):
                name = deco.func
                base = name.attr if isinstance(name, ast.Attribute) else (
                    name.id if isinstance(name, ast.Name) else ""
                )
                if base == "dataclass":
                    return any(
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                        for kw in deco.keywords
                    )
            else:
                base = deco.attr if isinstance(deco, ast.Attribute) else (
                    deco.id if isinstance(deco, ast.Name) else ""
                )
                if base == "dataclass":
                    return False  # bare @dataclass never sets slots
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                targets = [
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                ]
                if "__slots__" in targets:
                    return True
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "__slots__"
                ):
                    return True
        return False

    def _function_is_hot(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        candidates = {node.lineno, node.lineno - 1}
        candidates.update(d.lineno for d in node.decorator_list)
        return bool(candidates & self.hot_lines)

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        self._check_defaults(node.args, node)
        enclosing_hot = self.scopes[-1].hot
        hot = self._function_is_hot(node)
        if enclosing_hot:
            self.report(
                node,
                "hot-closure",
                f"nested function `{node.name}` allocates a closure per call "
                "of its hot enclosing function; hoist it to module/class level",
            )
        self.scopes.append(_Scope(hot=hot or enclosing_hot))
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node.args, node)
        if self.scopes[-1].hot:
            self.report(
                node,
                "hot-closure",
                "lambda allocates a closure per call of its hot enclosing "
                "function; hoist it or pass args through the scheduler",
            )
        self.scopes.append(_Scope(hot=self.scopes[-1].hot))
        self.generic_visit(node)
        self.scopes.pop()

    def _check_defaults(self, args: ast.arguments, owner: ast.AST) -> None:
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            if isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
            ):
                self.report(
                    default,
                    "mutable-default",
                    "mutable default argument is shared across every call "
                    "(and every rank); default to None and allocate inside",
                )
