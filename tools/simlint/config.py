"""simlint configuration: rule → package-glob scope mapping.

A rule only fires in files whose repo-relative posix path matches one of
the rule's scope globs (``fnmatch`` semantics: ``*`` crosses directory
separators, so ``src/repro/core/**`` covers the whole subtree).  The
defaults below encode the repository's determinism contract:

* **determinism rules** guard every simulated path (``src/repro/``) —
  the packages whose execution must be a pure function of
  ``(config, seed)`` for the recorded BENCH checksums to be meaningful;
* **hot-path rules** guard the modules the compiled-core roadmap item
  wants to hand to mypyc: the engine, the network, the per-rank process
  and daemon state, and the determinant structures.

Projects override scopes in ``pyproject.toml``::

    [tool.simlint]
    exclude = ["tests/fixtures/*"]

    [tool.simlint.scopes]
    "missing-slots" = ["src/repro/simulator/engine.py"]

Keys under ``[tool.simlint.scopes]`` replace the default scope for that
rule only; ``exclude`` globs are dropped from every scan.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

#: packages whose execution feeds simulated results (determinism scope)
_SIM_PACKAGES = [
    "src/repro/core/*",
    "src/repro/simulator/*",
    "src/repro/runtime/*",
    "src/repro/mpi/*",
]

#: every simulated *or* experiment path — wall clocks and raw randomness
#: are banned a layer wider than the unordered-iteration rules because a
#: wall-clock read in an experiment driver corrupts recorded results just
#: as surely as one in the engine
_ALL_SRC = ["src/repro/*", "tools/*"]

#: modules whose classes must declare ``__slots__`` (the mypyc on-ramp:
#: slotted layouts compile to struct-like attribute access)
_SLOTS_MODULES = [
    "src/repro/simulator/engine.py",
    "src/repro/simulator/network.py",
    "src/repro/simulator/partition.py",
    "src/repro/simulator/process.py",
    "src/repro/core/events.py",
    "src/repro/core/vcausal.py",
    "src/repro/runtime/daemon.py",
]

DEFAULT_SCOPES: dict[str, list[str]] = {
    # determinism family
    "wall-clock": _ALL_SRC,
    "raw-random": _ALL_SRC,
    "unordered-iter": _SIM_PACKAGES + ["tools/*"],
    "id-order": _SIM_PACKAGES,
    "env-read": _SIM_PACKAGES,
    # host concurrency is banned across all of src/repro (not just the
    # four sim packages): a thread anywhere under the import graph of a
    # simulation breaks single-threaded determinism.  Host parallelism
    # lives outside — benchmarks/perf/pool.py runs one whole simulation
    # per worker process.
    "host-thread": ["src/repro/*"],
    # hot-path family
    "missing-slots": _SLOTS_MODULES,
    "hot-closure": ["*"],
    "mutable-default": ["*"],
}

#: modules allowed to construct numpy Generators however they like — the
#: single sanctioned randomness seam (see docs/ANALYSIS.md)
DEFAULT_RNG_MODULES = ["src/repro/simulator/rng.py"]

DEFAULT_EXCLUDE = ["tests/fixtures/*", ".*"]


@dataclass
class Config:
    """Resolved simlint configuration."""

    scopes: dict[str, list[str]] = field(
        default_factory=lambda: dict(DEFAULT_SCOPES)
    )
    rng_modules: list[str] = field(
        default_factory=lambda: list(DEFAULT_RNG_MODULES)
    )
    exclude: list[str] = field(default_factory=lambda: list(DEFAULT_EXCLUDE))
    #: report suppression comments that suppress nothing — keeps stale
    #: justifications from outliving the code they excused
    warn_unused_ignores: bool = True

    def excluded(self, relpath: str) -> bool:
        return any(fnmatch(relpath, glob) for glob in self.exclude)

    def active_rules(self, relpath: str) -> set[str]:
        """Rule ids whose scope covers ``relpath``."""
        return {
            rule
            for rule, globs in self.scopes.items()
            if any(fnmatch(relpath, glob) for glob in globs)
        }

    def is_rng_module(self, relpath: str) -> bool:
        return any(fnmatch(relpath, glob) for glob in self.rng_modules)


def load_config(root: Path) -> Config:
    """Build a :class:`Config`, overlaying ``[tool.simlint]`` from
    ``<root>/pyproject.toml`` when present."""
    config = Config()
    pyproject = root / "pyproject.toml"
    if not pyproject.is_file():
        return config
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("simlint", {})
    for rule, globs in table.get("scopes", {}).items():
        config.scopes[rule] = list(globs)
    if "exclude" in table:
        config.exclude = list(table["exclude"])
    if "rng-modules" in table:
        config.rng_modules = list(table["rng-modules"])
    if "warn-unused-ignores" in table:
        config.warn_unused_ignores = bool(table["warn-unused-ignores"])
    return config
