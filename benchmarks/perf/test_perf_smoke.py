"""Smoke + opt-in full runs of the perf benchmark driver.

The smoke test runs the ``--quick`` scenario set in-process so tier-1 CI
verifies the driver end-to-end in seconds; the full run is marked
``bench`` and only executes with ``pytest --run-bench``.
"""

import json

import pytest

from benchmarks.perf import run_bench


def test_quick_mode_runs_in_seconds_and_is_deterministic():
    results = run_bench.run_all(quick=True, repeats=2, verbose=False)
    assert set(results) == set(run_bench.scenarios(quick=True))
    for name, r in results.items():
        assert r["sim_events"] > 0, name
        assert r["events_per_s"] > 0, name
        # measure() raises on checksum divergence between repeats, so
        # reaching this point already proves determinism; sanity-check the
        # recorded checksum shape anyway
        assert r["checksum"]["events"] == r["sim_events"]
    # the sparse 256-rank and fault-injection paths must be part of the
    # tier-1 smoke so they cannot rot between full --run-bench runs
    assert "nas_cg256_vcausal_sparse" in results
    fault = results["nas_cg8_vcausal_fault"]["checksum"]
    assert fault["recoveries"] == 1
    assert fault["replayed"] > 0
    # ... as must the macro-event engine paths: the coalesced-vs-reference
    # NAS pair must be bit-identical in simulation, the 512-rank scenario
    # must complete, and the same-timestamp/fan-out microbench pair must be
    # bit-identical with a real coalescing speedup (full-size recorded runs
    # show >2x; the floor here is loose only to tolerate CI noise)
    coal = results["nas_cg256_vcausal_sparse"]["checksum"]
    eref = results["nas_cg256_sparse_engine_ref"]["checksum"]
    assert coal == eref
    assert results["nas_cg512_vcausal_sparse"]["checksum"]["messages"] > 0
    ss = results["engine_samestamp"]
    ss_ref = results["engine_samestamp_reference"]
    assert ss["checksum"] == ss_ref["checksum"]
    assert ss_ref["wall_s"] >= 1.3 * ss["wall_s"], (
        f"coalesced engine speedup regressed: reference {ss_ref['wall_s']}s "
        f"vs coalesced {ss['wall_s']}s"
    )
    # ... as must the EL-saturation and sharded-EL sync-topology paths
    saturation = results["nas_lu16_el_saturation"]["checksum"]
    assert saturation["el_stored"] > 0
    assert saturation["el_peak_queue"] > 1  # LU-16 actually queues at the EL
    multicast = results["nas_cg256_el16_multicast"]["checksum"]
    tree = results["nas_cg256_el16_tree"]["checksum"]
    assert multicast["sync_messages"] == multicast["sync_rounds"] * 16 * 15
    assert tree["sync_messages"] == tree["sync_rounds"] * 2 * 15
    # the point of the tree topology: O(shards) not O(shards²) per round
    assert tree["sync_messages"] < multicast["sync_messages"]
    # ... and the dirty-creator worklist pair: identical simulated results,
    # far fewer creator sequences scanned on the worklist side
    wl = results["nas_lu256_noel_worklist"]["checksum"]
    fs = results["nas_lu256_noel_fullscan"]["checksum"]
    sim_only = lambda c: {k: v for k, v in c.items() if k != "seqs_scanned"}
    assert sim_only(wl) == sim_only(fs)
    assert fs["seqs_scanned"] >= 5 * wl["seqs_scanned"]
    # ... and the infrastructure-fault scenarios (failure-domain storm,
    # EL-shard failover, checkpoint-server outage): a faulty run that does
    # not reproduce its fault-free reference's application results is a
    # correctness bug, not a slowdown
    ref = results["nas_cg256_el4_reference"]["checksum"]
    storm = results["nas_cg256_el4_storm"]["checksum"]
    assert storm["recoveries"] >= 16  # two domains of 8 ranks, plus cascades
    assert storm["replayed"] > 0
    assert storm["result_fold"] == ref["result_fold"]
    shard = results["nas_cg256_el4_shardloss"]["checksum"]
    assert shard["el_failovers"] == 1
    assert shard["el_disk_recovered"] > 0  # absorbed off the dead shard's disk
    assert shard["el_relogged"] > 0  # unsynced determinants re-sent by creators
    assert shard["result_fold"] == ref["result_fold"]
    outage = results["nas_mg16_ckpt_outage"]["checksum"]
    ck_ref = results["nas_mg16_ckpt_reference"]["checksum"]
    assert outage["ckpt_outages"] == 1
    assert outage["ckpt_stores_aborted"] >= 16  # a whole wave aborted in flight
    assert outage["ckpt_ticks_skipped"] >= 1
    assert outage["recoveries"] == 1
    assert outage["result_fold"] == ck_ref["result_fold"]
    # ... and the fused-dispatch pair: the wiring-time-compiled delivery
    # closures (delivery_fastpath, the default every scenario above runs
    # under) must be bit-identical to the layered reference chain, and the
    # dispatch microbench must show the fusion actually removes frame
    # overhead (recorded runs show well above the floor; 1.2x tolerates CI
    # noise on a loaded box)
    disp_ref = results["nas_cg256_sparse_dispatch_ref"]["checksum"]
    assert coal == disp_ref
    # ... and the partitioned-vs-single pair: the conservative-window
    # facade (partition_ranks=4) must reproduce the single-engine cg512
    # run bit-for-bit — the tentpole identity the partition conformance
    # suite property-tests at small scale, pinned here at bench scale
    partitioned = results["nas_cg512_partitioned"]["checksum"]
    assert partitioned == results["nas_cg512_vcausal_sparse"]["checksum"]
    mb = run_bench.dispatch_microbench(n=20_000, passes=2)
    assert mb["speedup"] >= 1.2, (
        f"fused dispatch speedup regressed: layered {mb['layered_s']}s "
        f"vs fused {mb['fused_s']}s ({mb['speedup']}x)"
    )
    # the infra scenarios run at full size even in quick mode, so this smoke
    # run must reproduce the recorded BENCH_6 checksums bit-for-bit — the
    # robustness scenarios cannot rot between full --run-bench runs
    recorded = json.loads((run_bench.REPO_ROOT / "BENCH_6.json").read_text())
    for name in (
        "nas_cg256_el4_storm",
        "nas_cg256_el4_shardloss",
        "nas_cg256_el4_reference",
        "nas_mg16_ckpt_outage",
        "nas_mg16_ckpt_reference",
    ):
        assert results[name]["checksum"] == recorded["scenarios"][name]["checksum"], name


def test_check_docs_flags_unreferenced_bench_files(tmp_path):
    (tmp_path / "docs").mkdir()
    (tmp_path / "docs" / "BENCHMARKING.md").write_text("history: BENCH_1, BENCH_20")
    (tmp_path / "BENCH_1.json").write_text("{}")
    (tmp_path / "BENCH_2.json").write_text("{}")  # BENCH_20 must not cover it
    (tmp_path / "BENCH_20.json").write_text("{}")
    assert run_bench.check_docs(tmp_path) == ["BENCH_2.json"]


def test_check_docs_passes_on_this_repo():
    """Every recorded BENCH file must be documented in BENCHMARKING.md."""
    assert run_bench.check_docs() == []
    assert run_bench.main(["--check-docs"]) == 0


def test_next_output_path_derives_index(tmp_path):
    assert run_bench.next_output_path(tmp_path).name == "BENCH_1.json"
    (tmp_path / "BENCH_1.json").write_text("{}")
    (tmp_path / "BENCH_7.json").write_text("{}")
    (tmp_path / "BENCH_x.json").write_text("{}")  # non-numeric: ignored
    assert run_bench.next_output_path(tmp_path).name == "BENCH_8.json"


def test_report_doc_records_git_commit():
    doc = run_bench.report_doc({}, repeats=1, quick=True, baseline_meta=None)
    commit = doc["git_commit"]
    assert commit is None or (len(commit) == 40 and set(commit) <= set("0123456789abcdef"))


def test_quick_cli_writes_report(tmp_path):
    out = tmp_path / "bench_quick.json"
    assert run_bench.main(["--quick", "--output", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro-bench-v1"
    assert doc["quick"] is True
    assert set(doc["scenarios"]) == set(run_bench.scenarios(quick=True))


@pytest.mark.bench
def test_full_benchmark_meets_recorded_baseline(tmp_path):
    """Full scenario set vs the recorded seed baseline (opt-in: --run-bench)."""
    out = tmp_path / "bench_full.json"
    assert run_bench.main(["--repeats", "3", "--output", str(out)]) == 0
    doc = json.loads(out.read_text())
    for name, r in doc["scenarios"].items():
        if r.get("speedup") is not None:
            assert r["results_match_baseline"], name
