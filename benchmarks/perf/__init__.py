"""Persistent performance benchmark harness (see README.md here)."""
