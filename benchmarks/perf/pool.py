"""Host-side scenario pool for ``run_bench.py --jobs N``.

This is one of exactly two places in the repository where host-level
parallelism is allowed (the other is ``src/repro/hostexec``, the
multiprocess partition backend; the ``host-thread`` simlint rule forbids
``threading`` / ``multiprocessing`` / ``concurrent`` / ``asyncio``
imports everywhere else under ``src/repro``): simulations must stay
single-threaded and deterministic, so parallelism lives strictly
*between* simulations, one whole scenario per worker process.

Design constraints, in order:

* **Per-scenario walls stay honest.**  Each scenario's repeats — and in
  particular the interleaved baseline pairs (coalesced vs reference,
  fused vs layered) — run inside one worker process, exactly as in the
  serial driver, so intra-scenario comparisons never cross a process
  boundary.  Scenario-to-scenario walls *are* noisier under ``--jobs``
  (workers share cores and caches), so every record is annotated
  ``"contended": true`` and ``compare()`` refuses to compute a
  vs-baseline speedup from it; docs/BENCHMARKING.md documents when a
  recorded wall is comparable.
* **Dead workers fail loudly.**  A worker killed mid-scenario (signal,
  OOM) must fail *that scenario* with an error naming it — not hang the
  collation or silently drop the record.  ``ProcessPoolExecutor``
  breaks every outstanding future when a worker dies, and the future →
  scenario map turns that into a named error.
* **Deterministic collation.**  Futures complete out of order; results
  are re-keyed into the scenario registry's order before anything is
  reported, so the emitted JSON is byte-stable for a given set of
  checksums regardless of scheduling.
* **Scenarios travel by name.**  The registry maps names to lambdas,
  which do not pickle; workers re-import the registry and look the
  scenario up by name, so the parent only ships ``(name, quick,
  repeats)`` tuples.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any


def _run_scenario(name: str, quick: bool, repeats: int) -> dict[str, Any]:
    """Worker entry point: rebuild the scenario by name and measure it."""
    from benchmarks.perf import run_bench

    fn = run_bench.scenarios(quick)[name]
    return run_bench.measure(fn, repeats)


def run_parallel(
    quick: bool, repeats: int, jobs: int, verbose: bool = True
) -> dict[str, dict[str, Any]]:
    """Measure every scenario across ``jobs`` worker processes.

    Returns the same ``{name: measure(...)}`` mapping as the serial
    ``run_all``, in scenario-registry order, with each record marked
    ``contended`` so downstream comparisons know these walls shared
    cores.  Raises ``RuntimeError`` naming the scenario whose worker
    died instead of hanging the sweep.
    """
    from benchmarks.perf import run_bench

    names = list(run_bench.scenarios(quick))
    # fork shares the parent's imported modules (no re-import cost and no
    # sys.path re-derivation); fall back to the platform default where
    # fork is unavailable (the worker re-imports by module name then)
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        ctx = multiprocessing.get_context()
    collected: dict[str, dict[str, Any]] = {}
    with ProcessPoolExecutor(max_workers=max(1, jobs), mp_context=ctx) as pool:
        futures = {
            name: pool.submit(_run_scenario, name, quick, repeats)
            for name in names
        }
        for name, future in futures.items():
            try:
                result = future.result()
            except BrokenProcessPool:
                # a dead worker breaks every outstanding future at once;
                # the scenarios without a completed result are the ones
                # whose measurements were lost (the killed one among them)
                lost = [
                    n
                    for n, f in futures.items()
                    if f.cancelled() or (f.done() and f.exception() is not None)
                ]
                raise RuntimeError(
                    "benchmark worker died mid-scenario (killed or out of "
                    "memory); lost scenarios: " + ", ".join(lost)
                ) from None
            result["contended"] = True
            collected[name] = result
            if verbose:
                print(
                    f"{name:28s} {result['wall_s']:9.4f} s   "
                    f"{result['events_per_s']:>12,.0f} ev/s   "
                    f"({result['sim_events']:,} events)"
                )
    # registry-order collation: identical shape to the serial driver
    return {name: collected[name] for name in names}
