"""Host-side scenario pool for ``run_bench.py --jobs N``.

This is the **only** place in the repository where host-level parallelism
is allowed (the ``host-thread`` simlint rule forbids ``threading`` /
``multiprocessing`` / ``concurrent`` / ``asyncio`` imports everywhere
under ``src/repro``): simulations must stay single-threaded and
deterministic, so parallelism lives strictly *between* simulations, one
whole scenario per worker process.

Design constraints, in order:

* **Per-scenario walls stay honest.**  Each scenario's repeats — and in
  particular the interleaved baseline pairs (coalesced vs reference,
  fused vs layered) — run inside one worker process, exactly as in the
  serial driver, so intra-scenario comparisons never cross a process
  boundary.  Scenario-to-scenario walls *are* noisier under ``--jobs``
  (workers share cores and caches); docs/BENCHMARKING.md documents when
  a recorded wall is comparable.
* **Deterministic collation.**  Workers return out of order
  (``imap_unordered``); results are re-keyed into the scenario
  registry's order before anything is reported, so the emitted JSON is
  byte-stable for a given set of checksums regardless of scheduling.
* **Scenarios travel by name.**  The registry maps names to lambdas,
  which do not pickle; workers re-import the registry and look the
  scenario up by name, so the parent only ships ``(name, quick,
  repeats)`` tuples.
"""

from __future__ import annotations

import multiprocessing
from typing import Any


def _run_scenario(job: tuple[str, bool, int]) -> tuple[str, dict[str, Any]]:
    """Worker entry point: rebuild the scenario by name and measure it."""
    name, quick, repeats = job
    from benchmarks.perf import run_bench

    fn = run_bench.scenarios(quick)[name]
    return name, run_bench.measure(fn, repeats)


def run_parallel(
    quick: bool, repeats: int, jobs: int, verbose: bool = True
) -> dict[str, dict[str, Any]]:
    """Measure every scenario across ``jobs`` worker processes.

    Returns the same ``{name: measure(...)}`` mapping as the serial
    ``run_all``, in scenario-registry order.
    """
    from benchmarks.perf import run_bench

    names = list(run_bench.scenarios(quick))
    # fork shares the parent's imported modules (no re-import cost and no
    # sys.path re-derivation); fall back to the platform default where
    # fork is unavailable (the worker re-imports by module name then)
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        ctx = multiprocessing.get_context()
    collected: dict[str, dict[str, Any]] = {}
    with ctx.Pool(processes=max(1, jobs)) as pool:
        jobs_iter = pool.imap_unordered(
            _run_scenario, [(name, quick, repeats) for name in names]
        )
        for name, result in jobs_iter:
            collected[name] = result
            if verbose:
                print(
                    f"{name:28s} {result['wall_s']:9.4f} s   "
                    f"{result['events_per_s']:>12,.0f} ev/s   "
                    f"({result['sim_events']:,} events)"
                )
    # registry-order collation: identical shape to the serial driver
    return {name: collected[name] for name in names}
