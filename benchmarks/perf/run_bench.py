"""Performance benchmark driver: engine microbenches + paper scenarios.

Produces the repo-root ``BENCH_<n>.json`` trajectory files.  Each scenario
is run ``--repeats`` times (default 3) with fixed seeds; the minimum wall
time is reported (least-noise estimator) together with a determinism
checksum (simulated event counts, simulated completion time, piggyback
totals).  A run is only comparable to a recorded baseline when the
checksums match exactly — a speedup on different simulation results is
meaningless.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.run_bench                 # full run
    PYTHONPATH=src python -m benchmarks.perf.run_bench --jobs 4        # pooled run
    PYTHONPATH=src python -m benchmarks.perf.run_bench --quick         # CI smoke
    PYTHONPATH=src python -m benchmarks.perf.run_bench --record-baseline
    PYTHONPATH=src python -m benchmarks.perf.run_bench --check-docs    # docs audit

The ``--record-baseline`` mode writes ``benchmarks/perf/baseline_seed.json``
(the reference this repo's speedups are measured against); the default mode
reads it and writes the next unused ``BENCH_<n>.json`` at the repo root
with per-scenario speedups (the index is derived from the BENCH files
already present, so each PR's run lands in a fresh file).  ``--quick``
shrinks every scenario so the whole driver finishes in seconds; it never
overwrites the baseline and skips the BENCH file unless ``--output`` is
given explicitly.
"""

from __future__ import annotations

import argparse
import datetime
import gc
import json
import platform
import re
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = Path(__file__).resolve().parent / "baseline_seed.json"

_BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def next_output_path(root: Path = REPO_ROOT) -> Path:
    """First unused ``BENCH_<n>.json`` path (n = highest existing + 1)."""
    taken = [
        int(m.group(1))
        for p in root.glob("BENCH_*.json")
        if (m := _BENCH_RE.match(p.name))
    ]
    return root / f"BENCH_{max(taken, default=0) + 1}.json"


def check_docs(root: Path = REPO_ROOT) -> list[str]:
    """``BENCH_<n>.json`` files at the repo root that ``docs/BENCHMARKING.md``
    does not reference by name; the trajectory convention requires every
    recorded point to be documented (``--check-docs`` fails on any)."""
    doc = root / "docs" / "BENCHMARKING.md"
    text = doc.read_text() if doc.exists() else ""
    return [
        p.name
        for p in sorted(root.glob("BENCH_*.json"))
        # word-boundary match: a documented BENCH_10 must not cover BENCH_1
        if _BENCH_RE.match(p.name)
        and not re.search(rf"\b{re.escape(p.stem)}\b", text)
    ]


def check_multiprocessing_imports(root: Path = REPO_ROOT) -> list[str]:
    """Modules under ``src/`` importing :mod:`multiprocessing` outside the
    sanctioned ``src/repro/hostexec`` package.

    The simlint ``host-thread`` rule is scoped *around* hostexec in
    ``pyproject.toml`` (it is the one place host concurrency is allowed);
    this companion check ensures the carve-out never silently widens.
    """
    import ast

    src = root / "src"
    allowed = src / "repro" / "hostexec"
    offenders = []
    for path in sorted(src.rglob("*.py")):
        if allowed in path.parents:
            continue
        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError:  # pragma: no cover - simlint reports these
            continue
        for node in ast.walk(tree):
            names = []
            if isinstance(node, ast.Import):
                names = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                names = [node.module]
            if any(n.split(".")[0] == "multiprocessing" for n in names):
                offenders.append(str(path.relative_to(root)))
                break
    return offenders


def git_commit() -> str | None:
    """Current commit hash, or None outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "-C", str(REPO_ROOT), "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    return out.stdout.strip() if out.returncode == 0 else None


# --------------------------------------------------------------------- #
# scenarios — each returns (sim_events, checksum_dict)

def engine_chain(n_chains: int, length: int):
    """Pure engine overhead: self-rescheduling callback chains."""
    from repro.simulator.engine import Simulator

    sim = Simulator()

    def chain(remaining):
        if remaining:
            sim.schedule(1e-3, chain, remaining - 1)

    for j in range(n_chains):
        sim.schedule(j * 1e-6, chain, length - 1)
    sim.run()
    return sim.events_executed, {
        "events": sim.events_executed,
        "now": round(sim.now, 9),
    }


def engine_fanout(n_events: int):
    """Bulk scheduling + drain: many pre-scheduled independent events."""
    from repro.simulator.engine import Simulator

    sim = Simulator()
    fired = [0]

    def cb():
        fired[0] += 1

    items = [((i % 997) * 1e-6, cb, ()) for i in range(n_events)]
    bulk = getattr(sim, "schedule_bulk", None)
    if bulk is not None:
        bulk(items)
    else:  # pre-bulk-API engine: push one at a time
        for delay, fn, args in items:
            sim.schedule(delay, fn, *args)
    sim.run()
    return sim.events_executed, {
        "events": sim.events_executed,
        "fired": fired[0],
        "now": round(sim.now, 9),
    }


def engine_samestamp(rounds: int, width: int, fan: int = 4, coalesce: bool = True):
    """Macro-event stress: wide same-timestamp bursts + zero-delay fan-out.

    Every round schedules ``width`` bursts at one shared timestamp (one
    macro-event bucket on the coalescing engine) and each burst
    ``call_soon``-spawns ``fan`` leaves (the now-queue).  This is the
    engine shape the coalescing engine exists for; run with
    ``coalesce=False`` to record the one-heap-entry-per-event reference
    wall on identical simulation results (the BENCH coalesced-vs-reference
    pair)."""
    from repro.simulator.engine import make_simulator

    sim = make_simulator(coalesce=coalesce)
    fired = [0]

    def leaf():
        fired[0] += 1

    def burst():
        fired[0] += 1
        call_soon = sim.call_soon
        for _ in range(fan):
            call_soon(leaf)

    sim.schedule_bulk(
        ((r + 1) * 1e-3, burst, ()) for r in range(rounds) for _ in range(width)
    )
    sim.run()
    return sim.events_executed, {
        "events": sim.events_executed,
        "fired": fired[0],
        "now": round(sim.now, 9),
    }


def pingpong(stack: str, reps: int):
    """Fig. 6 ping-pong: daemon + protocol per-message path, 2 ranks."""
    from repro.workloads.netpipe import measure_latency

    latency, result = measure_latency(stack, nbytes=1, reps=reps)
    return result.events_executed, {
        "events": result.events_executed,
        "latency_us": round(latency * 1e6, 6),
        "sim_time": round(result.sim_time, 9),
    }


def nas(bench: str, nprocs: int, stack: str, iterations: int):
    """Fig. 8/9 NAS scenario: the piggyback-heavy protocol hot path."""
    from repro.experiments.common import run_nas

    result, _info = run_nas(bench, "A", nprocs, stack, iterations=iterations)
    probes = result.probes
    return result.events_executed, {
        "events": result.events_executed,
        "sim_time": round(result.sim_time, 9),
        "pb_events": probes.total("piggyback_events_sent"),
        "pb_bytes": probes.total("piggyback_bytes_sent"),
        "messages": probes.total("app_messages_sent"),
    }


def nas_sparse(
    bench: str, nprocs: int, stack: str, iterations: int, inner=None,
    coalesce: bool = True, fastpath: bool = True, partition_ranks: int = 0,
    partition_workers: int = 0,
):
    """Scale scenario: sparse bound vectors + per-entry cost model.

    The 256/512-rank regime the dense ``× nprocs`` formulas could not
    credibly reach; ``inner`` truncates CG's inner loop in quick mode,
    ``coalesce=False`` selects the reference engine for the
    coalesced-vs-reference pair, ``fastpath=False`` the layered
    delivery stack for the fused-vs-reference dispatch pair,
    ``partition_ranks=K`` the conservative-window partitioned facade for
    the partitioned-vs-single pair, and ``partition_workers=W`` the
    shared-nothing multiprocess backend for the workers-vs-partitioned
    pair (identical checksums required on all four pairs).
    """
    from repro.experiments.common import run_nas
    from repro.runtime.config import ClusterConfig

    cfg = ClusterConfig().with_overrides(
        pb_cost_model="sparse", engine_coalesce=coalesce,
        delivery_fastpath=fastpath, partition_ranks=partition_ranks,
        partition_workers=partition_workers,
    )
    result, _info = run_nas(
        bench, "A", nprocs, stack, iterations=iterations, config=cfg,
        app_kwargs={"inner": inner} if inner is not None else None,
    )
    probes = result.probes
    return result.events_executed, {
        "events": result.events_executed,
        "sim_time": round(result.sim_time, 9),
        "pb_events": probes.total("piggyback_events_sent"),
        "pb_bytes": probes.total("piggyback_bytes_sent"),
        "messages": probes.total("app_messages_sent"),
    }


def nas_noel_scan(bench: str, nprocs: int, stack: str, iterations: int, worklist: bool):
    """Tentpole PR-4 pair: dirty-creator worklist vs full-scan reference.

    No-EL at scale is the regime where the old build loop walked every
    held creator sequence on every send (O(P) host work per message).  LU's
    pipelined wavefronts send many small messages per channel per
    iteration, so most held sequences are quiet between consecutive sends
    on a channel — exactly what the worklist skips.  Run once per build
    mode (``pb_build_worklist``): every simulated quantity must be
    bit-identical between the pair; only ``seqs_scanned`` (host-side scan
    work, surfaced via ``ProcessProbes.pb_build_seqs_scanned``) may differ,
    and the worklist side must scan ≥5× fewer sequences.
    """
    from repro.experiments.common import run_nas
    from repro.runtime.config import ClusterConfig

    cfg = ClusterConfig().with_overrides(
        pb_cost_model="sparse", pb_build_worklist=worklist
    )
    result, _info = run_nas(bench, "A", nprocs, stack, iterations=iterations, config=cfg)
    probes = result.probes
    return result.events_executed, {
        "events": result.events_executed,
        "sim_time": round(result.sim_time, 9),
        "pb_events": probes.total("piggyback_events_sent"),
        "pb_bytes": probes.total("piggyback_bytes_sent"),
        "messages": probes.total("app_messages_sent"),
        "seqs_scanned": probes.total("pb_build_seqs_scanned"),
    }


def nas_el_saturation(bench: str, nprocs: int, stack: str, iterations: int):
    """Fig. 7 regime: a single Event Logger saturated by LU-16's
    determinant stream (acks lag, pruning stalls, piggybacks regrow)."""
    from repro.experiments.common import run_nas

    result, _info = run_nas(bench, "A", nprocs, stack, iterations=iterations)
    probes = result.probes
    return result.events_executed, {
        "events": result.events_executed,
        "sim_time": round(result.sim_time, 9),
        "pb_events": probes.total("piggyback_events_sent"),
        "pb_bytes": probes.total("piggyback_bytes_sent"),
        "messages": probes.total("app_messages_sent"),
        "el_stored": probes.el_determinants_stored,
        "el_peak_queue": probes.el_peak_queue,
    }


def nas_sharded_el(
    bench: str,
    nprocs: int,
    stack: str,
    iterations: int,
    el_count: int,
    strategy: str,
    inner=None,
):
    """§VI sharded-EL scale scenario: 256 ranks over ``el_count`` shards.

    Run once per sync topology; the checksum records the shard-sync
    message/byte counts so the BENCH file documents the O(shards²)
    multicast vs O(shards) tree asymmetry at identical simulation results.

    The sync interval is pinned at 10 ms: at the default 2 ms, 16-shard
    multicast (15 peer vectors of ~2 KiB per shard per round) oversubscribes
    each shard's Fast-Ethernet NIC and the sync queues grow without bound —
    the very pathology that motivates the tree topology, but one that has
    to be dialled back for the multicast column to terminate at all.
    """
    from repro.experiments.common import run_nas
    from repro.runtime.config import ClusterConfig

    cfg = ClusterConfig().with_overrides(
        pb_cost_model="sparse", el_count=el_count, el_sync_strategy=strategy,
        el_sync_interval_s=10e-3,
    )
    result, _info = run_nas(
        bench, "A", nprocs, stack, iterations=iterations, config=cfg,
        app_kwargs={"inner": inner} if inner is not None else None,
    )
    probes = result.probes
    group = result.cluster.event_logger
    return result.events_executed, {
        "events": result.events_executed,
        "sim_time": round(result.sim_time, 9),
        "pb_events": probes.total("piggyback_events_sent"),
        "pb_bytes": probes.total("piggyback_bytes_sent"),
        "messages": probes.total("app_messages_sent"),
        "sync_rounds": group.sync_rounds,
        "sync_messages": group.sync_messages,
        "sync_bytes": group.sync_bytes,
    }


def nas_fault(bench: str, nprocs: int, stack: str, iterations: int, kill_s: float):
    """Fig. 10 regime: kill rank 0 mid-run, recover from the EL, replay."""
    from repro.experiments.common import run_nas
    from repro.runtime.failure import OneShotFaults

    result, _info = run_nas(
        bench, "A", nprocs, stack, iterations=iterations,
        fault_plan=OneShotFaults([(kill_s, 0)]),
    )
    probes = result.probes
    recoveries = probes.recoveries
    return result.events_executed, {
        "events": result.events_executed,
        "sim_time": round(result.sim_time, 9),
        "pb_events": probes.total("piggyback_events_sent"),
        "recoveries": len(recoveries),
        "events_collected": sum(r.events_collected for r in recoveries),
        "replayed": probes.total("replayed_receptions"),
        "result_fold": result_fold(result.results),
    }


def _el4_failover_config(coalesce: bool = True):
    """Shared config of the CG-256 infrastructure-fault scenarios: four EL
    shards (tree sync), failure domains, shard failover and the retry layer
    armed.  The fault-free reference runs the *same* config so the faulty
    runs can be checked for identical application results."""
    from repro.runtime.config import ClusterConfig

    return ClusterConfig().with_overrides(
        pb_cost_model="sparse",
        engine_coalesce=coalesce,
        el_count=4,
        el_sync_strategy="tree",
        el_sync_interval_s=10e-3,
        el_failover=True,
        ckpt_server_failover=True,
        fault_domains=32,
        rpc_timeout_s=25e-3,
    )


def _infra_checksum(result) -> dict:
    """Checksum fields shared by the infrastructure-fault scenarios."""
    probes = result.probes
    return {
        "events": result.events_executed,
        "sim_time": round(result.sim_time, 9),
        "messages": probes.total("app_messages_sent"),
        "recoveries": len(probes.recoveries),
        "replayed": probes.total("replayed_receptions"),
        "rpc_retries": probes.rpc_total("retries"),
        "rpc_timeouts": probes.rpc_total("timeouts"),
        "result_fold": result_fold(result.results),
    }


def nas_infra_fault(fault: str):
    """Robustness scenarios: CG-256 under infrastructure faults.

    One config (:func:`_el4_failover_config`), three fault regimes:

    * ``"storm"`` — a burst of two failure-domain kills (16 ranks) inside
      a 100 ms window, with restart-triggered cascade re-kills;
    * ``"shardloss"`` — EL shard 1 dies mid-run; survivors absorb its key
      range off disk and re-request unsynced determinants from creators;
    * ``"none"`` — the fault-free reference.

    Rank kills and shard kills stay in separate regimes on purpose: the
    simultaneous loss of a creator and its EL shard is out of scope (see
    docs/ARCHITECTURE.md).  Every faulty run must fold to the reference's
    ``result_fold`` — recovery that changes application results is a bug,
    not a slowdown.
    """
    from repro.experiments.common import run_nas
    from repro.runtime.failure import InfraFaults, StormFaults

    plan = {
        "storm": lambda: StormFaults(
            start_s=0.3, window_s=0.1, kills=2,
            cascade_p=0.5, cascade_delay_s=0.05, seed=1,
        ),
        "shardloss": lambda: InfraFaults(el_shard_kills=[(0.35, 1)]),
        "none": lambda: None,
    }[fault]()
    result, _info = run_nas(
        "cg", "A", 256, "vcausal", iterations=1,
        config=_el4_failover_config(), fault_plan=plan,
        app_kwargs={"inner": 3},
    )
    probes = result.probes
    checksum = _infra_checksum(result)
    checksum.update(
        el_failovers=probes.el_failovers,
        el_disk_recovered=probes.el_disk_records_recovered,
        el_relogged=probes.el_relogged_determinants,
    )
    return result.events_executed, checksum


def nas_ckpt_outage(fault: bool):
    """First checkpoint-server scenario: MG-16 (previously unbenchmarked)
    under coordinated checkpointing with a mid-run server outage.

    The server dies at 0.41 s with a full wave of image transfers in
    flight — every one of them aborts at delivery (transactional
    contract), the daemons back off and re-store after the 0.65 s
    restore, the scheduler skips ticks during the outage, and a rank
    killed after the restore recovers with results identical to the
    fault-free reference (``fault=False``).
    """
    from repro.experiments.common import run_nas
    from repro.runtime.config import ClusterConfig
    from repro.runtime.failure import CompositeFaults, InfraFaults, OneShotFaults

    cfg = ClusterConfig().with_overrides(
        ckpt_server_failover=True, rpc_timeout_s=25e-3
    )
    plan = None
    if fault:
        plan = CompositeFaults(plans=[
            InfraFaults(ckpt_outages=[(0.41, 0.65)]),
            OneShotFaults([(0.75, 3)]),
        ])
    result, _info = run_nas(
        "mg", "A", 16, "vcausal", iterations=3, config=cfg,
        checkpoint_policy="coordinated", checkpoint_interval_s=0.2,
        fault_plan=plan,
    )
    probes = result.probes
    checksum = _infra_checksum(result)
    checksum.update(
        ckpt_outages=probes.ckpt_outages,
        ckpt_stores_aborted=probes.ckpt_stores_aborted,
        ckpt_ticks_skipped=result.cluster.scheduler.ticks_skipped,
    )
    return result.events_executed, checksum


def result_fold(results: dict) -> int:
    """Deterministic checksum of the per-rank application results."""
    fold = 0
    for rank, value in sorted(results.items()):
        fold = (fold * 33 + rank * 7919 + int(value)) % 1_000_003
    return fold


def scenarios(quick: bool) -> dict:
    """Scenario name -> zero-arg callable.  Fixed sizes, fixed seeds."""
    if quick:
        return {
            "engine_chain": lambda: engine_chain(2, 2_000),
            "engine_fanout": lambda: engine_fanout(10_000),
            "engine_samestamp": lambda: engine_samestamp(40, 600, 8),
            "engine_samestamp_reference": lambda: engine_samestamp(
                40, 600, 8, coalesce=False
            ),
            "pingpong_vcausal_noel": lambda: pingpong("vcausal-noel", 100),
            "nas_cg8_vcausal_noel": lambda: nas("cg", 8, "vcausal-noel", 2),
            "nas_cg256_vcausal_sparse": lambda: nas_sparse(
                "cg", 256, "vcausal", 1, inner=3
            ),
            "nas_cg256_sparse_engine_ref": lambda: nas_sparse(
                "cg", 256, "vcausal", 1, inner=3, coalesce=False
            ),
            "nas_cg256_sparse_dispatch_ref": lambda: nas_sparse(
                "cg", 256, "vcausal", 1, inner=3, fastpath=False
            ),
            "nas_cg512_vcausal_sparse": lambda: nas_sparse(
                "cg", 512, "vcausal", 1, inner=1
            ),
            "nas_cg512_partitioned": lambda: nas_sparse(
                "cg", 512, "vcausal", 1, inner=1, partition_ranks=4
            ),
            "nas_cg512_workers": lambda: nas_sparse(
                "cg", 512, "vcausal", 1, inner=1,
                partition_ranks=4, partition_workers=4,
            ),
            "nas_bt16_vcausal_sparse": lambda: nas_sparse("bt", 16, "vcausal", 1),
            "nas_sp16_vcausal_sparse": lambda: nas_sparse("sp", 16, "vcausal", 1),
            "nas_ft16_vcausal_sparse": lambda: nas_sparse("ft", 16, "vcausal", 1),
            "nas_cg8_vcausal_fault": lambda: nas_fault("cg", 8, "vcausal", 2, 0.25),
            "nas_lu16_el_saturation": lambda: nas_el_saturation(
                "lu", 16, "vcausal", 1
            ),
            "nas_cg256_el16_multicast": lambda: nas_sharded_el(
                "cg", 256, "vcausal", 1, 16, "multicast", inner=3
            ),
            "nas_cg256_el16_tree": lambda: nas_sharded_el(
                "cg", 256, "vcausal", 1, 16, "tree", inner=3
            ),
            # quick variant of the worklist pair drops to 64 ranks (LU has
            # no inner-loop truncation knob; 256-rank LU takes ~10 s)
            "nas_lu256_noel_worklist": lambda: nas_noel_scan(
                "lu", 64, "vcausal-noel", 1, worklist=True
            ),
            "nas_lu256_noel_fullscan": lambda: nas_noel_scan(
                "lu", 64, "vcausal-noel", 1, worklist=False
            ),
            # the infrastructure-fault scenarios run at full size in quick
            # mode too: their checksums must exact-match the recorded BENCH
            # values, so the smoke test can pin them between full runs
            "nas_cg256_el4_storm": lambda: nas_infra_fault("storm"),
            "nas_cg256_el4_shardloss": lambda: nas_infra_fault("shardloss"),
            "nas_cg256_el4_reference": lambda: nas_infra_fault("none"),
            "nas_mg16_ckpt_outage": lambda: nas_ckpt_outage(fault=True),
            "nas_mg16_ckpt_reference": lambda: nas_ckpt_outage(fault=False),
        }
    return {
        "engine_chain": lambda: engine_chain(8, 25_000),
        "engine_fanout": lambda: engine_fanout(150_000),
        "engine_samestamp": lambda: engine_samestamp(80, 800, 8),
        "engine_samestamp_reference": lambda: engine_samestamp(
            80, 800, 8, coalesce=False
        ),
        "pingpong_vcausal_noel": lambda: pingpong("vcausal-noel", 2_000),
        "nas_cg16_vcausal_noel": lambda: nas("cg", 16, "vcausal-noel", 10),
        "nas_lu16_manetho_noel": lambda: nas("lu", 16, "manetho-noel", 6),
        "nas_cg256_vcausal_sparse": lambda: nas_sparse("cg", 256, "vcausal", 1),
        "nas_cg256_sparse_engine_ref": lambda: nas_sparse(
            "cg", 256, "vcausal", 1, coalesce=False
        ),
        "nas_cg512_vcausal_sparse": lambda: nas_sparse(
            "cg", 512, "vcausal", 1, inner=3
        ),
        "nas_cg512_sparse_dispatch_ref": lambda: nas_sparse(
            "cg", 512, "vcausal", 1, inner=3, fastpath=False
        ),
        "nas_cg512_partitioned": lambda: nas_sparse(
            "cg", 512, "vcausal", 1, inner=3, partition_ranks=4
        ),
        "nas_cg512_workers": lambda: nas_sparse(
            "cg", 512, "vcausal", 1, inner=3,
            partition_ranks=4, partition_workers=4,
        ),
        "nas_cg1024_vcausal_sparse": lambda: nas_sparse(
            "cg", 1024, "vcausal", 1, inner=1
        ),
        "nas_cg2048_vcausal_sparse": lambda: nas_sparse(
            "cg", 2048, "vcausal", 1, inner=1
        ),
        "nas_bt64_vcausal_sparse": lambda: nas_sparse("bt", 64, "vcausal", 1),
        "nas_sp64_vcausal_sparse": lambda: nas_sparse("sp", 64, "vcausal", 1),
        "nas_ft64_vcausal_sparse": lambda: nas_sparse("ft", 64, "vcausal", 1),
        "nas_cg8_vcausal_fault": lambda: nas_fault("cg", 8, "vcausal", 6, 0.75),
        "nas_lu16_el_saturation": lambda: nas_el_saturation("lu", 16, "vcausal", 6),
        "nas_cg256_el16_multicast": lambda: nas_sharded_el(
            "cg", 256, "vcausal", 1, 16, "multicast"
        ),
        "nas_cg256_el16_tree": lambda: nas_sharded_el(
            "cg", 256, "vcausal", 1, 16, "tree"
        ),
        "nas_lu256_noel_worklist": lambda: nas_noel_scan(
            "lu", 256, "vcausal-noel", 1, worklist=True
        ),
        "nas_lu256_noel_fullscan": lambda: nas_noel_scan(
            "lu", 256, "vcausal-noel", 1, worklist=False
        ),
        "nas_cg256_el4_storm": lambda: nas_infra_fault("storm"),
        "nas_cg256_el4_shardloss": lambda: nas_infra_fault("shardloss"),
        "nas_cg256_el4_reference": lambda: nas_infra_fault("none"),
        "nas_mg16_ckpt_outage": lambda: nas_ckpt_outage(fault=True),
        "nas_mg16_ckpt_reference": lambda: nas_ckpt_outage(fault=False),
    }


# --------------------------------------------------------------------- #
# profiling

def profile_scenario(name: str, quick: bool, top: int = 20) -> int:
    """cProfile one scenario and print the ``top`` cumulative functions.

    The profile output is the before/after evidence future perf PRs
    should quote instead of guessing at hot paths.  Returns an exit code
    (2 on an unknown scenario name).
    """
    import cProfile
    import pstats

    scens = scenarios(quick)
    fn = scens.get(name)
    if fn is None:
        print(
            f"unknown scenario {name!r}; choose from: " + ", ".join(sorted(scens)),
            file=sys.stderr,
        )
        return 2
    if "workers" in name:
        # partition_workers scenarios fork: the profiler only sees the
        # parent (barrier driver, replay, collation); per-event simulation
        # work happens in child processes and is invisible here
        print(
            f"note: {name} runs the multiprocess backend; this profile "
            "covers the driver process only, not the forked workers"
        )
    profiler = cProfile.Profile()
    profiler.enable()
    events, _checksum = fn()
    profiler.disable()
    print(f"{name}: {events:,} simulated events ({'quick' if quick else 'full'} size)")
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative").print_stats(top)
    # label the fused dispatch frames so before/after frame counts are
    # visible: with delivery_fastpath on these closures replace the
    # layered on_wire/_on_app_message/_hand_to_app/app_send chain
    print("[fused] dispatch frames (runtime/fastpath.py closures):")
    stats.print_stats(r"fastpath\.py")
    return 0


def dispatch_microbench(n: int = 50_000, passes: int = 3) -> dict:
    """Host-wall A/B of the fused vs the layered receive dispatch.

    Delivers ``n`` pre-built app messages straight into rank 1's wire
    sink on identically wired 2-rank clusters (``delivery_fastpath`` on
    vs off).  The vdummy stack keeps per-message protocol work
    negligible, so the ratio isolates exactly the dispatch frames the
    fastpath removes; simulated state is irrelevant (nothing is run).
    Returns both best-of-``passes`` walls; the tier-1 smoke asserts a
    fused-is-faster floor on the ratio.
    """
    from repro.runtime.cluster import Cluster
    from repro.runtime.config import ClusterConfig
    from repro.runtime.daemon import WireMessage

    def one_wall(fastpath: bool) -> float:
        cfg = ClusterConfig().with_overrides(delivery_fastpath=fastpath)
        cluster = Cluster(
            nprocs=2,
            app_factory=lambda ctx: iter(()),
            stack="vdummy",
            config=cfg,
        )
        sink = cluster.daemons[1].wire_sink
        msgs = [
            WireMessage(kind="app", src=0, dst=1, ssn=i + 1, nbytes=64)
            for i in range(n)
        ]
        for m in msgs[:256]:  # warm caches before the timed stretch
            sink(m)
        # a collection landing inside one timed stretch but not the other
        # swamps the few-µs-per-message signal (a full --run-bench leaves
        # plenty of garbage behind), so the timed region runs GC-free
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            for m in msgs[256:]:
                sink(m)
            return time.perf_counter() - t0
        finally:
            gc.enable()

    fused = min(one_wall(True) for _ in range(passes))
    layered = min(one_wall(False) for _ in range(passes))
    return {
        "fused_s": round(fused, 6),
        "layered_s": round(layered, 6),
        "speedup": round(layered / fused, 3) if fused > 0 else None,
        "messages": n - 256,
    }


# --------------------------------------------------------------------- #
# measurement

def measure(fn, repeats: int) -> dict:
    walls = []
    sim_events = None
    checksum = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        events, chk = fn()
        walls.append(time.perf_counter() - t0)
        if checksum is None:
            sim_events, checksum = events, chk
        elif chk != checksum:
            raise RuntimeError(f"nondeterministic scenario: {chk} != {checksum}")
    wall = min(walls)
    return {
        "wall_s": round(wall, 6),
        "wall_all_s": [round(w, 6) for w in walls],
        "sim_events": sim_events,
        "events_per_s": round(sim_events / wall, 1) if wall > 0 else None,
        "checksum": checksum,
    }


def run_all(quick: bool, repeats: int, verbose: bool = True, jobs: int = 1) -> dict:
    if jobs > 1:
        # one whole scenario per worker process: interleaved baseline
        # pairs stay in-process, collation is registry-ordered (see
        # benchmarks/perf/pool.py and docs/BENCHMARKING.md on when
        # parallel walls are comparable)
        from benchmarks.perf.pool import run_parallel

        return run_parallel(quick, repeats, jobs, verbose=verbose)
    out = {}
    for name, fn in scenarios(quick).items():
        out[name] = measure(fn, repeats)
        if verbose:
            r = out[name]
            print(
                f"{name:28s} {r['wall_s']:9.4f} s   "
                f"{r['events_per_s']:>12,.0f} ev/s   ({r['sim_events']:,} events)"
            )
    return out


def compare(results: dict, baseline: dict) -> dict:
    """Attach per-scenario speedups vs a recorded baseline run.

    Records measured under ``--jobs N>1`` are marked ``contended`` by
    the pool: their walls shared cores with other scenarios, so a
    vs-baseline speedup computed from them is core-sharing noise, not a
    code-change signal (BENCH_8 recorded engine_chain at 0.376x purely
    from contention).  Checksum comparison is wall-free and stays.
    """
    base_scen = baseline.get("scenarios", {})
    for name, r in results.items():
        b = base_scen.get(name)
        if b is None:
            r["baseline_wall_s"] = None
            r["speedup"] = None
            r["results_match_baseline"] = None
            continue
        r["baseline_wall_s"] = b["wall_s"]
        if r.get("contended"):
            r["speedup"] = None
        else:
            r["speedup"] = round(b["wall_s"] / r["wall_s"], 3) if r["wall_s"] else None
        r["results_match_baseline"] = r["checksum"] == b["checksum"]
    return results


def report_doc(
    results: dict,
    repeats: int,
    quick: bool,
    baseline_meta: dict | None,
    jobs: int = 1,
    sweep_wall_s: float | None = None,
) -> dict:
    return {
        "schema": "repro-bench-v1",
        "generated": datetime.datetime.now().isoformat(timespec="seconds"),
        "git_commit": git_commit(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeats": repeats,
        "quick": quick,
        # host-pool shape of this sweep: worker count and the whole
        # sweep's wall clock (the --jobs headline number; per-scenario
        # walls under jobs > 1 carry co-scheduling noise)
        "jobs": jobs,
        "sweep_wall_s": round(sweep_wall_s, 3) if sweep_wall_s is not None else None,
        "baseline": baseline_meta,
        "scenarios": results,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="tiny sizes, CI smoke mode")
    ap.add_argument("--repeats", type=int, default=None, help="repeats per scenario")
    ap.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; each runs whole scenarios (interleaved "
        "baseline pairs stay per-process), results are collated in "
        "registry order (see docs/BENCHMARKING.md)",
    )
    ap.add_argument(
        "--record-baseline",
        action="store_true",
        help=f"write the reference baseline to {BASELINE_PATH}",
    )
    ap.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    ap.add_argument(
        "--output",
        type=Path,
        default=None,
        help="BENCH json path (default: next unused BENCH_<n>.json at the "
        "repo root; quick mode writes none)",
    )
    ap.add_argument(
        "--check-docs",
        action="store_true",
        help="run no scenarios; fail if any BENCH_<n>.json at the repo root "
        "is not referenced in docs/BENCHMARKING.md",
    )
    ap.add_argument(
        "--check-static",
        action="store_true",
        help="run no scenarios; run the simlint determinism/hot-path gate "
        "(python -m tools.simlint src tools) and exit with its status",
    )
    ap.add_argument(
        "--profile",
        metavar="SCENARIO",
        default=None,
        help="cProfile one scenario (full size unless --quick) and print "
        "the top-20 cumulative functions instead of benchmarking",
    )
    args = ap.parse_args(argv)
    if args.check_static:
        # the determinism/hot-path lint gate (docs/ANALYSIS.md); run from
        # the repo root so pyproject's [tool.simlint] overlay is picked up
        proc = subprocess.run(
            [sys.executable, "-m", "tools.simlint", "src", "tools"],
            cwd=REPO_ROOT,
        )
        # ... plus the hostexec quarantine: pyproject scopes hostexec out
        # of the host-thread rule, so verify here that it is the *only*
        # package under src/ exercising that carve-out
        offenders = check_multiprocessing_imports()
        if offenders:
            print(
                "multiprocessing imported outside src/repro/hostexec: "
                + ", ".join(offenders),
                file=sys.stderr,
            )
            return 1
        print("multiprocessing quarantine: only src/repro/hostexec imports it")
        return proc.returncode
    if args.profile is not None:
        return profile_scenario(args.profile, args.quick)
    if args.check_docs:
        missing = check_docs()
        if missing:
            print(
                "BENCH files not referenced in docs/BENCHMARKING.md: "
                + ", ".join(missing),
                file=sys.stderr,
            )
            return 1
        print("all BENCH_<n>.json files are referenced in docs/BENCHMARKING.md")
        return 0
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)
    repeats = max(1, repeats)
    jobs = max(1, args.jobs)

    sweep_t0 = time.perf_counter()
    results = run_all(args.quick, repeats, jobs=jobs)
    sweep_wall_s = time.perf_counter() - sweep_t0

    if args.record_baseline:
        if args.quick:
            print("refusing to record a baseline from a --quick run", file=sys.stderr)
            return 2
        doc = report_doc(
            results, repeats, args.quick, baseline_meta=None,
            jobs=jobs, sweep_wall_s=sweep_wall_s,
        )
        args.baseline.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"baseline recorded -> {args.baseline}")
        return 0

    baseline_meta = None
    # quick mode shrinks every scenario, so checksums/walls are not
    # comparable to the full-size recorded baseline
    if not args.quick and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
        compare(results, baseline)
        baseline_meta = {
            "path": str(args.baseline.relative_to(REPO_ROOT)),
            "generated": baseline.get("generated"),
        }
        for name, r in results.items():
            if r.get("speedup") is not None:
                match = "ok" if r["results_match_baseline"] else "MISMATCH"
                print(f"{name:28s} speedup {r['speedup']:5.2f}x   results {match}")

    output = args.output
    if output is None and not args.quick:
        output = next_output_path()
    if output is not None:
        doc = report_doc(
            results, repeats, args.quick, baseline_meta,
            jobs=jobs, sweep_wall_s=sweep_wall_s,
        )
        output.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"report -> {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
