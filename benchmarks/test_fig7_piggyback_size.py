"""Bench: Fig. 7 — piggybacked data volume in % of exchanged data."""

import pytest

from repro import Cluster
from repro.experiments import fig7_piggyback_size
from repro.workloads.nas import make_app


def run_cell(bench, nprocs, stack, iterations):
    app, _ = make_app(bench, "A", nprocs, iterations=iterations)
    return Cluster(nprocs=nprocs, app_factory=app, stack=stack).run()


@pytest.mark.parametrize("stack", ["vcausal", "vcausal-noel", "manetho-noel", "logon-noel"])
def test_cg16_piggyback_volume_benchmark(benchmark, stack):
    result = benchmark.pedantic(
        run_cell, args=("cg", 16, stack, 2), iterations=1, rounds=1
    )
    assert result.finished


def test_regenerate_fig7_table(benchmark, fast_mode, capsys):
    module_run = fig7_piggyback_size.run
    results = benchmark.pedantic(module_run, kwargs=dict(fast=fast_mode), iterations=1, rounds=1)
    report = fig7_piggyback_size.format_report(results)
    with capsys.disabled():
        print("\n" + report)
    pb = results["pb_percent"]
    # headline shape: EL collapses volume on every cell
    for (bench, nprocs), cell in pb.items():
        for proto in ("vcausal", "manetho", "logon"):
            assert cell[proto] < cell[f"{proto}-noel"], (bench, nprocs, proto)
    # LU/16 residue with EL stays large (EL saturation)
    assert pb[("lu", 16)]["vcausal"] > pb[("bt", 16)]["vcausal"]
