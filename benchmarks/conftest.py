"""Benchmark-harness configuration.

Every benchmark regenerates one paper figure/table (in fast mode) and
times a representative kernel of it under pytest-benchmark, printing the
same rows/series the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-full",
        action="store_true",
        default=False,
        help="run full parameter sweeps instead of the fast subsets",
    )
    parser.addoption(
        "--run-bench",
        action="store_true",
        default=False,
        help="run tests marked 'bench' (full perf scenarios; skipped by default)",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-bench"):
        return
    skip = pytest.mark.skip(reason="perf benchmark; pass --run-bench to run")
    for item in items:
        if "bench" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def fast_mode(request) -> bool:
    return not request.config.getoption("--paper-full")
