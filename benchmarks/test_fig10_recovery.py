"""Bench: Fig. 10 — time to recover the events to replay at restart."""

import pytest

from repro.experiments import fig10_recovery


@pytest.mark.parametrize("mode", ["vcausal", "vcausal-noel"])
def test_recovery_episode_benchmark(benchmark, mode):
    """Times a full kill → collect → replay episode (CG, 8 procs)."""
    cell = benchmark.pedantic(
        fig10_recovery._measure, args=("cg", "B", 8, mode, 2),
        iterations=1, rounds=1,
    )
    assert cell["events"] > 0


def test_regenerate_fig10_table(benchmark, fast_mode, capsys):
    module_run = fig10_recovery.run
    results = benchmark.pedantic(module_run, kwargs=dict(fast=fast_mode), iterations=1, rounds=1)
    report = fig10_recovery.format_report(results)
    with capsys.disabled():
        print("\n" + report)
    rec = results["recovery"]
    # with-EL collection beats peer collection at every P >= 4
    for (bench, klass, nprocs, label), cell in rec.items():
        if label != "with EL" or nprocs < 4:
            continue
        other = rec[(bench, klass, nprocs, "without EL")]
        assert cell["collection_ms"] < other["collection_ms"], (bench, nprocs)
        assert cell["sources"] == 1
        assert other["sources"] == nprocs - 1
    # no-EL collection grows with the process count (scalability claim)
    for bench, klass in (("bt", "A"), ("cg", "B"), ("lu", "A")):
        series = [
            cell["collection_ms"]
            for (b, k, p, label), cell in sorted(rec.items())
            if b == bench and k == klass and label == "without EL"
        ]
        assert series == sorted(series), (bench, series)
