"""Bench: Fig. 9 — NAS benchmark Megaflop/s across the eight stacks."""

import pytest

from repro import Cluster
from repro.experiments import fig9_nas_performance
from repro.workloads.nas import make_app


def run_panel_cell(bench, klass, nprocs, stack, iterations):
    app, _ = make_app(bench, klass, nprocs, iterations=iterations)
    return Cluster(nprocs=nprocs, app_factory=app, stack=stack).run()


@pytest.mark.parametrize("bench,iters", [("cg", 2), ("bt", 4), ("lu", 2), ("ft", 4)])
def test_nas_simulation_throughput(benchmark, bench, iters):
    """Wall-clock cost of simulating one NAS cell (tracks simulator perf)."""
    result = benchmark.pedantic(
        run_panel_cell, args=(bench, "A", 16, "vcausal", iters),
        iterations=1, rounds=1,
    )
    assert result.finished


def test_regenerate_fig9_table(benchmark, fast_mode, capsys):
    module_run = fig9_nas_performance.run
    results = benchmark.pedantic(module_run, kwargs=dict(fast=fast_mode), iterations=1, rounds=1)
    report = fig9_nas_performance.format_report(results)
    with capsys.disabled():
        print("\n" + report)
    violations = fig9_nas_performance.shape_checks(results)
    assert not violations, violations
