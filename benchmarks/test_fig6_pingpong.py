"""Bench: Fig. 6 — NetPIPE latency table and bandwidth curves.

Regenerates the Fig. 6(a) latency rows (printed) and benchmarks the
ping-pong kernel per stack so relative stack costs can be tracked.
"""

import pytest

from repro.experiments import fig6_pingpong
from repro.workloads.netpipe import measure_latency


@pytest.mark.parametrize(
    "stack",
    ["p4", "vdummy", "vcausal", "manetho", "logon",
     "vcausal-noel", "manetho-noel", "logon-noel"],
)
def test_pingpong_latency_benchmark(benchmark, stack):
    latency, _ = benchmark(measure_latency, stack, nbytes=1, reps=60)
    paper = fig6_pingpong.PAPER_LATENCY_US[stack]
    # latency within 10% of the paper's measurement
    assert latency * 1e6 == pytest.approx(paper, rel=0.10)


def test_regenerate_fig6_table(benchmark, fast_mode, capsys):
    module_run = fig6_pingpong.run
    results = benchmark.pedantic(module_run, kwargs=dict(fast=fast_mode), iterations=1, rounds=1)
    report = fig6_pingpong.format_report(results)
    with capsys.disabled():
        print("\n" + report)
    # shape assertions on the regenerated artifact
    lat = results["latency_us"]
    assert lat["p4"] < lat["vdummy"] < lat["vcausal"]
    for proto in ("vcausal", "manetho", "logon"):
        assert lat[f"{proto}-noel"] > lat[proto]
    bw = results["bandwidth_mbit"]
    top = max(results["sizes"])
    assert bw["raw-tcp"][top] > bw["p4"][top]
    assert bw["vdummy"][top] > bw["vcausal"][top]
