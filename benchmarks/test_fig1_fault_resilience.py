"""Bench: Fig. 1 — fault resilience of the three protocol families."""

import pytest

from repro import Cluster, PeriodicFaults
from repro.experiments import fig1_fault_resilience
from repro.workloads.nas import make_app


def run_faulty_bt(stack, policy, interval_s, per_minute):
    app, _ = make_app("bt", "A", 25, iterations=120)
    cluster = Cluster(
        nprocs=25,
        app_factory=app,
        stack=stack,
        checkpoint_policy=policy,
        checkpoint_interval_s=interval_s,
        fault_plan=PeriodicFaults(per_minute=per_minute, start_s=5.0),
    )
    return cluster.run(max_events=100_000_000)


@pytest.mark.parametrize(
    "name,stack,policy,interval",
    [
        ("causal", "vcausal", "round-robin", 0.6),
        ("coordinated", "coordinated", "coordinated", 30.0),
    ],
)
def test_faulty_run_benchmark(benchmark, name, stack, policy, interval):
    result = benchmark.pedantic(
        run_faulty_bt, args=(stack, policy, interval, 4.0),
        iterations=1, rounds=1,
    )
    assert result.finished


def test_regenerate_fig1_curve(benchmark, fast_mode, capsys):
    module_run = fig1_fault_resilience.run
    results = benchmark.pedantic(module_run, kwargs=dict(fast=fast_mode), iterations=1, rounds=1)
    report = fig1_fault_resilience.format_report(results)
    with capsys.disabled():
        print("\n" + report)
    assert not fig1_fault_resilience.shape_checks(results)
    # causal degrades gracefully: stays under 3x at the top frequency
    top = max(results["frequencies"])
    assert results["slowdown_pct"]["causal"][top] < 300.0
