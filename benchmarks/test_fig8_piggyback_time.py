"""Bench: Fig. 8 — time to manage piggyback information.

Also times the raw protocol kernels (build/accept) on the host, which is
the honest complement to the simulated op-count model: the *relative*
costs of the three reduction techniques are measurable directly.
"""

import pytest

from repro.core.events import Determinant
from repro.core.logon import LogOnProtocol
from repro.core.manetho import ManethoProtocol
from repro.core.vcausal import VcausalProtocol
from repro.experiments import fig8_piggyback_time
from repro.metrics.probes import ProcessProbes
from repro.runtime.config import ClusterConfig

CFG = ClusterConfig()
PROTOS = {
    "vcausal": VcausalProtocol,
    "manetho": ManethoProtocol,
    "logon": LogOnProtocol,
}


def drive_protocol_kernel(cls, nprocs=8, rounds=40):
    """Host-time kernel: a ring of protocol instances exchanging events."""
    protos = [cls(r, nprocs, CFG, ProcessProbes(rank=r)) for r in range(nprocs)]
    clocks = [0] * nprocs
    ssn = {}
    for _ in range(rounds):
        for src in range(nprocs):
            dst = (src + 1) % nprocs
            pb = protos[src].build_piggyback(dst)
            key = (src, dst)
            ssn[key] = ssn.get(key, 0) + 1
            protos[dst].accept_piggyback(src, pb, clocks[src])
            clocks[dst] += 1
            det = Determinant(dst, clocks[dst], src, ssn[key], clocks[src])
            protos[dst].on_local_event(det)
    return sum(p.events_held() for p in protos)


@pytest.mark.parametrize("proto", sorted(PROTOS))
def test_protocol_kernel_host_time(benchmark, proto):
    held = benchmark(drive_protocol_kernel, PROTOS[proto])
    assert held > 0


def test_regenerate_fig8_tables(benchmark, fast_mode, capsys):
    module_run = fig8_piggyback_time.run
    results = benchmark.pedantic(module_run, kwargs=dict(fast=fast_mode), iterations=1, rounds=1)
    report = fig8_piggyback_time.format_report(results)
    with capsys.disabled():
        print("\n" + report)
    pct = results["pct"]
    # EL reduces the management cost on every benchmark/protocol
    for (bench, nprocs), cell in pct.items():
        for proto in ("vcausal", "manetho", "logon"):
            assert cell[proto] <= cell[f"{proto}-noel"] + 1e-9
    # Vcausal's sequence scan is the cheapest technique (LU and CG)
    for bench in ("lu", "cg"):
        cell = pct[(bench, 16)]
        assert cell["vcausal-noel"] <= cell["manetho-noel"]
        assert cell["vcausal-noel"] <= cell["logon-noel"]